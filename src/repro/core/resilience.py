"""Fault containment for the audit pipeline (the degrade-gracefully layer).

The paper's Algorithm 1 assumes every trail replays cleanly, but a
production auditor must survive poisoned inputs: a non-well-founded
process slipped into the registry, a corrupt log entry, a checker that
hangs or crashes its worker.  Runtime purpose-enforcement frameworks
treat the monitor as a component that must keep running in the presence
of bad histories (De Masellis et al.; Kiesel & Grünewald) — this module
brings the same discipline to the a-posteriori audit:

* :class:`OutcomeKind` / :class:`CaseOutcome` — the rich per-case
  verdict that replaces the old tri-state ``CaseVerdict``: every case of
  a batch audit ends in exactly one of six outcomes, and failures carry
  the captured exception message and retry count instead of aborting the
  run;
* :func:`classify_failure` — the single mapping from exception to
  outcome, shared by the serial auditor, the parallel workers, and the
  online monitor so all three paths agree on what UNDECIDABLE means;
* :class:`RetryPolicy` — bounded attempts with exponential backoff for
  jobs lost to dead workers;
* :func:`replay_with_deadline` — Algorithm 1 under a per-case
  wall-clock budget (cooperative, checked between entries; the
  intra-entry guard remains ``max_silent_states``);
* :class:`Quarantine` — the dead-letter collection for raw records that
  fail :class:`~repro.audit.model.LogEntry` validation at ingestion
  (SQLite rows, XES events), so one corrupt entry costs one entry, not
  the batch.

Semantics are documented in ``docs/robustness.md``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Iterable, Optional

from repro.errors import (
    CaseTimeoutError,
    EncodingError,
    NotFinitelyObservableError,
    ProcessValidationError,
    UnknownPurposeError,
)
from repro.obs import ENTRY_QUARANTINED, NULL_TELEMETRY, Telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.audit.model import LogEntry
    from repro.core.compliance import ComplianceChecker, ComplianceResult


class OutcomeKind(Enum):
    """Every way a batch-audited case can end.

    The first three are the paper's verdicts; the last three are the
    resilience layer's: the audit itself could not decide, not the data
    processing being wrong.
    """

    #: The trail is a valid (prefix of an) execution of the purpose.
    COMPLIANT = "compliant"
    #: The trail is not a valid execution — re-purposing detected.
    INVALID_EXECUTION = "invalid-execution"
    #: The case id resolves to no registered purpose.
    UNKNOWN_PURPOSE = "unknown-purpose"
    #: Algorithm 1 is inapplicable: the process is non-well-founded,
    #: not finitely observable, or its encoding failed (Section 5).
    UNDECIDABLE = "undecidable"
    #: An unexpected exception was contained to this case.
    ERROR = "error"
    #: The per-case wall-clock budget was exhausted.
    TIMEOUT = "timeout"

    def __str__(self) -> str:
        return self.value


#: Kinds that mean "the audit ran to a verdict" (the paper's outcomes).
DECIDED_KINDS = frozenset(
    {OutcomeKind.COMPLIANT, OutcomeKind.INVALID_EXECUTION, OutcomeKind.UNKNOWN_PURPOSE}
)


@dataclass
class CaseOutcome:
    """The rich per-case verdict of a resilient batch audit.

    Replaces the tri-state ``CaseVerdict``: ``verdict`` recovers the old
    ``True``/``False``/``None`` view, while failures keep the captured
    exception message (``error``/``error_type``), the retry count, and —
    for UNDECIDABLE cases — how many silent states were explored before
    the bound tripped.
    """

    case: str
    kind: OutcomeKind
    purpose: Optional[str] = None
    failed_index: Optional[int] = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    states_explored: Optional[int] = None
    retries: int = 0
    duration_s: float = 0.0
    worker_pid: Optional[int] = None

    @property
    def verdict(self) -> Optional[bool]:
        """The legacy tri-state view: True / False / None (anything else)."""
        if self.kind is OutcomeKind.COMPLIANT:
            return True
        if self.kind is OutcomeKind.INVALID_EXECUTION:
            return False
        return None

    @property
    def ok(self) -> bool:
        return self.kind is OutcomeKind.COMPLIANT

    @property
    def decided(self) -> bool:
        """Whether the audit reached one of the paper's verdicts."""
        return self.kind in DECIDED_KINDS

    def __str__(self) -> str:
        detail = f" ({self.error})" if self.error else ""
        retried = f" after {self.retries} retr{'y' if self.retries == 1 else 'ies'}" \
            if self.retries else ""
        return f"{self.case} [{self.purpose}]: {self.kind}{retried}{detail}"


def classify_failure(error: BaseException) -> OutcomeKind:
    """Map an exception escaping one case's replay to its outcome kind.

    Shared by the serial auditor, the parallel workers, and the online
    monitor so every path files the same failure under the same kind.
    """
    if isinstance(error, NotFinitelyObservableError):
        return OutcomeKind.UNDECIDABLE
    if isinstance(error, (ProcessValidationError, EncodingError)):
        # NotWellFoundedError included: outside the decidable fragment.
        return OutcomeKind.UNDECIDABLE
    if isinstance(error, UnknownPurposeError):
        return OutcomeKind.UNKNOWN_PURPOSE
    if isinstance(error, CaseTimeoutError):
        return OutcomeKind.TIMEOUT
    return OutcomeKind.ERROR


def outcome_from_failure(
    case: str,
    error: BaseException,
    purpose: Optional[str] = None,
    retries: int = 0,
    duration_s: float = 0.0,
    worker_pid: Optional[int] = None,
) -> CaseOutcome:
    """A :class:`CaseOutcome` capturing one contained exception."""
    return CaseOutcome(
        case=case,
        kind=classify_failure(error),
        purpose=purpose,
        error=str(error),
        error_type=type(error).__name__,
        states_explored=getattr(error, "states_explored", None),
        retries=retries,
        duration_s=duration_s,
        worker_pid=worker_pid,
    )


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff for jobs lost to dead workers.

    ``max_attempts`` counts every dispatch of a job, the first included,
    so ``max_attempts=3`` means "retry at most twice".  ``delay`` grows
    geometrically and is capped by ``max_backoff_s``.
    """

    max_attempts: int = 3
    backoff_s: float = 0.05
    multiplier: float = 2.0
    max_backoff_s: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    @classmethod
    def none(cls) -> "RetryPolicy":
        """Dispatch once, never retry, never sleep."""
        return cls(max_attempts=1, backoff_s=0.0)

    @property
    def max_retries(self) -> int:
        return self.max_attempts - 1

    def allows_retry(self, failures: int) -> bool:
        """Whether a job that failed *failures* times may be re-dispatched."""
        return failures < self.max_attempts

    def delay(self, failures: int) -> float:
        """Seconds to back off after the *failures*-th loss (1-based)."""
        if failures < 1 or self.backoff_s == 0.0:
            return 0.0
        return min(
            self.backoff_s * self.multiplier ** (failures - 1),
            self.max_backoff_s,
        )


@dataclass
class RestartBudget:
    """Bounded restarts per supervised component (keyed by name).

    The streaming service's shard supervisor consults this before
    replacing a crashed or hung shard: within budget the shard is
    rebuilt in place; past it the component is considered beyond repair
    and its work is re-homed instead (for shards, through the
    consistent-hash ring).  A budget stops a deterministic poison input
    from turning into a crash loop.
    """

    max_restarts: int = 2
    counts: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")

    def record(self, key: str) -> bool:
        """Count one restart of *key*; True while still within budget."""
        self.counts[key] = self.counts.get(key, 0) + 1
        return self.counts[key] <= self.max_restarts

    def count(self, key: str) -> int:
        return self.counts.get(key, 0)

    def exhausted(self, key: str) -> bool:
        return self.counts.get(key, 0) > self.max_restarts


def replay_with_deadline(
    checker: "ComplianceChecker",
    entries: "Iterable[LogEntry]",
    timeout_s: Optional[float] = None,
) -> "ComplianceResult":
    """Run Algorithm 1 under a per-case wall-clock budget.

    With ``timeout_s=None`` this is exactly ``checker.check``: every
    entry is fed (the session keeps accounting past the first
    infringement), so verdicts and replay statistics are byte-identical
    to the unbudgeted path.  With a budget, elapsed time is checked
    after every fed entry and :class:`repro.errors.CaseTimeoutError` is
    raised the moment it is exhausted.  The check is cooperative — a
    single entry's WeakNext exploration is bounded by
    ``max_silent_states``, not by the clock.
    """
    if timeout_s is None:
        return checker.check(entries)
    started = time.monotonic()
    deadline = started + timeout_s
    session = checker.session()
    for entry in entries:
        session.feed(entry)
        now = time.monotonic()
        if now > deadline:
            raise CaseTimeoutError(
                f"case {entry.case!r} exceeded its {timeout_s:g}s replay "
                f"budget after {session.entries_fed} entr"
                f"{'y' if session.entries_fed == 1 else 'ies'}",
                budget_s=timeout_s,
                elapsed_s=now - started,
            )
    return session.result()


# ---------------------------------------------------------------------------
# the dead-letter collection


@dataclass(frozen=True)
class QuarantinedEntry:
    """One raw record that failed validation at ingestion.

    ``source`` names the ingestion boundary (``"store"``, ``"xes"``,
    ``"append"``); ``position`` locates the record there (sequence
    number, event index, batch offset); ``raw`` is a best-effort textual
    rendering for forensics.
    """

    source: str
    position: Optional[int]
    reason: str
    raw: str = ""

    def __str__(self) -> str:
        where = f"#{self.position}" if self.position is not None else "?"
        return f"[{self.source} {where}] {self.reason}"


class Quarantine:
    """Collects records rejected at ingestion instead of failing the batch.

    Pass one to :meth:`repro.audit.store.AuditStore.query` or
    :func:`repro.audit.xes.import_xes` to turn per-record validation
    errors into dead-letter entries.  With telemetry attached, every
    quarantined record counts under ``quarantined_entries_total{source}``
    and emits an ``entry.quarantined`` event.
    """

    def __init__(self, telemetry: Telemetry | None = None):
        self._tel = telemetry if telemetry is not None else NULL_TELEMETRY
        self._m_quarantined = self._tel.registry.counter(
            "quarantined_entries_total",
            "raw log records quarantined at ingestion, by source",
        )
        self.entries: list[QuarantinedEntry] = []

    def add(
        self,
        source: str,
        reason: str,
        position: Optional[int] = None,
        raw: str = "",
    ) -> QuarantinedEntry:
        entry = QuarantinedEntry(
            source=source, position=position, reason=reason, raw=raw
        )
        self.entries.append(entry)
        self._m_quarantined.inc(source=source)
        self._tel.events.emit(
            ENTRY_QUARANTINED,
            source=source,
            position=position,
            reason=reason,
        )
        return entry

    def __len__(self) -> int:
        return len(self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def summary(self) -> str:
        lines = [f"{len(self.entries)} quarantined record(s)"]
        lines.extend(f"  {entry}" for entry in self.entries)
        return "\n".join(lines)
