"""Infringement explanation: *why* did the replay reject an entry?

Algorithm 1 answers "is this trail a valid execution?" with a boolean
and the failing entry.  A human auditor needs more: what the process
*would* have allowed at that point, and what kind of deviation this
looks like.  :func:`explain` post-processes a failed
:class:`~repro.core.compliance.ComplianceResult` into a diagnosis:

* the **expected events** — the observable labels the surviving
  configurations offered when the entry arrived;
* a **deviation class**:

  - ``WRONG_START`` — the case's very first entry is not a possible
    start of the process (the re-purposing signature of Fig. 4);
  - ``SKIPPED_TASKS`` — the rejected task *is* reachable within a few
    observable steps: someone jumped ahead (with the tasks skipped
    over);
  - ``WRONG_ROLE`` — the task was expected, but from a different pool
    role than the entry's;
  - ``WRONG_STATUS`` — a failure entry arrived where only task labels
    were possible (or vice versa);
  - ``ALIEN_TASK`` — the task does not occur in the process at all;
  - ``NOT_REACHABLE`` — the task exists but is not reachable from here
    within the search horizon (out-of-order or repeated work).

The CLI's ``check --verbose`` and the auditor surface these diagnoses.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.audit.model import LogEntry
from repro.core.compliance import ComplianceChecker, ComplianceResult
from repro.core.configuration import Configuration
from repro.core.observables import ErrorEvent, ObservableEvent, TaskEvent


class DeviationKind(Enum):
    WRONG_START = "wrong-start"
    SKIPPED_TASKS = "skipped-tasks"
    WRONG_ROLE = "wrong-role"
    WRONG_STATUS = "wrong-status"
    ALIEN_TASK = "alien-task"
    NOT_REACHABLE = "not-reachable"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Explanation:
    """The diagnosis of one rejected entry."""

    entry: LogEntry
    entry_index: int
    kind: DeviationKind
    expected: tuple[str, ...]  # observable events offered at the failure point
    skipped: tuple[str, ...] = ()  # tasks jumped over (SKIPPED_TASKS only)
    detail: str = ""

    def __str__(self) -> str:
        parts = [
            f"entry {self.entry_index} ({self.entry.role}.{self.entry.task}) "
            f"rejected: {self.kind}"
        ]
        if self.detail:
            parts.append(self.detail)
        if self.expected:
            parts.append(f"expected one of: {', '.join(self.expected)}")
        if self.skipped:
            parts.append(f"skipped over: {', '.join(self.skipped)}")
        return "; ".join(parts)


def _format_event(event: ObservableEvent) -> str:
    return str(event)


def explain(
    checker: ComplianceChecker,
    entries: list[LogEntry],
    result: ComplianceResult,
    search_depth: int = 4,
) -> Optional[Explanation]:
    """Diagnose the failure recorded in *result* (None if compliant).

    *entries* must be the same sequence the result was computed from.
    """
    if result.compliant or result.failed_index is None:
        return None
    index = result.failed_index
    entry = entries[index]

    # Re-run the accepted prefix to recover the frontier at the failure.
    session = checker.session()
    for accepted in entries[:index]:
        session.feed(accepted)
    frontier = session.frontier

    expected_events: list[ObservableEvent] = []
    seen: set[ObservableEvent] = set()
    for conf in frontier:
        for event, _, _ in conf.next:
            if event not in seen:
                seen.add(event)
                expected_events.append(event)
    expected = tuple(_format_event(e) for e in expected_events)

    observables = checker.engine.observables
    kind, skipped, detail = _classify(
        checker, frontier, entry, expected_events, index, search_depth
    )
    return Explanation(
        entry=entry,
        entry_index=index,
        kind=kind,
        expected=expected,
        skipped=skipped,
        detail=detail,
    )


def _classify(
    checker: ComplianceChecker,
    frontier: tuple[Configuration, ...],
    entry: LogEntry,
    expected: list[ObservableEvent],
    index: int,
    search_depth: int,
) -> tuple[DeviationKind, tuple[str, ...], str]:
    observables = checker.engine.observables
    task_known = entry.task in checker.encoded.tasks

    if not task_known:
        return (
            DeviationKind.ALIEN_TASK,
            (),
            f"task {entry.task!r} does not belong to the "
            f"{checker.purpose!r} process",
        )

    if entry.failed:
        return (
            DeviationKind.WRONG_STATUS,
            (),
            "a failure was logged but no error event is reachable here",
        )

    # Same task offered by a different role?
    for event in expected:
        if isinstance(event, TaskEvent) and event.task == entry.task:
            if not observables.role_matches(entry.role, event.role):
                return (
                    DeviationKind.WRONG_ROLE,
                    (),
                    f"task {entry.task} is expected from role "
                    f"{event.role}, not {entry.role}",
                )
            return (
                DeviationKind.WRONG_STATUS,
                (),
                f"task {entry.task} is expected but only as "
                f"{'a success' if entry.failed else 'another status'}",
            )

    # Look ahead: is the task reachable within a few observable steps?
    path = _search_forward(checker, frontier, entry, search_depth)
    if path is not None:
        if index == 0 and path:
            # The very first entry needed earlier work: a fabricated case.
            return (
                DeviationKind.WRONG_START,
                tuple(path),
                "the case skips the start of the process entirely",
            )
        return (
            DeviationKind.SKIPPED_TASKS,
            tuple(path),
            "the entry jumps ahead of unperformed work",
        )
    if index == 0:
        return (
            DeviationKind.WRONG_START,
            (),
            "the process cannot start with this activity",
        )
    return (
        DeviationKind.NOT_REACHABLE,
        (),
        f"task {entry.task} is not reachable from the current state "
        f"within {search_depth} steps (out of order or repeated work)",
    )


def _search_forward(
    checker: ComplianceChecker,
    frontier: tuple[Configuration, ...],
    entry: LogEntry,
    depth: int,
) -> Optional[list[str]]:
    """BFS over observable steps: the shortest event path after which the
    entry's task becomes executable; None if not found within *depth*."""
    observables = checker.engine.observables
    engine = checker.engine
    queue: list[tuple[Configuration, list[str]]] = [(c, []) for c in frontier]
    visited = {(c.state, c.active) for c in frontier}
    for _ in range(depth):
        next_queue: list[tuple[Configuration, list[str]]] = []
        for conf, path in queue:
            for successor in conf.next:
                event = successor[0]
                if (
                    isinstance(event, TaskEvent)
                    and event.task == entry.task
                    and observables.role_matches(entry.role, event.role)
                ):
                    return path
                if isinstance(event, ErrorEvent):
                    continue  # don't explain through hypothetical failures
                reached = Configuration.reached(engine, successor)
                key = (reached.state, reached.active)
                if key not in visited:
                    visited.add(key)
                    next_queue.append((reached, path + [str(event)]))
        queue = next_queue
        if not queue:
            break
    return None
