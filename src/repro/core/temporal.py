"""Temporal constraints on process instances (Section 4).

The paper: "if a maximum duration for the process is defined, an
infringement can be raised in the case where this temporal constraint is
violated."  This module implements that check and two natural
generalizations a deployment needs:

* ``max_case_duration`` — the maximum wall-clock span of one case (the
  paper's constraint);
* ``max_inactivity`` — the maximum silence between consecutive entries
  of an open case (a stalled case is suspicious, and it bounds how long
  the mimicry "open window" of Section 4 stays exploitable);
* ``task_deadlines`` — per-task deadlines relative to the case's first
  entry (e.g. "results must be exported within 14 days").

Constraints are evaluated on a case's trail, optionally against a
*now* timestamp so still-open cases can time out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timedelta
from enum import Enum
from typing import Optional

from repro.audit.model import AuditTrail, LogEntry


class TemporalViolationKind(Enum):
    CASE_TOO_LONG = "case-duration-exceeded"
    CASE_STALLED = "inactivity-exceeded"
    TASK_DEADLINE_MISSED = "task-deadline-missed"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class TemporalViolation:
    """One violated temporal constraint of a case."""

    kind: TemporalViolationKind
    case: str
    detail: str
    entry: Optional[LogEntry] = None

    def __str__(self) -> str:
        return f"[{self.kind}] case {self.case}: {self.detail}"


@dataclass
class TemporalConstraints:
    """The temporal policy attached to one purpose's process."""

    max_case_duration: Optional[timedelta] = None
    max_inactivity: Optional[timedelta] = None
    task_deadlines: dict[str, timedelta] = field(default_factory=dict)

    def with_deadline(self, task: str, deadline: timedelta) -> "TemporalConstraints":
        self.task_deadlines[task] = deadline
        return self

    # -- evaluation -------------------------------------------------------
    def check(
        self,
        case: str,
        trail: AuditTrail,
        now: Optional[datetime] = None,
        case_open: bool = True,
    ) -> list[TemporalViolation]:
        """Every temporal violation of *case*'s trail.

        ``now`` extends the duration/inactivity checks to still-open
        cases: an open case that has exceeded its budget is flagged even
        though no entry has arrived (that is precisely the point).
        ``case_open=False`` (the process instance completed) disables the
        open-ended checks against *now*.
        """
        entries = trail.entries
        if not entries:
            return []
        violations: list[TemporalViolation] = []
        started = entries[0].timestamp
        last = entries[-1].timestamp

        if self.max_case_duration is not None:
            observed = last - started
            if observed > self.max_case_duration:
                violations.append(
                    TemporalViolation(
                        TemporalViolationKind.CASE_TOO_LONG,
                        case,
                        f"case spans {observed}, allowed "
                        f"{self.max_case_duration}",
                        entries[-1],
                    )
                )
            elif case_open and now is not None and now - started > self.max_case_duration:
                violations.append(
                    TemporalViolation(
                        TemporalViolationKind.CASE_TOO_LONG,
                        case,
                        f"case open for {now - started}, allowed "
                        f"{self.max_case_duration}",
                    )
                )

        if self.max_inactivity is not None:
            for earlier, later in zip(entries, entries[1:]):
                gap = later.timestamp - earlier.timestamp
                if gap > self.max_inactivity:
                    violations.append(
                        TemporalViolation(
                            TemporalViolationKind.CASE_STALLED,
                            case,
                            f"{gap} of silence before task {later.task}, "
                            f"allowed {self.max_inactivity}",
                            later,
                        )
                    )
            if case_open and now is not None:
                tail_gap = now - last
                if tail_gap > self.max_inactivity:
                    violations.append(
                        TemporalViolation(
                            TemporalViolationKind.CASE_STALLED,
                            case,
                            f"no activity for {tail_gap}, allowed "
                            f"{self.max_inactivity}",
                        )
                    )

        for task, deadline in self.task_deadlines.items():
            first_occurrence = next(
                (e for e in entries if e.task == task), None
            )
            if first_occurrence is not None:
                lateness = first_occurrence.timestamp - started
                if lateness > deadline:
                    violations.append(
                        TemporalViolation(
                            TemporalViolationKind.TASK_DEADLINE_MISSED,
                            case,
                            f"task {task} first performed after {lateness}, "
                            f"deadline {deadline}",
                            first_occurrence,
                        )
                    )
            elif case_open and now is not None and now - started > deadline:
                violations.append(
                    TemporalViolation(
                        TemporalViolationKind.TASK_DEADLINE_MISSED,
                        case,
                        f"task {task} not performed within {deadline} "
                        "(case still open)",
                    )
                )
        return violations

    def is_satisfied(
        self,
        case: str,
        trail: AuditTrail,
        now: Optional[datetime] = None,
        case_open: bool = True,
    ) -> bool:
        return not self.check(case, trail, now=now, case_open=case_open)
