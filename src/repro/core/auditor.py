"""The end-to-end purpose-control auditor.

Ties the three framework components together (Section 3): for every case
in an audit trail it resolves the claimed purpose through the process
registry, replays the case's entries with Algorithm 1, and (optionally)
re-evaluates each entry's implied access request against the data
protection policy — the complementary preventive check Section 3.5 calls
for, since Algorithm 1 deliberately allows any action inside an active
task.

Two properties of the paper's Section 7 are visible in the API:

* **object independence** — :meth:`PurposeControlAuditor.audit_object`
  audits the *cases* that touched an object; a case verdict is computed
  once and reused for every object, because Algorithm 1 does not depend
  on the object under investigation;
* **per-case independence** — cases are audited in isolation, so callers
  can parallelize freely (benchmark E10).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from datetime import datetime
from enum import Enum
from typing import Optional

from repro.audit.model import AuditTrail, LogEntry
from repro.core.compliance import ComplianceChecker, ComplianceResult
from repro.core.resilience import (
    OutcomeKind,
    Quarantine,
    QuarantinedEntry,
    classify_failure,
    replay_with_deadline,
)
from repro.core.severity import SeverityAssessment, SeverityModel
from repro.core.temporal import TemporalConstraints
from repro.errors import (
    CaseTimeoutError,
    EncodingError,
    NotFinitelyObservableError,
    ProcessValidationError,
    UnknownPurposeError,
)
from repro.obs import (
    CASE_AUDITED,
    CASE_FAILED,
    INFRINGEMENT_RAISED,
    NULL_TELEMETRY,
    PREFLIGHT_UNSOUND,
    Telemetry,
)
from repro.policy.engine import PolicyDecisionPoint
from repro.policy.hierarchy import RoleHierarchy
from repro.policy.model import ObjectRef
from repro.policy.registry import ProcessRegistry


class InfringementKind(Enum):
    """Why an audited case raised a flag."""

    #: The case's trail is not a valid execution of the claimed purpose's
    #: process — the re-purposing detection of Section 4.
    INVALID_EXECUTION = "invalid-execution"
    #: An entry's implied access request is denied by the policy (Def. 3).
    UNAUTHORIZED_ACCESS = "unauthorized-access"
    #: The case id does not resolve to any registered purpose.
    UNKNOWN_PURPOSE = "unknown-purpose"
    #: A temporal constraint of the purpose was violated (Section 4's
    #: maximum-duration remark; see :mod:`repro.core.temporal`).
    TEMPORAL_VIOLATION = "temporal-violation"
    #: Algorithm 1 could not decide the case: the purpose's process is
    #: non-well-founded or not finitely observable (Section 5).  Not a
    #: privacy violation — a flag that the case needs manual review.
    UNDECIDABLE = "undecidable"
    #: The case's replay exceeded its wall-clock budget.
    TIMEOUT = "timeout"
    #: An unexpected exception was contained to the case (``--on-error
    #: skip``/``quarantine``).  Like UNDECIDABLE, an audit-quality flag,
    #: not a detected misuse of data.
    AUDIT_ERROR = "audit-error"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Infringement:
    """One detected privacy infringement."""

    kind: InfringementKind
    case: str
    detail: str
    entry: Optional[LogEntry] = None

    def __str__(self) -> str:
        return f"[{self.kind}] case {self.case}: {self.detail}"


#: Infringement kinds that flag an *audit failure* rather than a
#: detected misuse of data (the resilience layer's findings).
FAILURE_KINDS = frozenset(
    {
        InfringementKind.UNDECIDABLE,
        InfringementKind.TIMEOUT,
        InfringementKind.AUDIT_ERROR,
    }
)


@dataclass
class CaseAuditResult:
    """The audit outcome for one process instance.

    ``outcome`` classifies how the *replay* ended (the six-way
    :class:`~repro.core.resilience.OutcomeKind`); the ``infringements``
    list carries everything flagged — replay failures, policy denials,
    temporal violations, and (for contained failures) the audit-failure
    finding itself, with the captured exception message on ``error``.
    """

    case: str
    purpose: Optional[str]
    replay: Optional[ComplianceResult]
    infringements: list[Infringement] = field(default_factory=list)
    severity: Optional[SeverityAssessment] = None
    outcome: OutcomeKind = OutcomeKind.COMPLIANT
    error: Optional[str] = None
    error_type: Optional[str] = None
    states_explored: Optional[int] = None
    retries: int = 0

    @property
    def compliant(self) -> bool:
        return not self.infringements

    @property
    def failed(self) -> bool:
        """Whether the audit itself failed on this case (contained)."""
        return self.outcome in (
            OutcomeKind.UNDECIDABLE,
            OutcomeKind.ERROR,
            OutcomeKind.TIMEOUT,
        )

    @property
    def open(self) -> bool:
        """Whether the case may legitimately continue (a valid prefix)."""
        return bool(self.replay and self.replay.compliant and self.replay.may_continue)


@dataclass
class AuditReport:
    """The audit outcome for a whole trail.

    ``quarantined`` lists the raw records the ingestion layer diverted to
    the dead-letter collection (``--on-error quarantine``); they were
    never part of any replayed case.
    """

    cases: dict[str, CaseAuditResult] = field(default_factory=dict)
    quarantined: list[QuarantinedEntry] = field(default_factory=list)

    @property
    def infringements(self) -> list[Infringement]:
        found: list[Infringement] = []
        for result in self.cases.values():
            found.extend(result.infringements)
        return found

    @property
    def compliant(self) -> bool:
        return not self.infringements and not self.quarantined

    @property
    def infringing_cases(self) -> list[str]:
        return [case for case, result in self.cases.items() if not result.compliant]

    @property
    def failed_cases(self) -> list[str]:
        """Cases whose audit was contained (UNDECIDABLE / ERROR / TIMEOUT)."""
        return [case for case, result in self.cases.items() if result.failed]

    def outcome_counts(self) -> dict[str, int]:
        counts = {kind.value: 0 for kind in OutcomeKind}
        for result in self.cases.values():
            counts[result.outcome.value] += 1
        return counts

    def summary(self) -> str:
        lines = [
            f"audited {len(self.cases)} case(s); "
            f"{len(self.infringing_cases)} with infringements"
        ]
        if self.failed_cases:
            lines[0] += f" ({len(self.failed_cases)} not auditable)"
        for case, result in self.cases.items():
            if result.failed:
                status = str(result.outcome).upper()
            else:
                status = "OK" if result.compliant else "INFRINGEMENT"
            severity = (
                f" severity={result.severity.score:.1f}" if result.severity else ""
            )
            retried = f" retries={result.retries}" if result.retries else ""
            lines.append(f"  {case} [{result.purpose}]: {status}{severity}{retried}")
            for infringement in result.infringements:
                lines.append(f"    - {infringement.kind}: {infringement.detail}")
        if self.quarantined:
            lines.append(f"quarantined {len(self.quarantined)} record(s):")
            for record in self.quarantined:
                lines.append(f"  {record}")
        return "\n".join(lines)


class PurposeControlAuditor:
    """Audits trails for compliance with purpose specifications."""

    def __init__(
        self,
        registry: ProcessRegistry,
        hierarchy: RoleHierarchy | None = None,
        pdp: PolicyDecisionPoint | None = None,
        severity_model: SeverityModel | None = None,
        max_silent_states: int = 50_000,
        temporal: "dict[str, TemporalConstraints] | None" = None,
        now: "datetime | None" = None,
        telemetry: Telemetry | None = None,
        on_error: str = "fail",
        case_timeout_s: "float | None" = None,
        checker_wrapper=None,
        compiled: "bool | None" = None,
        automaton_dir: "str | None" = None,
        automaton_max_states: int = 50_000,
        preflight: bool = False,
    ):
        """``temporal`` maps purpose names to their temporal constraints;
        ``now`` is the audit time used to time out still-open cases
        (defaults to never timing out open cases).  ``telemetry``
        (default: disabled) instruments the whole pipeline below this
        auditor — see :mod:`repro.obs` and ``docs/observability.md``.

        Resilience (``docs/robustness.md``): classified failures — a
        purpose outside the decidable fragment (UNDECIDABLE) or a blown
        ``case_timeout_s`` budget (TIMEOUT) — are *always* contained to
        the offending case.  ``on_error`` governs everything else:
        ``"fail"`` (default) propagates unexpected exceptions,
        ``"skip"``/``"quarantine"`` contain them as ERROR outcomes.
        ``checker_wrapper`` is the ``(checker, purpose) -> checker``
        middleware seam used by :mod:`repro.testing.faults`.

        Static preflight (``docs/analysis.md``): ``preflight=True`` lints
        each purpose's process model (structural + workflow-net
        soundness, :mod:`repro.analysis`) before its first case is
        replayed.  Cases of a purpose with error-severity findings are
        quarantined as UNDECIDABLE — a deadlocking or token-leaking
        model would fail every replay spuriously, so the verdict names
        the model, not the trail.  The lint runs once per purpose and
        is cached for the auditor's lifetime.

        Compiled replay (``docs/compilation.md``): ``compiled=True``
        attaches a purpose automaton to every checker so cases replay
        through memoized transitions; ``automaton_dir`` additionally
        persists automata as artifacts (warm across runs, checkpointed
        incrementally during the audit) and implies ``compiled`` unless
        explicitly disabled.  Invalid artifacts are reported and
        recompiled — they never fail the audit."""
        if on_error not in ("fail", "skip", "quarantine"):
            raise ValueError(f"on_error must be fail/skip/quarantine, got {on_error!r}")
        self._registry = registry
        self._hierarchy = hierarchy
        self._pdp = pdp
        self._severity = severity_model
        self._max_silent_states = max_silent_states
        self._temporal = dict(temporal or {})
        self._now = now
        self._on_error = on_error
        self._case_timeout_s = case_timeout_s
        self._checker_wrapper = checker_wrapper
        self._compiled = compiled if compiled is not None else automaton_dir is not None
        self._automaton_max_states = automaton_max_states
        self._preflight = preflight
        self._preflight_cache: dict[str, tuple[str, ...]] = {}
        self._checkers: dict[str, ComplianceChecker] = {}
        self._checkpoints: list = []
        tel = telemetry if telemetry is not None else NULL_TELEMETRY
        self._tel = tel
        self._automaton_cache = None
        if automaton_dir is not None:
            from repro.compile import AutomatonCache

            self._automaton_cache = AutomatonCache(automaton_dir, telemetry=tel)
        self._m_cases = tel.registry.counter(
            "cases_audited_total", "process instances audited"
        )
        self._m_infringements = tel.registry.counter(
            "infringements_total", "infringements raised, by kind"
        )
        self._m_case_seconds = tel.registry.histogram(
            "audit_case_seconds", "wall time per audited case"
        )
        self._m_errors = tel.registry.counter(
            "audit_errors_total", "contained per-case audit failures, by kind"
        )
        self._m_preflight = tel.registry.counter(
            "preflight_unsound_total",
            "purposes whose processes failed the static preflight",
        )

    # -- checker cache -----------------------------------------------------
    def checker_for(self, purpose: str) -> ComplianceChecker:
        """The (shared, WeakNext-cached) checker of one purpose's process."""
        checker = self._checkers.get(purpose)
        if checker is None:
            checker = ComplianceChecker(
                self._registry.encoded_for(purpose),
                hierarchy=self._hierarchy,
                max_silent_states=self._max_silent_states,
                telemetry=self._tel,
            )
            if self._compiled:
                self._warm(checker)
            if self._checker_wrapper is not None:
                checker = self._checker_wrapper(checker, purpose)
            self._checkers[purpose] = checker
        return checker

    def _warm(self, checker: ComplianceChecker) -> None:
        """Attach a (cached, else fresh) automaton; arm checkpointing."""
        from repro.compile import CheckpointWriter, warm_checker

        automaton = warm_checker(
            checker,
            cache=self._automaton_cache,
            max_states=self._automaton_max_states,
            telemetry=self._tel,
        )
        if self._automaton_cache is not None:
            self._checkpoints.append(
                CheckpointWriter(
                    automaton,
                    self._automaton_cache.path_for(
                        automaton.purpose, automaton.fingerprint
                    ),
                    telemetry=self._tel,
                )
            )

    def checkpoint_automata(self, force: bool = False) -> None:
        """Persist newly materialized automaton states (no-op unless an
        ``automaton_dir`` was configured)."""
        for writer in self._checkpoints:
            writer.maybe_save(force=force)

    # -- auditing ------------------------------------------------------------
    def audit_case(self, case: str, case_trail: AuditTrail) -> CaseAuditResult:
        """Audit one process instance (Algorithm 1 plus the policy check).

        Classified failures (UNDECIDABLE, TIMEOUT) are always contained
        to this case; unexpected exceptions propagate under
        ``on_error="fail"`` and become ERROR results otherwise.
        """
        started = time.perf_counter() if self._tel.enabled else 0.0
        with self._tel.tracer.span("audit_case", case=case):
            try:
                result = self._audit_case(case, case_trail)
            except (
                NotFinitelyObservableError,
                ProcessValidationError,
                EncodingError,
                CaseTimeoutError,
            ) as error:
                result = self._failure_result(case, error)
            except Exception as error:
                if self._on_error == "fail":
                    raise
                result = self._failure_result(case, error)
        self._m_cases.inc()
        for infringement in result.infringements:
            self._m_infringements.inc(kind=str(infringement.kind))
            self._tel.events.emit(
                INFRINGEMENT_RAISED,
                case=case,
                kind=str(infringement.kind),
                detail=infringement.detail,
            )
        if self._tel.enabled:
            duration = time.perf_counter() - started
            self._m_case_seconds.observe(duration)
            self._tel.events.emit(
                CASE_AUDITED,
                case=case,
                purpose=result.purpose,
                outcome="compliant" if result.compliant else "infringing",
                entries=len(case_trail),
                infringements=len(result.infringements),
                duration_s=round(duration, 6),
            )
        return result

    def _failure_result(
        self, case: str, error: BaseException
    ) -> CaseAuditResult:
        """Contain one case's failed audit as a result (never a crash)."""
        kind = classify_failure(error)
        states = getattr(error, "states_explored", None)
        try:
            purpose: Optional[str] = self._registry.purpose_of_case(case)
        except UnknownPurposeError:
            purpose = None
        finding_kind = {
            OutcomeKind.UNDECIDABLE: InfringementKind.UNDECIDABLE,
            OutcomeKind.TIMEOUT: InfringementKind.TIMEOUT,
        }.get(kind, InfringementKind.AUDIT_ERROR)
        detail = f"audit did not complete: {error}"
        if states is not None:
            detail += f" (states explored: {states})"
        self._m_errors.inc(kind=kind.value)
        self._tel.events.emit(
            CASE_FAILED,
            case=case,
            kind=kind.value,
            error=str(error),
            error_type=type(error).__name__,
            retries=0,
        )
        return CaseAuditResult(
            case=case,
            purpose=purpose,
            replay=None,
            infringements=[Infringement(finding_kind, case, detail)],
            outcome=kind,
            error=str(error),
            error_type=type(error).__name__,
            states_explored=states,
        )

    def _preflight_codes(self, purpose: str) -> tuple[str, ...]:
        """The error-severity lint codes of *purpose*'s process (cached)."""
        cached = self._preflight_cache.get(purpose)
        if cached is None:
            from repro.analysis import lint_process

            process = self._registry.process_for(purpose)
            with self._tel.tracer.span("preflight", purpose=purpose):
                report = lint_process(process)
            cached = tuple(sorted({d.code for d in report.errors}))
            self._preflight_cache[purpose] = cached
            if cached:
                self._m_preflight.inc()
                self._tel.events.emit(
                    PREFLIGHT_UNSOUND,
                    purpose=purpose,
                    process=process.process_id,
                    codes=list(cached),
                )
        return cached

    def _audit_case(self, case: str, case_trail: AuditTrail) -> CaseAuditResult:
        try:
            purpose = self._registry.purpose_of_case(case)
        except UnknownPurposeError as error:
            return CaseAuditResult(
                case=case,
                purpose=None,
                replay=None,
                infringements=[
                    Infringement(InfringementKind.UNKNOWN_PURPOSE, case, str(error))
                ],
                outcome=OutcomeKind.UNKNOWN_PURPOSE,
            )

        if self._preflight:
            unsound_codes = self._preflight_codes(purpose)
            if unsound_codes:
                detail = (
                    f"purpose {purpose!r} failed the static preflight "
                    f"({', '.join(unsound_codes)}); replay verdicts for "
                    "an unsound model would be spurious — fix the model "
                    "and re-audit (see `repro lint`)"
                )
                return CaseAuditResult(
                    case=case,
                    purpose=purpose,
                    replay=None,
                    infringements=[
                        Infringement(InfringementKind.UNDECIDABLE, case, detail)
                    ],
                    outcome=OutcomeKind.UNDECIDABLE,
                )

        infringements: list[Infringement] = []
        if self._pdp is not None:
            infringements.extend(self._policy_infringements(case, case_trail))

        replay = replay_with_deadline(
            self.checker_for(purpose), case_trail, self._case_timeout_s
        )
        if not replay.compliant:
            entry = replay.failed_entry
            detail = (
                f"trail is not a valid execution of the {purpose!r} process; "
                f"entry {replay.failed_index} "
                f"({entry.role}.{entry.task} [{entry.status}]) cannot be simulated"
                if entry is not None
                else f"trail is not a valid execution of the {purpose!r} process"
            )
            infringements.append(
                Infringement(
                    InfringementKind.INVALID_EXECUTION, case, detail, entry
                )
            )

        constraints = self._temporal.get(purpose)
        if constraints is not None:
            case_open = replay.compliant and replay.may_continue
            for violation in constraints.check(
                case, case_trail, now=self._now, case_open=case_open
            ):
                infringements.append(
                    Infringement(
                        InfringementKind.TEMPORAL_VIOLATION,
                        case,
                        violation.detail,
                        violation.entry,
                    )
                )

        result = CaseAuditResult(
            case=case,
            purpose=purpose,
            replay=replay,
            infringements=infringements,
            outcome=(
                OutcomeKind.COMPLIANT
                if replay.compliant
                else OutcomeKind.INVALID_EXECUTION
            ),
        )
        if self._severity is not None and infringements:
            result.severity = self._severity.assess(result)
        return result

    def audit(
        self, trail: AuditTrail, quarantine: "Quarantine | None" = None
    ) -> AuditReport:
        """Audit every case appearing in *trail*.

        ``quarantine`` (optional) is the dead-letter collection the
        ingestion layer filled while loading *trail*; its records are
        attached to the report so the audit's output accounts for every
        raw record, replayed or not.
        """
        report = AuditReport()
        try:
            with self._tel.tracer.span("audit", entries=len(trail)):
                for case in trail.cases():
                    report.cases[case] = self.audit_case(
                        case, trail.for_case(case)
                    )
                    if self._checkpoints:
                        self.checkpoint_automata()
        finally:
            if self._checkpoints:
                self.checkpoint_automata(force=True)
        if quarantine is not None:
            report.quarantined = list(quarantine)
        return report

    def audit_object(self, trail: AuditTrail, obj: ObjectRef) -> AuditReport:
        """Audit every case in which *obj* (or a descendant) was accessed.

        The replay itself is object-independent: if several objects map
        to the same case, the case is audited once (the checker's caches
        make even repeated calls cheap) — Section 7's first scalability
        argument.
        """
        report = AuditReport()
        for case in trail.cases_touching(obj):
            report.cases[case] = self.audit_case(case, trail.for_case(case))
        return report

    # -- the preventive complement ----------------------------------------
    def _policy_infringements(
        self, case: str, case_trail: AuditTrail
    ) -> list[Infringement]:
        assert self._pdp is not None
        found: list[Infringement] = []
        for entry in case_trail:
            request = entry.as_access_request()
            if request is None:
                continue  # object-less events (e.g. a cancel) need no permit
            decision = self._pdp.evaluate(request)
            if not decision.permit:
                found.append(
                    Infringement(
                        InfringementKind.UNAUTHORIZED_ACCESS,
                        case,
                        f"{entry.user} {entry.action} {entry.obj} in task "
                        f"{entry.task}: {decision.reason}",
                        entry,
                    )
                )
        return found
