"""The end-to-end purpose-control auditor.

Ties the three framework components together (Section 3): for every case
in an audit trail it resolves the claimed purpose through the process
registry, replays the case's entries with Algorithm 1, and (optionally)
re-evaluates each entry's implied access request against the data
protection policy — the complementary preventive check Section 3.5 calls
for, since Algorithm 1 deliberately allows any action inside an active
task.

Two properties of the paper's Section 7 are visible in the API:

* **object independence** — :meth:`PurposeControlAuditor.audit_object`
  audits the *cases* that touched an object; a case verdict is computed
  once and reused for every object, because Algorithm 1 does not depend
  on the object under investigation;
* **per-case independence** — cases are audited in isolation, so callers
  can parallelize freely (benchmark E10).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from datetime import datetime
from enum import Enum
from typing import Optional

from repro.audit.model import AuditTrail, LogEntry
from repro.core.compliance import ComplianceChecker, ComplianceResult
from repro.core.severity import SeverityAssessment, SeverityModel
from repro.core.temporal import TemporalConstraints
from repro.errors import UnknownPurposeError
from repro.obs import (
    CASE_AUDITED,
    INFRINGEMENT_RAISED,
    NULL_TELEMETRY,
    Telemetry,
)
from repro.policy.engine import PolicyDecisionPoint
from repro.policy.hierarchy import RoleHierarchy
from repro.policy.model import ObjectRef
from repro.policy.registry import ProcessRegistry


class InfringementKind(Enum):
    """Why an audited case raised a flag."""

    #: The case's trail is not a valid execution of the claimed purpose's
    #: process — the re-purposing detection of Section 4.
    INVALID_EXECUTION = "invalid-execution"
    #: An entry's implied access request is denied by the policy (Def. 3).
    UNAUTHORIZED_ACCESS = "unauthorized-access"
    #: The case id does not resolve to any registered purpose.
    UNKNOWN_PURPOSE = "unknown-purpose"
    #: A temporal constraint of the purpose was violated (Section 4's
    #: maximum-duration remark; see :mod:`repro.core.temporal`).
    TEMPORAL_VIOLATION = "temporal-violation"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Infringement:
    """One detected privacy infringement."""

    kind: InfringementKind
    case: str
    detail: str
    entry: Optional[LogEntry] = None

    def __str__(self) -> str:
        return f"[{self.kind}] case {self.case}: {self.detail}"


@dataclass
class CaseAuditResult:
    """The audit outcome for one process instance."""

    case: str
    purpose: Optional[str]
    replay: Optional[ComplianceResult]
    infringements: list[Infringement] = field(default_factory=list)
    severity: Optional[SeverityAssessment] = None

    @property
    def compliant(self) -> bool:
        return not self.infringements

    @property
    def open(self) -> bool:
        """Whether the case may legitimately continue (a valid prefix)."""
        return bool(self.replay and self.replay.compliant and self.replay.may_continue)


@dataclass
class AuditReport:
    """The audit outcome for a whole trail."""

    cases: dict[str, CaseAuditResult] = field(default_factory=dict)

    @property
    def infringements(self) -> list[Infringement]:
        found: list[Infringement] = []
        for result in self.cases.values():
            found.extend(result.infringements)
        return found

    @property
    def compliant(self) -> bool:
        return not self.infringements

    @property
    def infringing_cases(self) -> list[str]:
        return [case for case, result in self.cases.items() if not result.compliant]

    def summary(self) -> str:
        lines = [
            f"audited {len(self.cases)} case(s); "
            f"{len(self.infringing_cases)} with infringements"
        ]
        for case, result in self.cases.items():
            status = "OK" if result.compliant else "INFRINGEMENT"
            severity = (
                f" severity={result.severity.score:.1f}" if result.severity else ""
            )
            lines.append(f"  {case} [{result.purpose}]: {status}{severity}")
            for infringement in result.infringements:
                lines.append(f"    - {infringement.kind}: {infringement.detail}")
        return "\n".join(lines)


class PurposeControlAuditor:
    """Audits trails for compliance with purpose specifications."""

    def __init__(
        self,
        registry: ProcessRegistry,
        hierarchy: RoleHierarchy | None = None,
        pdp: PolicyDecisionPoint | None = None,
        severity_model: SeverityModel | None = None,
        max_silent_states: int = 50_000,
        temporal: "dict[str, TemporalConstraints] | None" = None,
        now: "datetime | None" = None,
        telemetry: Telemetry | None = None,
    ):
        """``temporal`` maps purpose names to their temporal constraints;
        ``now`` is the audit time used to time out still-open cases
        (defaults to never timing out open cases).  ``telemetry``
        (default: disabled) instruments the whole pipeline below this
        auditor — see :mod:`repro.obs` and ``docs/observability.md``."""
        self._registry = registry
        self._hierarchy = hierarchy
        self._pdp = pdp
        self._severity = severity_model
        self._max_silent_states = max_silent_states
        self._temporal = dict(temporal or {})
        self._now = now
        self._checkers: dict[str, ComplianceChecker] = {}
        tel = telemetry if telemetry is not None else NULL_TELEMETRY
        self._tel = tel
        self._m_cases = tel.registry.counter(
            "cases_audited_total", "process instances audited"
        )
        self._m_infringements = tel.registry.counter(
            "infringements_total", "infringements raised, by kind"
        )
        self._m_case_seconds = tel.registry.histogram(
            "audit_case_seconds", "wall time per audited case"
        )

    # -- checker cache -----------------------------------------------------
    def checker_for(self, purpose: str) -> ComplianceChecker:
        """The (shared, WeakNext-cached) checker of one purpose's process."""
        checker = self._checkers.get(purpose)
        if checker is None:
            checker = ComplianceChecker(
                self._registry.encoded_for(purpose),
                hierarchy=self._hierarchy,
                max_silent_states=self._max_silent_states,
                telemetry=self._tel,
            )
            self._checkers[purpose] = checker
        return checker

    # -- auditing ------------------------------------------------------------
    def audit_case(self, case: str, case_trail: AuditTrail) -> CaseAuditResult:
        """Audit one process instance (Algorithm 1 plus the policy check)."""
        started = time.perf_counter() if self._tel.enabled else 0.0
        with self._tel.tracer.span("audit_case", case=case):
            result = self._audit_case(case, case_trail)
        self._m_cases.inc()
        for infringement in result.infringements:
            self._m_infringements.inc(kind=str(infringement.kind))
            self._tel.events.emit(
                INFRINGEMENT_RAISED,
                case=case,
                kind=str(infringement.kind),
                detail=infringement.detail,
            )
        if self._tel.enabled:
            duration = time.perf_counter() - started
            self._m_case_seconds.observe(duration)
            self._tel.events.emit(
                CASE_AUDITED,
                case=case,
                purpose=result.purpose,
                outcome="compliant" if result.compliant else "infringing",
                entries=len(case_trail),
                infringements=len(result.infringements),
                duration_s=round(duration, 6),
            )
        return result

    def _audit_case(self, case: str, case_trail: AuditTrail) -> CaseAuditResult:
        try:
            purpose = self._registry.purpose_of_case(case)
        except UnknownPurposeError as error:
            return CaseAuditResult(
                case=case,
                purpose=None,
                replay=None,
                infringements=[
                    Infringement(InfringementKind.UNKNOWN_PURPOSE, case, str(error))
                ],
            )

        infringements: list[Infringement] = []
        if self._pdp is not None:
            infringements.extend(self._policy_infringements(case, case_trail))

        replay = self.checker_for(purpose).check(case_trail)
        if not replay.compliant:
            entry = replay.failed_entry
            detail = (
                f"trail is not a valid execution of the {purpose!r} process; "
                f"entry {replay.failed_index} "
                f"({entry.role}.{entry.task} [{entry.status}]) cannot be simulated"
                if entry is not None
                else f"trail is not a valid execution of the {purpose!r} process"
            )
            infringements.append(
                Infringement(
                    InfringementKind.INVALID_EXECUTION, case, detail, entry
                )
            )

        constraints = self._temporal.get(purpose)
        if constraints is not None:
            case_open = replay.compliant and replay.may_continue
            for violation in constraints.check(
                case, case_trail, now=self._now, case_open=case_open
            ):
                infringements.append(
                    Infringement(
                        InfringementKind.TEMPORAL_VIOLATION,
                        case,
                        violation.detail,
                        violation.entry,
                    )
                )

        result = CaseAuditResult(
            case=case, purpose=purpose, replay=replay, infringements=infringements
        )
        if self._severity is not None and infringements:
            result.severity = self._severity.assess(result)
        return result

    def audit(self, trail: AuditTrail) -> AuditReport:
        """Audit every case appearing in *trail*."""
        report = AuditReport()
        with self._tel.tracer.span("audit", entries=len(trail)):
            for case in trail.cases():
                report.cases[case] = self.audit_case(case, trail.for_case(case))
        return report

    def audit_object(self, trail: AuditTrail, obj: ObjectRef) -> AuditReport:
        """Audit every case in which *obj* (or a descendant) was accessed.

        The replay itself is object-independent: if several objects map
        to the same case, the case is audited once (the checker's caches
        make even repeated calls cheap) — Section 7's first scalability
        argument.
        """
        report = AuditReport()
        for case in trail.cases_touching(obj):
            report.cases[case] = self.audit_case(case, trail.for_case(case))
        return report

    # -- the preventive complement ----------------------------------------
    def _policy_infringements(
        self, case: str, case_trail: AuditTrail
    ) -> list[Infringement]:
        assert self._pdp is not None
        found: list[Infringement] = []
        for entry in case_trail:
            request = entry.as_access_request()
            if request is None:
                continue  # object-less events (e.g. a cancel) need no permit
            decision = self._pdp.evaluate(request)
            if not decision.permit:
                found.append(
                    Infringement(
                        InfringementKind.UNAUTHORIZED_ACCESS,
                        case,
                        f"{entry.user} {entry.action} {entry.obj} in task "
                        f"{entry.task}: {decision.reason}",
                        entry,
                    )
                )
        return found
