"""Fault-isolated parallel case auditing (Section 7: "massive parallelization").

The paper argues its audit scales because "the analysis of process
instances is independent from each other, allowing for massive
parallelization".  This module realizes that claim — and hardens it:
a batch audit always completes with a :class:`CaseOutcome` for every
case, whatever individual cases do to their workers.

Dispatch is **error-isolating**: instead of the old bare ``pool.map``
(where one poisoned case aborted the whole batch), every case is its own
job, results are collected in completion order, and each worker wraps
its replay in exception capture so a failure is filed under the case
that caused it (see :func:`repro.core.resilience.classify_failure`).
Worker **crashes** (a killed or segfaulted process) are detected by the
executor; the jobs the dead worker took down are re-dispatched in a
fresh pool under a configurable :class:`~repro.core.resilience.RetryPolicy`
(bounded attempts, exponential backoff), and cases that repeatedly fail
in workers fall back to serial execution in the parent.  A per-case
wall-clock budget (``case_timeout_s``) rides alongside the existing
``max_silent_states`` guard via
:func:`~repro.core.resilience.replay_with_deadline`.

The functions deliberately exchange only plain data (case ids, entry
lists, and small per-case result dicts) with the workers; the expensive
WeakNext caches live and grow inside each worker.  Checkers are built
**lazily per purpose** inside the worker — so a registry entry whose
encoding fails (e.g. a non-well-founded process) poisons only the cases
of that purpose, never worker startup.  Checker construction forwards
the caller's role hierarchy and silent-state bound, so COMPLIANT /
INVALID_EXECUTION outcomes match the serial
:class:`repro.core.auditor.PurposeControlAuditor` exactly.

With ``telemetry`` enabled, workers count replay outcomes per case and
hand them back with each result; the parent merges them into its own
registry under the same metric names the serial pipeline uses
(``replay_entries_total{outcome=...}``, ``cases_audited_total``,
``infringements_total{kind=...}``) plus the resilience counters
(``audit_errors_total{kind=...}``, ``case_retries_total``) and a
``parallel_workers`` gauge.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Optional

from repro.audit.model import AuditTrail, LogEntry
from repro.bpmn.serialize import process_from_dict, process_to_dict
from repro.core.compliance import ComplianceChecker, ComplianceResult
from repro.core.resilience import (
    CaseOutcome,
    OutcomeKind,
    RetryPolicy,
    replay_with_deadline,
)
from repro.errors import UnknownPurposeError, WorkerLostError
from repro.obs import (
    NULL_TELEMETRY,
    Telemetry,
    TraceContext,
    WORKER_INIT,
    WORKER_LOST,
)
from repro.policy.hierarchy import RoleHierarchy
from repro.policy.registry import ProcessRegistry

#: The legacy tri-state verdict: True = compliant, False = invalid
#: execution, None = anything else (unknown purpose, undecidable,
#: error, timeout).  Kept for callers that only need the paper's view;
#: recover it from an outcome map with :func:`verdicts_from_outcomes`.
CaseVerdict = Optional[bool]

#: A checker middleware: ``(checker, purpose) -> checker-like``.  Applied
#: to every checker a worker (or the serial path) builds — the seam the
#: fault-injection harness (:mod:`repro.testing.faults`) plugs into.
#: Must be picklable to cross the process boundary.
CheckerWrapper = Callable[[ComplianceChecker, str], ComplianceChecker]


class _WorkerState:
    """Everything one audit run needs to replay cases, self-contained.

    Instantiated once per worker process (by :func:`_initialize_worker`)
    and once per *call* on the serial path — never stored in parent-
    process globals, so back-to-back serial audits against different
    registries cannot see each other's checkers.
    """

    def __init__(
        self,
        process_documents: dict[str, dict],
        prefixes: dict[str, str],
        hierarchy_map: Optional[dict[str, list[str]]],
        max_silent_states: int,
        collect_stats: bool,
        case_timeout_s: Optional[float],
        checker_wrapper: Optional[CheckerWrapper],
        automaton_documents: Optional[dict[str, dict]] = None,
    ):
        self.documents = process_documents
        self.automata = automaton_documents or {}
        self.prefixes = dict(prefixes)
        self.hierarchy = (
            RoleHierarchy.from_parent_map(hierarchy_map)
            if hierarchy_map is not None
            else None
        )
        self.max_silent_states = max_silent_states
        self.collect = collect_stats
        self.case_timeout_s = case_timeout_s
        self.wrapper = checker_wrapper
        # purpose -> checker, or the exception its construction raised
        # (cached too, so every case of a poisoned purpose fails fast).
        self._checkers: dict[str, ComplianceChecker | Exception] = {}

    def checker_for(self, purpose: str) -> ComplianceChecker:
        """The (lazily built, per-purpose cached) compliance checker.

        Construction failures — e.g. encoding a non-well-founded
        process — are cached and re-raised per case instead of killing
        worker startup.

        When the parent shipped a compiled automaton document for the
        purpose, the checker is a
        :class:`~repro.compile.replay.CompiledChecker` facade: the BPMN
        is *not* re-encoded here — the interpreted backend is built
        lazily, only if a case needs a transition the artifact does not
        cover.
        """
        cached = self._checkers.get(purpose)
        if cached is None:
            try:
                checker = self._build_checker(purpose)
                if self.wrapper is not None:
                    checker = self.wrapper(checker, purpose)
            except Exception as error:
                checker = error
            self._checkers[purpose] = checker
            cached = checker
        if isinstance(cached, Exception):
            raise cached
        return cached

    def _build_checker(self, purpose: str):
        document = self.automata.get(purpose)
        if document is not None:
            try:
                from repro.compile import (
                    CompiledChecker,
                    PurposeAutomaton,
                    compile_table,
                )

                automaton = PurposeAutomaton.from_document(document)
                try:
                    # Flatten the shipped document into the dense tier:
                    # pure data reshaping (no engine), and the table is
                    # id-aligned by construction since it comes from
                    # this very automaton.
                    automaton.attach_table(compile_table(automaton))
                except Exception:
                    pass  # lazy tier still serves every covered trail
                return CompiledChecker(
                    automaton,
                    checker_factory=lambda: self._build_interpreted(purpose),
                )
            except Exception:
                pass  # fall through to the interpreted checker
        return self._build_interpreted(purpose)

    def _build_interpreted(self, purpose: str) -> ComplianceChecker:
        from repro.bpmn.encode import encode

        process = process_from_dict(self.documents[purpose])
        return ComplianceChecker(
            encode(process),
            hierarchy=self.hierarchy,
            max_silent_states=self.max_silent_states,
        )


# The one global a *worker process* holds; the parent never touches it.
_WORKER_STATE: Optional[_WorkerState] = None


def _initialize_worker(*state_args) -> None:
    global _WORKER_STATE
    _WORKER_STATE = _WorkerState(*state_args)


def _audit_case_guarded(
    state: _WorkerState, case: str, entries: list[LogEntry]
) -> dict:
    """Replay one case; never raises — failures become result fields.

    Returns a plain-data dict (picklable) the parent turns into a
    :class:`CaseOutcome`.  ``outcomes`` carries the per-step replay
    outcome counts when telemetry was requested.
    """
    started = time.perf_counter()
    started_unix = time.time()
    purpose: Optional[str] = None
    try:
        prefix = case.partition("-")[0]
        purpose = state.prefixes.get(prefix)
        if purpose is None:
            raise UnknownPurposeError(
                f"case {case!r} references unknown process prefix {prefix!r}"
            )
        checker = state.checker_for(purpose)
        result = replay_with_deadline(checker, entries, state.case_timeout_s)
        return {
            "case": case,
            "kind": (
                OutcomeKind.COMPLIANT
                if result.compliant
                else OutcomeKind.INVALID_EXECUTION
            ).value,
            "purpose": purpose,
            "failed_index": result.failed_index,
            "error": None,
            "error_type": None,
            "states_explored": None,
            "pid": os.getpid(),
            "duration_s": time.perf_counter() - started,
            "started_unix_s": started_unix,
            "outcomes": _step_outcomes(result) if state.collect else None,
        }
    except Exception as error:
        from repro.core.resilience import classify_failure

        return {
            "case": case,
            "kind": classify_failure(error).value,
            "purpose": purpose,
            "failed_index": None,
            "error": str(error),
            "error_type": type(error).__name__,
            "states_explored": getattr(error, "states_explored", None),
            "pid": os.getpid(),
            "duration_s": time.perf_counter() - started,
            "started_unix_s": started_unix,
            "outcomes": {} if state.collect else None,
        }


def _step_outcomes(result: ComplianceResult) -> dict[str, int]:
    outcomes: dict[str, int] = {}
    for step in result.steps:
        outcomes[step.outcome] = outcomes.get(step.outcome, 0) + 1
    return outcomes


def _audit_one(job: tuple[str, list[LogEntry]]) -> dict:
    """The worker entry point: replay one case against the worker state."""
    assert _WORKER_STATE is not None, "worker used before initialization"
    case, entries = job
    return _audit_case_guarded(_WORKER_STATE, case, entries)


def _lost_result(case: str, attempts: int) -> dict:
    """The result recorded for a case abandoned after repeated worker loss."""
    error = WorkerLostError(
        f"worker died while auditing case {case!r} "
        f"({attempts} attempt(s) exhausted)",
        attempts=attempts,
    )
    return {
        "case": case,
        "kind": OutcomeKind.ERROR.value,
        "purpose": None,
        "failed_index": None,
        "error": str(error),
        "error_type": type(error).__name__,
        "states_explored": None,
        "pid": None,
        "duration_s": 0.0,
        "started_unix_s": 0.0,
        "outcomes": None,
    }


def _run_pool(
    jobs: dict[str, list[LogEntry]],
    workers: int,
    state_args: tuple,
    policy: RetryPolicy,
    telemetry: Telemetry,
    serial_fallback: bool,
) -> tuple[dict[str, dict], dict[str, int]]:
    """Dispatch *jobs* across worker processes, surviving worker death.

    Per-job futures are collected in completion order; when the pool
    breaks (a worker was killed), finished results are kept, the lost
    jobs are requeued under *policy*, and a fresh pool takes over.
    Jobs that exhaust their attempts run serially in the parent (when
    ``serial_fallback``) or are recorded as ERROR outcomes.

    Returns ``(raw results by case, re-dispatch counts by case)``.
    """
    from concurrent.futures import ProcessPoolExecutor, as_completed
    from concurrent.futures.process import BrokenProcessPool

    pending = dict(jobs)
    failures = {case: 0 for case in jobs}
    raw: dict[str, dict] = {}
    retries: dict[str, int] = {case: 0 for case in jobs}
    while pending:
        executor = ProcessPoolExecutor(
            max_workers=min(workers, len(pending)),
            initializer=_initialize_worker,
            initargs=state_args,
        )
        broken = False
        try:
            futures = {
                executor.submit(_audit_one, (case, entries)): case
                for case, entries in pending.items()
            }
            for future in as_completed(futures):
                case = futures[future]
                try:
                    result = future.result()
                except BrokenProcessPool:
                    broken = True
                    continue  # the job stays pending; requeued below
                raw[case] = result
                pending.pop(case, None)
        except BrokenProcessPool:  # pragma: no cover - raised via futures
            broken = True
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
        if not pending:
            break
        if not broken:  # pragma: no cover - defensive; should not happen
            for case in list(pending):
                raw[case] = _lost_result(case, failures[case] + 1)
                pending.pop(case)
            break
        # a worker died: every unfinished job counts one failed attempt
        max_failures = 0
        for case in list(pending):
            failures[case] += 1
            retries[case] = failures[case]
            max_failures = max(max_failures, failures[case])
            if not policy.allows_retry(failures[case]):
                entries = pending.pop(case)
                if serial_fallback:
                    state = _WorkerState(*state_args)
                    raw[case] = _audit_case_guarded(state, case, entries)
                else:
                    raw[case] = _lost_result(case, failures[case])
        telemetry.events.emit(
            WORKER_LOST, lost_jobs=len(pending), attempt=max_failures
        )
        if pending:
            delay = policy.delay(max_failures)
            if delay > 0:
                time.sleep(delay)
    return raw, retries


def _merge_stats(
    telemetry: Telemetry,
    results: dict[str, dict],
    outcomes: dict[str, CaseOutcome],
    purposes: list[str],
) -> None:
    """Fold worker-reported counters into the parent's registry, under
    the same metric names the serial pipeline uses."""
    registry = telemetry.registry
    m_entries = registry.counter(
        "replay_entries_total", "log entries replayed, by outcome"
    )
    m_cases = registry.counter("cases_audited_total", "process instances audited")
    m_infringements = registry.counter(
        "infringements_total", "infringements raised, by kind"
    )
    m_errors = registry.counter(
        "audit_errors_total", "contained per-case audit failures, by kind"
    )
    m_retries = registry.counter(
        "case_retries_total", "case re-dispatches after worker loss"
    )
    workers_seen: set[int] = set()
    for case, outcome in outcomes.items():
        m_cases.inc()
        if outcome.kind is OutcomeKind.UNKNOWN_PURPOSE:
            m_infringements.inc(kind="unknown-purpose")
        elif outcome.kind is OutcomeKind.INVALID_EXECUTION:
            m_infringements.inc(kind="invalid-execution")
        elif outcome.kind is not OutcomeKind.COMPLIANT:
            m_errors.inc(kind=outcome.kind.value)
        if outcome.retries:
            m_retries.inc(outcome.retries)
        stats = results[case].get("outcomes")
        pid = results[case].get("pid")
        if stats is None:
            continue
        if pid is not None and pid not in workers_seen:
            workers_seen.add(pid)
            telemetry.events.emit(WORKER_INIT, pid=pid, purposes=purposes)
        for step_outcome, count in stats.items():
            m_entries.inc(count, outcome=step_outcome)
    registry.gauge(
        "parallel_workers", "distinct worker processes that audited cases"
    ).set(len(workers_seen))


def _compile_for_workers(
    registry: ProcessRegistry,
    hierarchy: RoleHierarchy | None,
    max_silent_states: int,
    automaton_dir: Optional[str],
    automaton_max_states: int,
    telemetry: Telemetry,
) -> dict[str, dict]:
    """Compile (or load) each purpose's automaton once, in the parent.

    The result maps purpose -> plain automaton document, picklable into
    worker initargs.  Every failure is contained per purpose: the BPMN
    of a non-well-founded process used to fail lazily inside workers,
    and still does — pre-compilation must not turn it into a batch-wide
    startup crash.
    """
    from repro.compile import (
        AutomatonCache,
        compile_automaton,
        fingerprint_encoded,
    )

    cache = (
        AutomatonCache(automaton_dir, telemetry=telemetry)
        if automaton_dir is not None
        else None
    )
    shipped: dict[str, dict] = {}
    for purpose in registry.purposes():
        try:
            encoded = registry.encoded_for(purpose)
            fingerprint = fingerprint_encoded(encoded, hierarchy=hierarchy)
            automaton = (
                cache.load(purpose, fingerprint) if cache is not None else None
            )
            if automaton is None:
                checker = ComplianceChecker(
                    encoded,
                    hierarchy=hierarchy,
                    max_silent_states=max_silent_states,
                    telemetry=telemetry,
                )
                automaton = compile_automaton(
                    checker,
                    fingerprint=fingerprint,
                    max_states=automaton_max_states,
                    telemetry=telemetry,
                )
                if cache is not None:
                    cache.save(automaton)
            shipped[purpose] = automaton.to_document()
        except Exception:
            continue
    return shipped


def verdicts_from_outcomes(
    outcomes: dict[str, CaseOutcome]
) -> dict[str, CaseVerdict]:
    """Project an outcome map onto the legacy tri-state verdicts."""
    return {case: outcome.verdict for case, outcome in outcomes.items()}


def audit_cases_parallel(
    registry: ProcessRegistry,
    trail: AuditTrail,
    workers: int = 2,
    hierarchy: RoleHierarchy | None = None,
    max_silent_states: int = 50_000,
    telemetry: Telemetry | None = None,
    retry_policy: RetryPolicy | None = None,
    case_timeout_s: Optional[float] = None,
    checker_wrapper: Optional[CheckerWrapper] = None,
    serial_fallback: bool = True,
    compiled: bool = False,
    automaton_dir: Optional[str] = None,
    automaton_max_states: int = 50_000,
) -> dict[str, CaseOutcome]:
    """Audit every case of *trail* across *workers* processes.

    Returns the case -> :class:`CaseOutcome` map; the audit **always
    completes with an outcome for every case**.  COMPLIANT /
    INVALID_EXECUTION outcomes are identical to what
    :class:`repro.core.auditor.PurposeControlAuditor` computes serially
    (without the policy check — this is the replay-scaling primitive).
    A case whose prefix matches no registered purpose comes back
    UNKNOWN_PURPOSE; a case whose process falls outside the decidable
    fragment (non-well-founded, not finitely observable) UNDECIDABLE; a
    case that blows its ``case_timeout_s`` budget TIMEOUT; any other
    contained exception ERROR — with the captured message on
    ``outcome.error`` either way.

    ``hierarchy`` and ``max_silent_states`` are forwarded to every
    worker's checkers so role specialization and the silent-state guard
    behave exactly as in the serial path.  ``retry_policy`` (default:
    3 attempts with exponential backoff) governs re-dispatch of jobs
    lost to dead workers; when attempts are exhausted the case falls
    back to serial execution in the parent (``serial_fallback=True``)
    or is recorded as an ERROR outcome.  ``checker_wrapper`` is the
    picklable middleware seam used by :mod:`repro.testing.faults`.

    ``compiled=True`` (or any ``automaton_dir``) pre-compiles each
    purpose's automaton **once in the parent** — loading it from the
    artifact directory when a valid one exists — and ships the plain
    document to every worker, so workers replay warm without
    re-encoding the BPMN or re-exploring WeakNext (see
    ``docs/compilation.md``).  A purpose whose compilation fails keeps
    the lazy per-case containment workers always had.
    """
    tel = telemetry if telemetry is not None else NULL_TELEMETRY
    policy = retry_policy if retry_policy is not None else RetryPolicy()
    tracer = tel.tracer
    # One trace per batch audit: the root context is pinned up front so
    # per-case spans (synthesized below from the plain wall-clock
    # timings workers hand back) can parent to it — the cross-process
    # half of the distributed tracing story.
    root_ctx = TraceContext.new() if tracer.enabled else None
    audit_started_unix = time.time() if tracer.enabled else 0.0
    jobs = {case: trail.for_case(case).entries for case in trail.cases()}
    documents = {
        purpose: process_to_dict(registry.process_for(purpose))
        for purpose in registry.purposes()
    }
    prefixes = {
        prefix: purpose
        for purpose in registry.purposes()
        for prefix in [registry.case_prefix_of(purpose)]
        if prefix is not None
    }
    hierarchy_map = hierarchy.to_parent_map() if hierarchy is not None else None
    automaton_documents = None
    if compiled or automaton_dir is not None:
        automaton_documents = _compile_for_workers(
            registry,
            hierarchy,
            max_silent_states,
            automaton_dir,
            automaton_max_states,
            tel,
        )
    state_args = (
        documents,
        prefixes,
        hierarchy_map,
        max_silent_states,
        tel.enabled,
        case_timeout_s,
        checker_wrapper,
        automaton_documents,
    )
    if workers <= 1 or len(jobs) <= 1:
        # Serial path: per-call state, so nothing leaks between audits.
        state = _WorkerState(*state_args)
        raw = {
            case: _audit_case_guarded(state, case, entries)
            for case, entries in jobs.items()
        }
        retries = {case: 0 for case in jobs}
    else:
        raw, retries = _run_pool(
            jobs, workers, state_args, policy, tel, serial_fallback
        )
    outcomes = {
        case: CaseOutcome(
            case=case,
            kind=OutcomeKind(result["kind"]),
            purpose=result["purpose"],
            failed_index=result["failed_index"],
            error=result["error"],
            error_type=result["error_type"],
            states_explored=result["states_explored"],
            retries=retries.get(case, 0),
            duration_s=result["duration_s"],
            worker_pid=result["pid"],
        )
        for case, result in raw.items()
    }
    # deterministic ordering: first appearance in the trail
    outcomes = {case: outcomes[case] for case in jobs if case in outcomes}
    if root_ctx is not None:
        for case in outcomes:
            result = raw[case]
            tracer.record_span(
                "audit.case",
                result.get("started_unix_s") or audit_started_unix,
                result["duration_s"],
                parent=root_ctx,
                case=case,
                kind=result["kind"],
                pid=result["pid"],
            )
        tracer.record_span(
            "audit.parallel",
            audit_started_unix,
            time.time() - audit_started_unix,
            context=root_ctx,
            cases=len(outcomes),
            workers=workers,
        )
    if tel.enabled:
        _merge_stats(tel, raw, outcomes, sorted(registry.purposes()))
    return outcomes
