"""Parallel case auditing (Section 7: "massive parallelization").

The paper argues its audit scales because "the analysis of process
instances is independent from each other, allowing for massive
parallelization".  This module realizes that claim with a
:mod:`multiprocessing` pool: cases are distributed across worker
processes; each worker builds (once) the compliance checker for every
purpose it encounters and replays its share of cases.

The functions deliberately exchange only plain data (case ids and entry
lists) with the workers; the expensive WeakNext caches live and grow
inside each worker.
"""

from __future__ import annotations

import multiprocessing
from typing import Optional

from repro.audit.model import AuditTrail, LogEntry
from repro.bpmn.serialize import process_from_dict, process_to_dict
from repro.core.compliance import ComplianceChecker
from repro.policy.registry import ProcessRegistry

# Worker-process state, installed by _initialize_worker.
_WORKER_CHECKERS: dict[str, ComplianceChecker] = {}
_WORKER_PREFIXES: dict[str, str] = {}


def _initialize_worker(
    process_documents: dict[str, dict], prefixes: dict[str, str]
) -> None:
    from repro.bpmn.encode import encode

    _WORKER_CHECKERS.clear()
    _WORKER_PREFIXES.clear()
    _WORKER_PREFIXES.update(prefixes)
    for purpose, document in process_documents.items():
        process = process_from_dict(document)
        _WORKER_CHECKERS[purpose] = ComplianceChecker(encode(process))


def _audit_one(job: tuple[str, list[LogEntry]]) -> tuple[str, bool, Optional[int]]:
    case, entries = job
    prefix = case.partition("-")[0]
    purpose = _WORKER_PREFIXES.get(prefix)
    if purpose is None or purpose not in _WORKER_CHECKERS:
        return case, False, None
    result = _WORKER_CHECKERS[purpose].check(entries)
    return case, result.compliant, result.failed_index


def audit_cases_parallel(
    registry: ProcessRegistry,
    trail: AuditTrail,
    workers: int = 2,
) -> dict[str, bool]:
    """Audit every case of *trail* across *workers* processes.

    Returns the case -> compliant verdict map, identical to what
    :class:`repro.core.auditor.PurposeControlAuditor` computes serially
    (without the policy check — this is the replay-scaling primitive).
    """
    jobs = [(case, trail.for_case(case).entries) for case in trail.cases()]
    documents = {
        purpose: process_to_dict(registry.process_for(purpose))
        for purpose in registry.purposes()
    }
    prefixes = {
        prefix: purpose
        for purpose in registry.purposes()
        for prefix in [registry.case_prefix_of(purpose)]
        if prefix is not None
    }
    if workers <= 1:
        _initialize_worker(documents, prefixes)
        results = [_audit_one(job) for job in jobs]
    else:
        with multiprocessing.Pool(
            processes=workers,
            initializer=_initialize_worker,
            initargs=(documents, prefixes),
        ) as pool:
            results = pool.map(_audit_one, jobs, chunksize=max(1, len(jobs) // (workers * 4)))
    return {case: compliant for case, compliant, _ in results}
