"""Parallel case auditing (Section 7: "massive parallelization").

The paper argues its audit scales because "the analysis of process
instances is independent from each other, allowing for massive
parallelization".  This module realizes that claim with a
:mod:`multiprocessing` pool: cases are distributed across worker
processes; each worker builds (once) the compliance checker for every
purpose it encounters and replays its share of cases.

The functions deliberately exchange only plain data (case ids, entry
lists, and small per-case stat dicts) with the workers; the expensive
WeakNext caches live and grow inside each worker.  Checker construction
forwards the caller's role hierarchy and silent-state bound, so parallel
verdicts match the serial :class:`repro.core.auditor.PurposeControlAuditor`
exactly.

Verdicts are tri-state (:data:`CaseVerdict`): ``True`` for a compliant
replay, ``False`` for an invalid execution, and ``None`` when the case id
does not resolve to any registered purpose — mirroring
``InfringementKind.UNKNOWN_PURPOSE``, which is *not* the same finding as
a non-compliant trail.

With ``telemetry`` enabled, workers count replay outcomes per case and
hand them back with each verdict; the parent merges them into its own
registry under the same metric names the serial pipeline uses
(``replay_entries_total{outcome=...}``, ``cases_audited_total``,
``infringements_total{kind=...}``) plus a ``parallel_workers`` gauge.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Optional

from repro.audit.model import AuditTrail, LogEntry
from repro.bpmn.serialize import process_from_dict, process_to_dict
from repro.core.compliance import ComplianceChecker
from repro.obs import NULL_TELEMETRY, Telemetry, WORKER_INIT
from repro.policy.hierarchy import RoleHierarchy
from repro.policy.registry import ProcessRegistry

#: Per-case verdict: True = compliant, False = invalid execution,
#: None = the case prefix resolves to no registered purpose
#: (the parallel analogue of ``InfringementKind.UNKNOWN_PURPOSE``).
CaseVerdict = Optional[bool]

# Worker-process state, installed by _initialize_worker.
_WORKER_CHECKERS: dict[str, ComplianceChecker] = {}
_WORKER_PREFIXES: dict[str, str] = {}
_WORKER_OPTIONS: dict = {}


def _initialize_worker(
    process_documents: dict[str, dict],
    prefixes: dict[str, str],
    hierarchy_map: Optional[dict[str, list[str]]] = None,
    max_silent_states: int = 50_000,
    collect_stats: bool = False,
) -> None:
    from repro.bpmn.encode import encode

    _WORKER_CHECKERS.clear()
    _WORKER_PREFIXES.clear()
    _WORKER_OPTIONS.clear()
    _WORKER_PREFIXES.update(prefixes)
    _WORKER_OPTIONS["collect"] = collect_stats
    hierarchy = (
        RoleHierarchy.from_parent_map(hierarchy_map)
        if hierarchy_map is not None
        else None
    )
    for purpose, document in process_documents.items():
        process = process_from_dict(document)
        _WORKER_CHECKERS[purpose] = ComplianceChecker(
            encode(process),
            hierarchy=hierarchy,
            max_silent_states=max_silent_states,
        )


def _audit_one(
    job: tuple[str, list[LogEntry]]
) -> tuple[str, CaseVerdict, Optional[int], Optional[dict]]:
    """Replay one case in the worker.

    Returns ``(case, verdict, failed_index, stats)``; *stats* is a small
    plain-data dict (worker pid, replay outcome counts) when the parent
    asked for telemetry, else ``None``.
    """
    case, entries = job
    prefix = case.partition("-")[0]
    purpose = _WORKER_PREFIXES.get(prefix)
    collect = _WORKER_OPTIONS.get("collect", False)
    if purpose is None or purpose not in _WORKER_CHECKERS:
        stats = {"pid": os.getpid(), "outcomes": {}} if collect else None
        return case, None, None, stats
    result = _WORKER_CHECKERS[purpose].check(entries)
    stats = None
    if collect:
        outcomes: dict[str, int] = {}
        for step in result.steps:
            outcomes[step.outcome] = outcomes.get(step.outcome, 0) + 1
        stats = {"pid": os.getpid(), "outcomes": outcomes}
    return case, result.compliant, result.failed_index, stats


def _merge_stats(
    telemetry: Telemetry,
    results: list[tuple[str, CaseVerdict, Optional[int], Optional[dict]]],
    purposes: list[str],
) -> None:
    """Fold worker-reported counters into the parent's registry, under
    the same metric names the serial pipeline uses."""
    registry = telemetry.registry
    m_entries = registry.counter(
        "replay_entries_total", "log entries replayed, by outcome"
    )
    m_cases = registry.counter("cases_audited_total", "process instances audited")
    m_infringements = registry.counter(
        "infringements_total", "infringements raised, by kind"
    )
    workers_seen: set[int] = set()
    for _case, verdict, _failed, stats in results:
        m_cases.inc()
        if verdict is None:
            m_infringements.inc(kind="unknown-purpose")
        elif verdict is False:
            m_infringements.inc(kind="invalid-execution")
        if stats is None:
            continue
        pid = stats["pid"]
        if pid not in workers_seen:
            workers_seen.add(pid)
            telemetry.events.emit(WORKER_INIT, pid=pid, purposes=purposes)
        for outcome, count in stats["outcomes"].items():
            m_entries.inc(count, outcome=outcome)
    registry.gauge(
        "parallel_workers", "distinct worker processes that audited cases"
    ).set(len(workers_seen))


def audit_cases_parallel(
    registry: ProcessRegistry,
    trail: AuditTrail,
    workers: int = 2,
    hierarchy: RoleHierarchy | None = None,
    max_silent_states: int = 50_000,
    telemetry: Telemetry | None = None,
) -> dict[str, CaseVerdict]:
    """Audit every case of *trail* across *workers* processes.

    Returns the case -> :data:`CaseVerdict` map.  ``True``/``False``
    verdicts are identical to what
    :class:`repro.core.auditor.PurposeControlAuditor` computes serially
    (without the policy check — this is the replay-scaling primitive);
    cases whose prefix matches no registered purpose come back as
    ``None`` rather than being conflated with non-compliance.

    ``hierarchy`` and ``max_silent_states`` are forwarded to every
    worker's checkers so role-specialization matches and the
    silent-state guard behave exactly as in the serial path.
    """
    tel = telemetry if telemetry is not None else NULL_TELEMETRY
    jobs = [(case, trail.for_case(case).entries) for case in trail.cases()]
    documents = {
        purpose: process_to_dict(registry.process_for(purpose))
        for purpose in registry.purposes()
    }
    prefixes = {
        prefix: purpose
        for purpose in registry.purposes()
        for prefix in [registry.case_prefix_of(purpose)]
        if prefix is not None
    }
    hierarchy_map = hierarchy.to_parent_map() if hierarchy is not None else None
    initargs = (
        documents,
        prefixes,
        hierarchy_map,
        max_silent_states,
        tel.enabled,
    )
    if workers <= 1:
        _initialize_worker(*initargs)
        results = [_audit_one(job) for job in jobs]
    else:
        with multiprocessing.Pool(
            processes=workers,
            initializer=_initialize_worker,
            initargs=initargs,
        ) as pool:
            results = pool.map(_audit_one, jobs, chunksize=max(1, len(jobs) // (workers * 4)))
    if tel.enabled:
        _merge_stats(tel, results, sorted(registry.purposes()))
    return {case: verdict for case, verdict, _failed, _stats in results}
