"""Differential testing of compiled vs. interpreted replay.

The purpose-automaton compiler (:mod:`repro.compile`) promises that a
compiled replay is *observationally identical* to the interpreted
Algorithm 1: same verdict, same failure point, same per-step outcome
records, same resumability classification.  This module pins down what
"identical" means — :func:`verdict_digest` projects a
:class:`~repro.core.compliance.ComplianceResult` onto exactly the fields
both engines must agree on, and :func:`assert_equivalent_verdicts`
diff-reports the first divergence.

Deliberately *excluded* from the digest:

* ``final_configurations`` / ``configurations_created`` — the compiled
  path does not materialize COWS terms per case (that is the point);
  the result surface exposes the same *information* through
  ``may_continue`` and ``active_task_sets()``, which are compared;
* wall-clock / telemetry artifacts, which differ by construction.
"""

from __future__ import annotations

import json

from repro.core.compliance import ComplianceResult


def verdict_digest(result: ComplianceResult) -> dict:
    """Project *result* onto the fields compiled replay must reproduce."""
    return {
        "compliant": result.compliant,
        "trail_length": result.trail_length,
        "failed_index": result.failed_index,
        "failed_entry": (
            str(result.failed_entry)
            if result.failed_entry is not None
            else None
        ),
        "may_continue": result.may_continue,
        "active_task_sets": sorted(
            sorted(active) for active in result.active_task_sets()
        ),
        "steps": [
            (
                step.index,
                str(step.entry),
                step.outcome,
                step.frontier_size,
                step.events,
            )
            for step in result.steps
        ],
    }


def canonical_digest(result: ComplianceResult) -> str:
    """The digest as one canonical JSON line (sorted keys, no spaces).

    Two replays are *byte-identical* in the sense the streaming audit
    service promises (``docs/serving.md``) exactly when their canonical
    digests are equal strings — this is what the service returns over
    the wire and what the differential suites compare.
    """
    return json.dumps(
        verdict_digest(result), sort_keys=True, separators=(",", ":")
    )


def assert_equivalent_verdicts(
    interpreted: ComplianceResult,
    compiled: ComplianceResult,
    context: str = "",
) -> None:
    """Assert both results digest identically; report the first diff."""
    left = verdict_digest(interpreted)
    right = verdict_digest(compiled)
    if left == right:
        return
    where = f" [{context}]" if context else ""
    for key in left:
        if left[key] != right[key]:
            raise AssertionError(
                f"compiled replay diverged{where} on {key!r}:\n"
                f"  interpreted: {left[key]!r}\n"
                f"  compiled:    {right[key]!r}"
            )
    raise AssertionError(f"compiled replay diverged{where}: {left} != {right}")
