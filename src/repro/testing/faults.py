"""Deterministic fault injection for the audit pipeline.

The resilience layer (:mod:`repro.core.resilience`,
:mod:`repro.core.parallel`) promises that a batch audit completes with a
verdict for every case no matter what individual cases do to their
workers.  That promise is only worth something if it is *tested* against
the failure modes it claims to survive — this module supplies those
failure modes, reproducibly:

* :class:`FaultPlan` + :class:`FaultInjector` — a picklable
  ``checker_wrapper`` (the middleware seam of
  :func:`repro.core.parallel.audit_cases_parallel` and
  :class:`repro.core.auditor.PurposeControlAuditor`) that makes the
  checker **crash its process** (``os._exit``) on the Nth case it
  starts, **raise** an :class:`InjectedFaultError`, or **sleep** per fed
  entry to trip the per-case wall-clock budget;
* :func:`corrupt_xes_event` / :func:`corrupt_store_row` — entry
  corruptors that poison exactly one record at an ingestion boundary,
  for quarantine tests;
* per-process case counters (:func:`cases_started`,
  :func:`reset_fault_counters`) keyed by ``(pid, plan name)`` so forked
  workers count from zero and "crash on the 3rd case *this worker*
  starts" means what it says.

Crashes guard on ``only_in_workers`` (default): the plan records the pid
that built it (``armed_pid``) and ``os._exit`` only fires in a
*different* process.  That way the parent's serial fallback — and the
test process itself — replays the case normally instead of dying, which
is exactly the recovery path the harness exists to exercise.  Use
``raise_on_case`` to fault the serial path.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.audit.model import AuditTrail, LogEntry
from repro.core.compliance import (
    ComplianceChecker,
    ComplianceResult,
    ComplianceSession,
)
from repro.errors import ReproError


class InjectedFaultError(ReproError):
    """The failure a :class:`FaultPlan` with ``raise_on_case`` injects."""


# (pid, plan name) -> number of cases started.  Keyed by pid so a forked
# worker inheriting the parent's module state still counts from zero.
_CASE_COUNTS: dict[tuple[int, str], int] = {}


def cases_started(plan_name: str = "default") -> int:
    """How many cases *this process* started under *plan_name*."""
    return _CASE_COUNTS.get((os.getpid(), plan_name), 0)


def reset_fault_counters(plan_name: Optional[str] = None) -> None:
    """Forget case counts (all plans, or just *plan_name*) in this process."""
    pid = os.getpid()
    for key in [k for k in _CASE_COUNTS if k[0] == pid]:
        if plan_name is None or key[1] == plan_name:
            del _CASE_COUNTS[key]


@dataclass(frozen=True)
class FaultPlan:
    """What to break, and when.  Picklable; crosses the process boundary.

    ``crash_on_case`` / ``raise_on_case`` are 1-based indices over the
    cases a single process starts (each process counts independently).
    ``slow_s`` sleeps before every fed entry — pair it with
    ``case_timeout_s`` to trip TIMEOUT outcomes deterministically.
    """

    name: str = "default"
    crash_on_case: Optional[int] = None
    raise_on_case: Optional[int] = None
    slow_s: float = 0.0
    exit_code: int = 17
    only_in_workers: bool = True
    armed_pid: int = field(default_factory=os.getpid)

    def _next_case(self) -> int:
        key = (os.getpid(), self.name)
        count = _CASE_COUNTS.get(key, 0) + 1
        _CASE_COUNTS[key] = count
        return count

    def _may_crash(self) -> bool:
        return not self.only_in_workers or os.getpid() != self.armed_pid

    def on_case_start(self, purpose: str) -> None:
        """Apply case-level faults; called once per check/session."""
        count = self._next_case()
        if self.crash_on_case is not None and count == self.crash_on_case:
            if self._may_crash():
                os._exit(self.exit_code)  # simulate a segfault / OOM kill
        if self.raise_on_case is not None and count == self.raise_on_case:
            raise InjectedFaultError(
                f"injected fault on case #{count} (purpose {purpose!r}, "
                f"pid {os.getpid()})"
            )

    def on_entry(self) -> None:
        """Apply entry-level faults; called before every fed entry."""
        if self.slow_s > 0.0:
            time.sleep(self.slow_s)


class FaultySession:
    """A :class:`ComplianceSession` that misbehaves per the plan."""

    def __init__(self, session: ComplianceSession, plan: FaultPlan):
        self._session = session
        self._plan = plan

    def feed(self, entry: LogEntry) -> bool:
        self._plan.on_entry()
        return self._session.feed(entry)

    @property
    def compliant(self) -> bool:
        return self._session.compliant

    @property
    def may_continue(self) -> bool:
        return self._session.may_continue

    @property
    def frontier(self):
        return self._session.frontier

    @property
    def steps(self):
        return self._session.steps

    @property
    def entries_fed(self) -> int:
        return self._session.entries_fed

    def result(self) -> ComplianceResult:
        return self._session.result()


class FaultyChecker:
    """A :class:`ComplianceChecker` stand-in that misbehaves per the plan.

    Delegates every verdict to the wrapped checker, so when the plan is
    inert (or its trigger has passed) results are byte-identical to the
    unwrapped checker's.
    """

    def __init__(
        self, checker: ComplianceChecker, plan: FaultPlan, purpose: str
    ):
        self._checker = checker
        self._plan = plan
        self._purpose = purpose

    @property
    def encoded(self):
        return self._checker.encoded

    @property
    def engine(self):
        return self._checker.engine

    @property
    def purpose(self) -> str:
        return self._checker.purpose

    def session(self) -> FaultySession:
        self._plan.on_case_start(self._purpose)
        return FaultySession(self._checker.session(), self._plan)

    def check(
        self, trail: AuditTrail | Iterable[LogEntry]
    ) -> ComplianceResult:
        self._plan.on_case_start(self._purpose)
        self._plan.on_entry()
        return self._checker.check(trail)


@dataclass(frozen=True)
class FaultInjector:
    """The picklable ``checker_wrapper``: wraps checkers of the targeted
    purposes in :class:`FaultyChecker`.

    ``purposes=None`` targets every purpose.  Pass an instance as
    ``checker_wrapper=`` to :func:`~repro.core.parallel.audit_cases_parallel`
    or :class:`~repro.core.auditor.PurposeControlAuditor`.
    """

    plan: FaultPlan = field(default_factory=FaultPlan)
    purposes: Optional[tuple[str, ...]] = None

    def __call__(
        self, checker: ComplianceChecker, purpose: str
    ) -> ComplianceChecker | FaultyChecker:
        if self.purposes is not None and purpose not in self.purposes:
            return checker
        return FaultyChecker(checker, self.plan, purpose)


# ---------------------------------------------------------------------------
# serving-side chaos (for the crash-safe-serve suite)


class ShardKill(BaseException):
    """An injected shard death.

    Deliberately **not** an :class:`Exception`: the online monitor's
    per-case containment (and the shard's own last-resort handler) catch
    ``Exception``, so raising this from inside a replay kills the shard
    thread outright — the same observable failure as a segfaulting
    extension or an OOM kill, but deterministic and in-process.  The
    shard supervisor must detect the dead thread and repair.
    """


class _KillingSession:
    """Feeds normally until the fatal entry, then kills the thread."""

    def __init__(self, session: ComplianceSession, case: str, after: int):
        self._session = session
        self._case = case
        self._after = after
        self._fed = 0

    def feed(self, entry: LogEntry) -> bool:
        if entry.case == self._case:
            self._fed += 1
            if self._fed > self._after:
                raise ShardKill(
                    f"injected shard kill on case {entry.case!r} "
                    f"(entry #{self._fed})"
                )
        return self._session.feed(entry)

    def __getattr__(self, name: str):
        return getattr(self._session, name)

    def result(self) -> ComplianceResult:
        return self._session.result()


class _KillingChecker:
    """Checker wrapper arming :class:`_KillingSession` on one case."""

    def __init__(self, checker: ComplianceChecker, case: str, after: int):
        self._checker = checker
        self._case = case
        self._after = after

    def __getattr__(self, name: str):
        return getattr(self._checker, name)

    def session(self) -> _KillingSession:
        return _KillingSession(self._checker.session(), self._case, self._after)

    def check(self, trail: AuditTrail | Iterable[LogEntry]) -> ComplianceResult:
        return self._checker.check(trail)


@dataclass(frozen=True)
class ShardKillInjector:
    """A ``checker_wrapper`` that kills whichever shard replays *case*.

    ``after_entries`` entries of the case feed normally first, so the
    shard dies with real in-flight state — the interesting recovery
    scenario.  Pass as ``checker_wrapper=`` to the
    :class:`~repro.serve.core.ShardRouter` (interpreted replay; the
    compiled path does not route through checker sessions).
    """

    case: str
    after_entries: int = 0

    def __call__(self, checker: ComplianceChecker, purpose: str):
        return _KillingChecker(checker, self.case, self.after_entries)


def disk_full_hook(after_ops: int = 0, phases: tuple[str, ...] = ("append",)):
    """A :class:`~repro.serve.wal.WalWriter` ``fault_hook`` simulating ENOSPC.

    The hook counts the WAL operations in *phases* (``"append"`` and/or
    ``"fsync"``) and raises :class:`OSError` (errno ENOSPC) on every one
    past *after_ops* — so the first ``after_ops`` writes succeed and the
    disk is then "full" forever.  The router must reject (never ack) the
    affected entries.
    """
    import errno

    state = {"ops": 0}

    def hook(phase: str) -> None:
        if phase not in phases:
            return
        state["ops"] += 1
        if state["ops"] > after_ops:
            raise OSError(errno.ENOSPC, "injected disk full (WAL)")

    return hook


def corrupt_wal_tail(path, mode: str = "truncate", drop_bytes: int = 7) -> None:
    """Tear the tail of a WAL segment the way a crash would.

    * ``truncate`` — drop the final *drop_bytes* bytes (a record cut
      mid-write); readers must salvage every complete record before it;
    * ``garbage`` — append a partial frame of junk (a write that never
      got its payload out);
    * ``flip`` — flip one bit in the final record's payload so its CRC
      check fails (a torn sector).

    All three must read back as a *torn tail* in the final segment —
    tolerated, never raised — and as :class:`~repro.serve.wal.
    WalCorruptionError` if the same segment is later read strictly.
    """
    from pathlib import Path

    target = Path(path)
    data = target.read_bytes()
    if mode == "truncate":
        target.write_bytes(data[: max(8, len(data) - drop_bytes)])
    elif mode == "garbage":
        target.write_bytes(data + b"\xde\xad\xbe")
    elif mode == "flip":
        if len(data) <= 8:
            raise ValueError("segment has no record bytes to flip")
        flipped = bytearray(data)
        flipped[-1] ^= 0x01
        target.write_bytes(bytes(flipped))
    else:
        raise ValueError(f"unknown corruption mode: {mode!r}")


# ---------------------------------------------------------------------------
# entry corruptors (for quarantine tests)


def corrupt_xes_event(
    document: str, timestamp: str, replacement: str = "not-a-timestamp"
) -> str:
    """Replace one event timestamp in an XES document with garbage.

    *timestamp* is the exact ``value=`` text of the target event's
    ``time:timestamp`` attribute; the corrupted document still parses as
    XML, so only that one event lands in quarantine.
    """
    needle = f'value="{timestamp}"'
    if needle not in document:
        raise ValueError(f"timestamp {timestamp!r} not found in document")
    return document.replace(needle, f'value="{replacement}"', 1)


def corrupt_store_row(store, seq: int, status: str = "not-a-status") -> None:
    """Poison one stored row so it no longer decodes as a ``LogEntry``.

    Uses :meth:`~repro.audit.store.AuditStore.tamper` under the hood, so
    the hash chain breaks too — a quarantine-mode read surfaces the row
    as a dead letter instead of failing the batch.
    """
    store.tamper(seq, status=status)


def corrupt_artifact(path, mode: str = "truncate") -> None:
    """Damage a saved purpose-automaton artifact in a chosen way.

    The artifact loader (:func:`repro.compile.load_artifact`) must treat
    every corruption as a cache miss — log ``compile.artifact_invalid``
    and recompile — never as an audit failure.  Modes:

    * ``truncate`` — cut the file mid-document (simulates a crash during
      a non-atomic copy; the trailing ``"eof"`` marker is lost);
    * ``garbage`` — overwrite with bytes that are not JSON at all;
    * ``version`` — bump the envelope's format version past the reader's;
    * ``fingerprint`` — rewrite the envelope fingerprint so it no longer
      matches the process the auditor is about to replay;
    * ``empty`` — leave a zero-byte file behind.

    Binary transition tables (``*.table.bin``, loaded by
    :func:`repro.compile.load_table`) take the same mode names plus
    ``bitflip`` — flip one bit inside the mmap'd cell region, which the
    loader must reject via its SHA-256 checksum (``reason="tamper"``).
    ``version`` bumps the ``uint32`` after the ``RPTB`` magic;
    ``fingerprint`` rewrites the header's fingerprint field in place
    (same length, so the layout stays valid and only the identity check
    fires).
    """
    import json
    from pathlib import Path

    target = Path(path)
    if target.name.endswith(".table.bin"):
        _corrupt_table(target, mode)
        return
    if mode == "truncate":
        data = target.read_bytes()
        target.write_bytes(data[: max(1, len(data) // 2)])
    elif mode == "garbage":
        target.write_bytes(b"\x00not json\xff")
    elif mode == "empty":
        target.write_bytes(b"")
    elif mode in ("version", "fingerprint"):
        envelope = json.loads(target.read_text(encoding="utf-8"))
        if mode == "version":
            envelope["version"] = envelope.get("version", 1) + 999
        else:
            flipped = "0" * 64
            envelope["fingerprint"] = flipped
            if isinstance(envelope.get("automaton"), dict):
                envelope["automaton"]["fingerprint"] = flipped
        target.write_text(json.dumps(envelope), encoding="utf-8")
    else:
        raise ValueError(f"unknown corruption mode: {mode!r}")


def _corrupt_table(target, mode: str) -> None:
    """Damage a binary ``RPTB`` transition-table artifact."""
    data = bytearray(target.read_bytes())
    header_end = 12
    if len(data) >= 12:
        header_end = 12 + int.from_bytes(data[8:12], "little")
    if mode == "truncate":
        # Drop the tail of the cell region (or half the file when the
        # header alone fills it) — the declared cells_bytes no longer fit.
        cut = max(12, (header_end + len(data)) // 2)
        target.write_bytes(bytes(data[: min(cut, len(data) - 1)]))
    elif mode == "garbage":
        target.write_bytes(b"\x00not a table\xff")
    elif mode == "empty":
        target.write_bytes(b"")
    elif mode == "version":
        data[4:8] = (2**31).to_bytes(4, "little")
        target.write_bytes(bytes(data))
    elif mode == "bitflip":
        if len(data) <= header_end:
            raise ValueError("table has no cell region to flip")
        data[-1] ^= 0x40  # one bit, deep in the mmap'd cell region
        target.write_bytes(bytes(data))
    elif mode == "fingerprint":
        import json as _json

        header = _json.loads(data[12:header_end].decode("utf-8"))
        original = header["fingerprint"]
        replacement = ("0" if original[:1] != "0" else "1") * len(original)
        blob = bytes(data).replace(
            original.encode("utf-8"), replacement.encode("utf-8"), 1
        )
        target.write_bytes(blob)
    else:
        raise ValueError(f"unknown corruption mode: {mode!r}")
