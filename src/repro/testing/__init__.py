"""Deterministic fault injection for exercising the resilience layer.

See :mod:`repro.testing.faults` and :mod:`repro.testing.differential`.
"""

from repro.testing.differential import (
    assert_equivalent_verdicts,
    canonical_digest,
    verdict_digest,
)
from repro.testing.faults import (
    FaultInjector,
    FaultPlan,
    FaultyChecker,
    FaultySession,
    InjectedFaultError,
    ShardKill,
    ShardKillInjector,
    cases_started,
    corrupt_artifact,
    corrupt_store_row,
    corrupt_wal_tail,
    corrupt_xes_event,
    disk_full_hook,
    reset_fault_counters,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultyChecker",
    "FaultySession",
    "InjectedFaultError",
    "ShardKill",
    "ShardKillInjector",
    "cases_started",
    "corrupt_artifact",
    "corrupt_store_row",
    "corrupt_wal_tail",
    "corrupt_xes_event",
    "disk_full_hook",
    "reset_fault_counters",
    "assert_equivalent_verdicts",
    "canonical_digest",
    "verdict_digest",
]
