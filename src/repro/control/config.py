"""Declarative, fingerprinted multi-tenant audit configurations.

The paper treats "the intended purpose" as one organizational process;
a deployed purpose-control service audits *many* purposes side by side,
and what it audits them against — process models, policy statements,
registry prefixes, the role hierarchy, serve budgets — must itself be a
versioned, auditable artifact (Kiesel & Grünewald's records-of-
processing argument, PAPERS.md).  This module is that artifact: one
JSON or TOML document, parsed into an immutable :class:`AuditConfig`,
content-fingerprinted per tenant so the control plane can answer "what
changed?" (:mod:`repro.control.reaudit`) and "what exactly was case
HT-1 audited against?".

Schema (JSON shown; TOML is isomorphic)::

    {
      "version": "2026-08-07",
      "hierarchy": {"nurse": ["physician"]},
      "budgets": {"shards": 4, "case_timeout_s": 2.0},
      "tenants": [
        {
          "purpose": "healthcare",            // default: process purpose
          "prefix": "HT",                     // case-id prefix (required)
          "process": "healthcare.json",       // path, or inline:
          // "process_document": { ... },
          "policy": "healthcare.policy"       // path, or inline:
          // "policy_text": "..."             // optional either way
        }
      ]
    }

Paths resolve relative to the config file.  ``budgets`` keys must name
:class:`~repro.serve.core.ServeConfig` fields.  TOML parsing uses the
stdlib :mod:`tomllib` (Python 3.11+) and degrades to a clear
:class:`~repro.errors.ConfigError` on older interpreters — JSON always
works.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.bpmn.model import Process
from repro.bpmn.serialize import process_from_dict, process_to_dict
from repro.compile.fingerprint import fingerprint_process
from repro.errors import ConfigError
from repro.policy.hierarchy import RoleHierarchy
from repro.policy.model import Policy
from repro.policy.parser import parse_policy
from repro.policy.registry import ProcessRegistry
from repro.serve.core import ServeConfig

#: Bumped when the fingerprint payload shape changes — old ledgers then
#: diff as "everything changed" instead of silently comparing apples to
#: oranges.
CONFIG_FINGERPRINT_VERSION = 1

_TOP_LEVEL_KEYS = frozenset({"version", "hierarchy", "budgets", "tenants"})
_TENANT_KEYS = frozenset(
    {"purpose", "prefix", "process", "process_document", "policy", "policy_text"}
)
_BUDGET_FIELDS = frozenset(
    f.name for f in dataclasses.fields(ServeConfig)
)


@dataclass(frozen=True)
class TenantSpec:
    """One audited purpose: its process, case prefix, and policy."""

    purpose: str
    prefix: str
    process: Process
    policy_text: Optional[str] = None
    process_path: Optional[str] = None
    policy_path: Optional[str] = None

    def policy(self) -> Optional[Policy]:
        if self.policy_text is None:
            return None
        return parse_policy(self.policy_text)


@dataclass(frozen=True)
class AuditConfig:
    """A parsed, validated, fingerprintable audit configuration."""

    version: str
    tenants: tuple[TenantSpec, ...]
    hierarchy: Optional[RoleHierarchy] = None
    budgets: dict = dataclasses.field(default_factory=dict)
    source: Optional[str] = None

    # -- derived pipeline objects ---------------------------------------
    def registry(self) -> ProcessRegistry:
        """A fresh registry mapping every tenant's prefix to its process."""
        registry = ProcessRegistry()
        for tenant in self.tenants:
            registry.register(tenant.process, tenant.prefix)
        return registry

    def merged_policy(self) -> Policy:
        """Every tenant's statements in one policy.

        Safe to merge: statement lookup is always by purpose
        (``Policy.for_purpose``), so tenants cannot see each other's
        rules.
        """
        merged = Policy()
        for tenant in self.tenants:
            policy = tenant.policy()
            if policy is not None:
                merged.extend(policy.statements)
        return merged

    def tenant(self, purpose: str) -> Optional[TenantSpec]:
        for spec in self.tenants:
            if spec.purpose == purpose:
                return spec
        return None

    def serve_config(self, **base: object) -> ServeConfig:
        """A :class:`ServeConfig` with this config's budgets applied.

        ``base`` supplies the CLI-flag defaults; the document's
        ``budgets`` win on conflict — the config *is* the deployment's
        record, flags are operator convenience.
        """
        merged = dict(base)
        merged.update(self.budgets)
        return ServeConfig(**merged)  # type: ignore[arg-type]

    # -- fingerprints ----------------------------------------------------
    def tenant_fingerprints(self) -> dict[str, str]:
        """purpose -> content hash of everything the tenant is audited with.

        Covers the process model (via the compiler's canonical
        fingerprint, which also folds in the role hierarchy), the case
        prefix, and the policy text.  Budgets and the config version are
        deliberately excluded: they do not change any case's verdict, so
        they must not force a re-audit.
        """
        out: dict[str, str] = {}
        for tenant in self.tenants:
            payload = {
                "version": CONFIG_FINGERPRINT_VERSION,
                "prefix": tenant.prefix,
                "process": fingerprint_process(
                    tenant.process, hierarchy=self.hierarchy
                ),
                "policy": (
                    hashlib.sha256(
                        tenant.policy_text.encode("utf-8")
                    ).hexdigest()
                    if tenant.policy_text is not None
                    else None
                ),
            }
            out[tenant.purpose] = hashlib.sha256(
                _canonical(payload)
            ).hexdigest()
        return out

    def fingerprint(self) -> str:
        """The whole document's content hash (budgets included)."""
        payload = {
            "version": self.version,
            "budgets": {k: self.budgets[k] for k in sorted(self.budgets)},
            "tenants": self.tenant_fingerprints(),
        }
        return hashlib.sha256(_canonical(payload)).hexdigest()

    # -- validation ------------------------------------------------------
    def preflight(self, options=None, telemetry=None):
        """``repro lint`` over every tenant (the load-time gate).

        Returns the :class:`~repro.analysis.diagnostics.LintReport`; the
        caller decides whether errors are fatal (``repro serve
        --config`` refuses to start on lint errors unless
        ``--no-preflight``).
        """
        from repro.analysis import lint_registry

        return lint_registry(
            self.registry(),
            policy=self.merged_policy(),
            hierarchy=self.hierarchy,
            options=options,
            telemetry=telemetry,
        )

    # -- round-trip ------------------------------------------------------
    def to_document(self) -> dict:
        """A self-contained document (processes and policies inlined).

        ``parse_config(config.to_document())`` round-trips to equal
        fingerprints regardless of whether the original referenced
        external files.
        """
        tenants = []
        for tenant in self.tenants:
            spec: dict = {
                "purpose": tenant.purpose,
                "prefix": tenant.prefix,
                "process_document": process_to_dict(tenant.process),
            }
            if tenant.policy_text is not None:
                spec["policy_text"] = tenant.policy_text
            tenants.append(spec)
        document: dict = {"version": self.version, "tenants": tenants}
        if self.hierarchy is not None:
            document["hierarchy"] = self.hierarchy.to_parent_map()
        if self.budgets:
            document["budgets"] = dict(self.budgets)
        return document


def _canonical(payload: object) -> bytes:
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    ).encode("utf-8")


def load_config(path: str) -> AuditConfig:
    """Parse a JSON (``.json``) or TOML (anything else) config file."""
    file = Path(path)
    try:
        text = file.read_text(encoding="utf-8")
    except OSError as error:
        raise ConfigError(f"cannot read config {path!r}: {error}") from error
    if file.suffix.lower() == ".json":
        try:
            document = json.loads(text)
        except ValueError as error:
            raise ConfigError(
                f"config {path!r} is not valid JSON: {error}"
            ) from error
    else:
        try:
            import tomllib
        except ImportError as error:  # pragma: no cover - Python < 3.11
            raise ConfigError(
                f"config {path!r} looks like TOML but this interpreter has "
                "no tomllib (Python 3.11+); use a .json config instead"
            ) from error
        try:
            document = tomllib.loads(text)
        except tomllib.TOMLDecodeError as error:
            raise ConfigError(
                f"config {path!r} is not valid TOML: {error}"
            ) from error
    return parse_config(document, base_dir=str(file.parent), source=str(file))


def parse_config(
    document: object,
    base_dir: Optional[str] = None,
    source: Optional[str] = None,
) -> AuditConfig:
    """Validate a config document into an :class:`AuditConfig`.

    Every structural problem — unknown keys, missing fields, duplicate
    purposes or prefixes, unreadable referenced files — raises
    :class:`~repro.errors.ConfigError` naming the offending tenant.
    """
    if not isinstance(document, dict):
        raise ConfigError("config document must be a JSON/TOML object")
    unknown = set(document) - _TOP_LEVEL_KEYS
    if unknown:
        raise ConfigError(
            f"unknown config keys {sorted(unknown)}; "
            f"expected a subset of {sorted(_TOP_LEVEL_KEYS)}"
        )
    version = document.get("version", "0")
    if not isinstance(version, str):
        version = str(version)

    hierarchy = None
    raw_hierarchy = document.get("hierarchy")
    if raw_hierarchy is not None:
        if not isinstance(raw_hierarchy, dict):
            raise ConfigError("'hierarchy' must map roles to parent lists")
        parent_map = {}
        for child, parents in raw_hierarchy.items():
            if isinstance(parents, str):
                parents = [parents]
            if not isinstance(parents, list):
                raise ConfigError(
                    f"hierarchy entry {child!r} must list parent roles"
                )
            parent_map[str(child)] = [str(parent) for parent in parents]
        hierarchy = RoleHierarchy.from_parent_map(parent_map)

    budgets = document.get("budgets", {})
    if not isinstance(budgets, dict):
        raise ConfigError("'budgets' must be an object of ServeConfig fields")
    bad_budgets = set(budgets) - _BUDGET_FIELDS
    if bad_budgets:
        raise ConfigError(
            f"unknown budget keys {sorted(bad_budgets)}; "
            "budgets must name ServeConfig fields"
        )

    raw_tenants = document.get("tenants")
    if raw_tenants is None:
        raise ConfigError("config needs a 'tenants' list (at least one)")
    if isinstance(raw_tenants, dict):
        raw_tenants = [raw_tenants]
    if not isinstance(raw_tenants, list) or not raw_tenants:
        raise ConfigError("'tenants' must be a non-empty list")

    tenants: list[TenantSpec] = []
    seen_purposes: set[str] = set()
    seen_prefixes: set[str] = set()
    for index, raw in enumerate(raw_tenants):
        label = f"tenant #{index + 1}"
        if not isinstance(raw, dict):
            raise ConfigError(f"{label} must be an object")
        unknown = set(raw) - _TENANT_KEYS
        if unknown:
            raise ConfigError(
                f"{label} has unknown keys {sorted(unknown)}; "
                f"expected a subset of {sorted(_TENANT_KEYS)}"
            )
        process = _tenant_process(raw, label, base_dir)
        purpose = str(raw.get("purpose") or process.purpose)
        label = f"tenant {purpose!r}"
        prefix = raw.get("prefix")
        if not prefix or not isinstance(prefix, str):
            raise ConfigError(f"{label} needs a non-empty 'prefix' string")
        if purpose in seen_purposes:
            raise ConfigError(f"duplicate tenant purpose {purpose!r}")
        if prefix in seen_prefixes:
            raise ConfigError(f"duplicate case prefix {prefix!r}")
        seen_purposes.add(purpose)
        seen_prefixes.add(prefix)
        policy_text, policy_path = _tenant_policy(raw, label, base_dir)
        if purpose != process.purpose:
            # The registry routes by the *process* purpose; a tenant
            # alias that disagrees would audit cases against a process
            # nobody can look up.
            raise ConfigError(
                f"{label}: 'purpose' ({purpose!r}) does not match the "
                f"process's purpose ({process.purpose!r})"
            )
        tenants.append(
            TenantSpec(
                purpose=purpose,
                prefix=prefix,
                process=process,
                policy_text=policy_text,
                process_path=(
                    str(raw["process"]) if "process" in raw else None
                ),
                policy_path=policy_path,
            )
        )
    return AuditConfig(
        version=version,
        tenants=tuple(tenants),
        hierarchy=hierarchy,
        budgets=dict(budgets),
        source=source,
    )


def _resolve(base_dir: Optional[str], relative: str) -> Path:
    path = Path(relative)
    if not path.is_absolute() and base_dir is not None:
        path = Path(base_dir) / path
    return path


def _tenant_process(raw: dict, label: str, base_dir: Optional[str]) -> Process:
    inline = raw.get("process_document")
    reference = raw.get("process")
    if inline is not None and reference is not None:
        raise ConfigError(
            f"{label}: give 'process' (a path) or 'process_document' "
            "(inline), not both"
        )
    if inline is not None:
        if not isinstance(inline, dict):
            raise ConfigError(f"{label}: 'process_document' must be an object")
        try:
            return process_from_dict(inline)
        except Exception as error:
            raise ConfigError(
                f"{label}: bad inline process: {error}"
            ) from error
    if reference is None:
        raise ConfigError(
            f"{label} needs a 'process' path or 'process_document'"
        )
    path = _resolve(base_dir, str(reference))
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
        return process_from_dict(data)
    except OSError as error:
        raise ConfigError(
            f"{label}: cannot read process {str(path)!r}: {error}"
        ) from error
    except Exception as error:
        raise ConfigError(
            f"{label}: bad process document {str(path)!r}: {error}"
        ) from error


def _tenant_policy(
    raw: dict, label: str, base_dir: Optional[str]
) -> tuple[Optional[str], Optional[str]]:
    inline = raw.get("policy_text")
    reference = raw.get("policy")
    if inline is not None and reference is not None:
        raise ConfigError(
            f"{label}: give 'policy' (a path) or 'policy_text' (inline), "
            "not both"
        )
    if inline is not None:
        if not isinstance(inline, str):
            raise ConfigError(f"{label}: 'policy_text' must be a string")
        _check_policy(inline, label)
        return inline, None
    if reference is None:
        return None, None
    path = _resolve(base_dir, str(reference))
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise ConfigError(
            f"{label}: cannot read policy {str(path)!r}: {error}"
        ) from error
    _check_policy(text, label)
    return text, str(reference)


def _check_policy(text: str, label: str) -> None:
    try:
        parse_policy(text)
    except Exception as error:
        raise ConfigError(f"{label}: bad policy: {error}") from error
