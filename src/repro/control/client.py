"""Clients for the control API (the machinery behind ``repro control``).

Two transports, one surface:

* :class:`HttpControlClient` — stdlib ``urllib`` against a running
  daemon's HTTP port;
* :class:`LocalControlClient` — wraps a
  :class:`~repro.control.api.ControlPlane` in-process, so ``repro
  control --store audit.db --config audit.toml`` triages a store with
  no daemon at all.

Both expose ``request(method, path, query, body) -> (status, payload)``
plus named helpers; the CLI treats them interchangeably.
"""

from __future__ import annotations

import json
from typing import Optional
from urllib.error import HTTPError, URLError
from urllib.parse import urlencode
from urllib.request import Request, urlopen

from repro.control.api import API_VERSION, ControlPlane
from repro.errors import ReproError


class ControlClientError(ReproError):
    """The daemon could not be reached (not an API-level error)."""


class _ControlSurface:
    """The named helpers shared by both transports."""

    def request(
        self,
        method: str,
        path: str,
        query: Optional[dict] = None,
        body: Optional[dict] = None,
    ) -> tuple[int, dict]:
        raise NotImplementedError

    def _get(self, path: str, query: Optional[dict] = None) -> tuple[int, dict]:
        return self.request("GET", f"/api/{API_VERSION}/{path}", query)

    def _post(
        self,
        path: str,
        query: Optional[dict] = None,
        body: Optional[dict] = None,
    ) -> tuple[int, dict]:
        return self.request(
            "POST", f"/api/{API_VERSION}/{path}", query, body
        )

    def tenants(self) -> tuple[int, dict]:
        return self._get("tenants")

    def verdicts(self, **filters: object) -> tuple[int, dict]:
        query = {k: str(v) for k, v in filters.items() if v is not None}
        return self._get("verdicts", query)

    def case(self, case: str) -> tuple[int, dict]:
        return self._get(f"cases/{case}")

    def trail(
        self, case: str, after_seq: int = 0, limit: Optional[int] = None
    ) -> tuple[int, dict]:
        query = {"after_seq": str(after_seq)}
        if limit is not None:
            query["limit"] = str(limit)
        return self._get(f"cases/{case}/trail", query)

    def quarantine(self) -> tuple[int, dict]:
        return self._get("quarantine")

    def requeue(self, case: str, wait_s: Optional[float] = None) -> tuple[int, dict]:
        query = {"wait_s": str(wait_s)} if wait_s is not None else None
        return self._post(f"quarantine/{case}/requeue", query)

    def dismiss(
        self, case: str, actor: str = "operator", reason: str = ""
    ) -> tuple[int, dict]:
        return self._post(
            f"quarantine/{case}/dismiss",
            body={"actor": actor, "reason": reason},
        )

    def reaudit(self, **body: object) -> tuple[int, dict]:
        return self._post(
            "reaudit", body={k: v for k, v in body.items() if v is not None}
        )

    def config_info(self) -> tuple[int, dict]:
        return self._get("config")


class HttpControlClient(_ControlSurface):
    """Talks to a daemon's HTTP listener (``http://host:port``)."""

    def __init__(self, base_url: str, timeout_s: float = 30.0):
        self._base = base_url.rstrip("/")
        self._timeout = timeout_s

    def request(
        self,
        method: str,
        path: str,
        query: Optional[dict] = None,
        body: Optional[dict] = None,
    ) -> tuple[int, dict]:
        url = self._base + path
        if query:
            url += "?" + urlencode(query)
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json; charset=utf-8"
        request = Request(url, data=data, method=method, headers=headers)
        try:
            with urlopen(request, timeout=self._timeout) as response:
                return response.status, _decode(response.read())
        except HTTPError as error:
            # API-level errors (4xx/5xx) still carry a JSON payload.
            return error.code, _decode(error.read())
        except (URLError, OSError) as error:
            raise ControlClientError(
                f"cannot reach {self._base}: {error}"
            ) from error


class LocalControlClient(_ControlSurface):
    """Runs the API in-process over a store file (no daemon)."""

    def __init__(self, plane: ControlPlane):
        self._plane = plane

    def request(
        self,
        method: str,
        path: str,
        query: Optional[dict] = None,
        body: Optional[dict] = None,
    ) -> tuple[int, dict]:
        status, payload, _ = self._plane.handle(
            method, path, query or {}, body
        )
        return status, payload


def _decode(raw: bytes) -> dict:
    try:
        payload = json.loads(raw)
    except ValueError:
        return {"error": raw.decode("utf-8", "replace").strip()}
    return payload if isinstance(payload, dict) else {"data": payload}
