"""The HTTP/JSON control API (mounted under ``/api/`` by the service).

Transport-free by design: :meth:`ControlPlane.handle` takes ``(method,
path, query, body)`` and returns ``(status, payload, headers)``, so the
same object serves the asyncio front end
(:class:`~repro.serve.service.AuditService`), the in-process client
behind ``repro control --store`` (no daemon at all), and the tests.

Two mounting modes:

* **live** — constructed with a running
  :class:`~repro.serve.core.ShardRouter`: verdicts come from the
  shards' monitors (concurrent with ingest), quarantine triage goes
  through the router (requeue replays on the owning shard thread), and
  the audit store supplies trails and durable operator records;
* **standalone** — constructed over a store file and an
  :class:`~repro.control.config.AuditConfig`: verdicts come from a
  cached replay of the store, and triage is limited to inspection and
  durable dismissal (there is no live shard to requeue into).

Endpoints (all JSON; see ``docs/control-plane.md``)::

    GET  /api/v1/tenants
    GET  /api/v1/verdicts?purpose=&outcome=&since=&until=&after_case=&limit=
    GET  /api/v1/cases/{case}
    GET  /api/v1/cases/{case}/trail?after_seq=&limit=
    GET  /api/v1/quarantine
    GET  /api/v1/quarantine/{case}
    POST /api/v1/quarantine/{case}/requeue
    POST /api/v1/quarantine/{case}/dismiss   {"actor": ..., "reason": ...}
    POST /api/v1/reaudit                     {"config": path, ...}
    GET  /api/v1/config
"""

from __future__ import annotations

from datetime import datetime
from typing import Optional

from repro.audit.store import AuditStore
from repro.control.config import AuditConfig
from repro.control.reaudit import (
    ReauditLedger,
    full_reaudit,
    incremental_reaudit,
)
from repro.errors import ConfigError, ReproError, UnknownPurposeError
from repro.obs import (
    CONTROL_DISMISS,
    CONTROL_REAUDIT,
    CONTROL_REQUEUE,
    NULL_TELEMETRY,
)

API_VERSION = "v1"

#: Default/maximum page size for the verdict listing.
DEFAULT_PAGE = 100
MAX_PAGE = 1000


class ControlPlane:
    """The operator API over a live router and/or an audit store."""

    def __init__(
        self,
        router=None,
        config: Optional[AuditConfig] = None,
        store_path: Optional[str] = None,
        telemetry=None,
    ):
        if router is None and store_path is None:
            raise ReproError(
                "a control plane needs a live router or a store file"
            )
        self.router = router
        self.config = config
        if store_path is None and router is not None:
            store_path = router._durable_store_path()
        self._store_path = store_path
        tel = telemetry if telemetry is not None else NULL_TELEMETRY
        self._tel = tel
        self._m_requests = tel.registry.counter(
            "control_requests_total", "control-API requests, by endpoint"
        )
        self._m_reaudit_cases = tel.registry.counter(
            "reaudit_cases_total", "cases touched by re-audit runs, by mode"
        )
        # Standalone verdicts replay the store once and cache by store
        # length — a grown store invalidates the cache.
        self._offline_cache: Optional[tuple[int, dict[str, dict]]] = None

    # -- dispatch --------------------------------------------------------
    def handle(
        self, method: str, path: str, query: dict, body: Optional[dict]
    ) -> tuple[int, dict, dict]:
        """Serve one request; ``(status, JSON payload, extra headers)``."""
        try:
            return self._route(method, path, query, body or {})
        except _ApiError as error:
            return error.status, {"error": str(error)}, error.headers
        except (ReproError, ValueError) as error:
            return 400, {"error": str(error)}, {}

    def _route(
        self, method: str, path: str, query: dict, body: dict
    ) -> tuple[int, dict, dict]:
        parts = [part for part in path.split("/") if part]
        # parts[0] == "api" (the service routes /api/* here), then the
        # version, then the resource.
        if len(parts) < 2 or parts[0] != "api":
            raise _ApiError(404, f"no such endpoint: {path}")
        if parts[1] != API_VERSION:
            raise _ApiError(
                404,
                f"unsupported API version {parts[1]!r} (this daemon "
                f"speaks {API_VERSION})",
            )
        resource = parts[2] if len(parts) > 2 else ""
        rest = parts[3:]
        reader = method in ("GET", "HEAD")
        self._m_requests.inc(endpoint=resource or "root")
        if resource == "tenants" and not rest and reader:
            return self._tenants()
        if resource == "verdicts" and not rest and reader:
            return self._verdicts(query)
        if resource == "cases" and len(rest) == 1 and reader:
            return self._case(rest[0])
        if (
            resource == "cases"
            and len(rest) == 2
            and rest[1] == "trail"
            and reader
        ):
            return self._trail(rest[0], query)
        if resource == "quarantine" and not rest and reader:
            return self._quarantine()
        if resource == "quarantine" and len(rest) == 1 and reader:
            return self._quarantine_case(rest[0])
        if (
            resource == "quarantine"
            and len(rest) == 2
            and rest[1] == "requeue"
            and method == "POST"
        ):
            return self._requeue(rest[0], query)
        if (
            resource == "quarantine"
            and len(rest) == 2
            and rest[1] == "dismiss"
            and method == "POST"
        ):
            return self._dismiss(rest[0], body)
        if resource == "reaudit" and not rest and method == "POST":
            return self._reaudit(body)
        if resource == "config" and not rest and reader:
            return self._config_info()
        raise _ApiError(404, f"no such endpoint: {method} {path}")

    # -- verdict queries -------------------------------------------------
    def _records(self) -> dict[str, dict]:
        """Per-case records: live from the shards, or a cached replay.

        The live read races ingest by construction (that is the point
        of a control plane); monitor dictionaries may grow mid-
        iteration, which CPython surfaces as a RuntimeError — retry,
        the next snapshot is just as good.
        """
        if self.router is not None:
            for _ in range(16):
                try:
                    return self.router.results()
                except RuntimeError:
                    continue
            return self.router.results()
        if self.config is None:
            raise _ApiError(
                400,
                "standalone verdict queries need an audit config "
                "(--config) to replay the store with",
            )
        assert self._store_path is not None
        from repro.control.reaudit import _replay

        with AuditStore(self._store_path) as store:
            length = len(store)
            if (
                self._offline_cache is not None
                and self._offline_cache[0] == length
            ):
                return self._offline_cache[1]
            records = _replay(self.config, store)
        self._offline_cache = (length, records)
        return records

    def _tenants(self) -> tuple[int, dict, dict]:
        records = self._records()
        quarantined = self._quarantined_kinds()
        per_purpose: dict[Optional[str], dict] = {}
        for record in records.values():
            purpose = record.get("purpose")
            bucket = per_purpose.setdefault(
                purpose, {"cases": 0, "states": {}, "quarantined": 0}
            )
            bucket["cases"] += 1
            state = record.get("state") or "unknown"
            bucket["states"][state] = bucket["states"].get(state, 0) + 1
        for case in quarantined:
            purpose = records.get(case, {}).get("purpose")
            if purpose in per_purpose:
                per_purpose[purpose]["quarantined"] += 1
        fingerprints = (
            self.config.tenant_fingerprints()
            if self.config is not None
            else {}
        )
        tenants = []
        purposes: set = set(per_purpose)
        if self.config is not None:
            purposes |= {t.purpose for t in self.config.tenants}
        elif self.router is not None:
            purposes |= set(self.router.registry.purposes())
        for purpose in sorted(purposes, key=lambda p: (p is None, p or "")):
            bucket = per_purpose.get(
                purpose, {"cases": 0, "states": {}, "quarantined": 0}
            )
            row: dict = {"purpose": purpose, **bucket}
            if purpose in fingerprints:
                row["fingerprint"] = fingerprints[purpose]
            if self.config is not None and purpose is not None:
                tenant = self.config.tenant(purpose)
                if tenant is not None:
                    row["prefix"] = tenant.prefix
            tenants.append(row)
        return 200, {"tenants": tenants}, {}

    def _verdicts(self, query: dict) -> tuple[int, dict, dict]:
        records = self._records()
        purpose = query.get("purpose")
        outcome = query.get("outcome")
        window = self._time_window_cases(query)
        limit = _int_param(query, "limit", DEFAULT_PAGE)
        if not 0 < limit <= MAX_PAGE:
            raise _ApiError(400, f"limit must be in 1..{MAX_PAGE}")
        after_case = query.get("after_case")
        selected = []
        for case in sorted(records):
            if after_case is not None and case <= after_case:
                continue
            record = records[case]
            if purpose is not None and record.get("purpose") != purpose:
                continue
            if outcome is not None and record.get("state") != outcome:
                continue
            if window is not None and case not in window:
                continue
            selected.append(record)
            if len(selected) > limit:
                break
        more = len(selected) > limit
        page = selected[:limit]
        payload: dict = {"verdicts": page, "count": len(page)}
        if more and page:
            payload["next_after_case"] = page[-1]["case"]
        return 200, payload, {}

    def _time_window_cases(self, query: dict) -> Optional[set[str]]:
        """Cases with an entry inside [since, until] (None: no filter)."""
        since = _ts_param(query, "since")
        until = _ts_param(query, "until")
        if since is None and until is None:
            return None
        if self._store_path is None:
            raise _ApiError(
                400,
                "time-range filters need a durable audit store "
                "(the daemon was started without --store)",
            )
        with AuditStore(self._store_path) as store:
            return set(store.query(since=since, until=until).cases())

    # -- drill-down ------------------------------------------------------
    def _case(self, case: str) -> tuple[int, dict, dict]:
        records = self._records()
        record = records.get(case)
        if record is None:
            raise _ApiError(404, f"unknown case {case!r}")
        payload = dict(record)
        payload["findings"] = self._findings(case)
        if self.router is not None:
            ctx = self.router.case_trace(case)
            payload["trace"] = ctx.trace_id if ctx is not None else None
            payload["quarantined"] = case in self.router.quarantined_cases()
        else:
            payload["quarantined"] = case in self._quarantined_kinds()
        payload["control_log"] = self._control_records(case)
        return 200, payload, {}

    def _findings(self, case: str) -> list[dict]:
        """The case's infringement findings (live: from its monitor)."""
        if self.router is not None:
            for shard in self.router._shards.values():
                if case in shard.monitor.cases():
                    return [
                        {"kind": i.kind.value, "detail": i.detail}
                        for i in shard.monitor.infringements
                        if i.case == case
                    ]
            return []
        if self.config is None or self._store_path is None:
            return []
        from repro.core.monitor import OnlineMonitor

        monitor = OnlineMonitor(
            self.config.registry(), hierarchy=self.config.hierarchy
        )
        with AuditStore(self._store_path) as store:
            for entry in store.query(case=case):
                monitor.observe(entry)
        return [
            {"kind": i.kind.value, "detail": i.detail}
            for i in monitor.infringements
            if i.case == case
        ]

    def _trail(self, case: str, query: dict) -> tuple[int, dict, dict]:
        if self._store_path is None:
            raise _ApiError(
                400,
                "trail drill-down needs a durable audit store "
                "(the daemon was started without --store)",
            )
        after_seq = _int_param(query, "after_seq", 0)
        limit = _int_param(query, "limit", DEFAULT_PAGE)
        if not 0 < limit <= MAX_PAGE:
            raise _ApiError(400, f"limit must be in 1..{MAX_PAGE}")
        if self.router is not None:
            # Entries buffered for the writer are invisible to a fresh
            # connection until flushed; make the page current.
            self.router.flush()
            self.router._writer_sync(timeout=5.0)
        with AuditStore(self._store_path) as store:
            page = store.entries_with_seq(
                case=case, after_seq=after_seq, limit=limit + 1
            )
        more = len(page) > limit
        page = page[:limit]
        entries = [
            {
                "seq": seq,
                "user": entry.user,
                "role": entry.role,
                "action": entry.action,
                "obj": str(entry.obj) if entry.obj is not None else None,
                "task": entry.task,
                "case": entry.case,
                "ts": entry.timestamp.isoformat(),
                "status": entry.status.value,
            }
            for seq, entry in page
        ]
        payload: dict = {"case": case, "entries": entries}
        if more and entries:
            payload["next_after_seq"] = entries[-1]["seq"]
        return 200, payload, {}

    # -- quarantine triage ----------------------------------------------
    def _quarantined_kinds(self) -> dict[str, str]:
        if self.router is not None:
            return {
                case: kind.value
                for case, kind in self.router.quarantined_cases().items()
            }
        dismissed = {
            record["case"]
            for record in self._control_records(None)
            if record["action"] == "dismiss"
        }
        return {
            case: record["failure_kind"]
            for case, record in self._records().items()
            if record.get("failure_kind") is not None
            and case not in dismissed
        }

    def _quarantine(self) -> tuple[int, dict, dict]:
        kinds = self._quarantined_kinds()
        records = self._records()
        cases = [
            {
                "case": case,
                "kind": kind,
                "purpose": records.get(case, {}).get("purpose"),
                "state": records.get(case, {}).get("state"),
            }
            for case, kind in sorted(kinds.items())
        ]
        return 200, {"quarantined": cases, "count": len(cases)}, {}

    def _quarantine_case(self, case: str) -> tuple[int, dict, dict]:
        kinds = self._quarantined_kinds()
        if case not in kinds:
            raise _ApiError(404, f"case {case!r} is not quarantined")
        status, payload, headers = self._case(case)
        payload["kind"] = kinds[case]
        return status, payload, headers

    def _requeue(self, case: str, query: dict) -> tuple[int, dict, dict]:
        if self.router is None:
            raise _ApiError(
                409,
                "requeue needs a live service (this control plane is "
                "standalone over a store file)",
            )
        wait_s = float(query.get("wait_s", 5.0))
        result = self.router.requeue_case(case, wait_s=wait_s)
        self._tel.events.emit(
            CONTROL_REQUEUE,
            case=case,
            accepted=result.accepted,
            state=result.state,
            reason=result.reason,
        )
        payload = {
            "case": case,
            "accepted": result.accepted,
            "state": result.state,
            "replayed_entries": result.replayed_entries,
            "shard": result.shard or None,
            "reason": result.reason or None,
        }
        if result.busy:
            # Retry-After carries the wire protocol's retry_after_s —
            # the same hint a busy `entry` op gets.
            return (
                503,
                {**payload, "retry_after_s": result.retry_after_s},
                {"Retry-After": _retry_after(result.retry_after_s)},
            )
        if not result.accepted:
            return 409, payload, {}
        self._record_control("requeue", case, "operator", result.reason or "")
        return 200, payload, {}

    def _dismiss(self, case: str, body: dict) -> tuple[int, dict, dict]:
        actor = str(body.get("actor", "operator"))
        reason = str(body.get("reason", ""))
        if self.router is not None:
            kind = self.router.dismiss_quarantined(case)
            if kind is None:
                raise _ApiError(404, f"case {case!r} is not quarantined")
            kind_value = kind.value
        else:
            kinds = self._quarantined_kinds()
            if case not in kinds:
                raise _ApiError(404, f"case {case!r} is not quarantined")
            kind_value = kinds[case]
        recorded = self._record_control("dismiss", case, actor, reason)
        self._tel.events.emit(
            CONTROL_DISMISS, case=case, kind=kind_value, actor=actor
        )
        return (
            200,
            {
                "case": case,
                "dismissed": True,
                "kind": kind_value,
                "recorded": recorded,
            },
            {},
        )

    def _record_control(
        self, action: str, case: str, actor: str, reason: str
    ) -> bool:
        """Durably log an operator action (False without a store)."""
        if self._store_path is None:
            return False
        with AuditStore(self._store_path) as store:
            store.record_control(action, case=case, actor=actor, reason=reason)
        return True

    def _control_records(self, case: Optional[str]) -> list[dict]:
        if self._store_path is None:
            return []
        with AuditStore(self._store_path) as store:
            return store.control_records(case=case)

    # -- re-audit --------------------------------------------------------
    def _reaudit(self, body: dict) -> tuple[int, dict, dict]:
        if self._store_path is None:
            raise _ApiError(
                400,
                "re-audit needs a durable audit store "
                "(the daemon was started without --store)",
            )
        config = self.config
        config_path = body.get("config")
        if config_path is not None:
            from repro.control.config import load_config

            try:
                config = load_config(str(config_path))
            except ConfigError as error:
                raise _ApiError(400, str(error)) from error
        if config is None:
            raise _ApiError(
                400, "re-audit needs an audit config (body key 'config')"
            )
        previous = self._baseline_ledger(body)
        if self.router is not None:
            # Make the store cover everything accepted so far; replays
            # read only committed rows.
            self.router.flush()
            self.router._writer_sync(timeout=10.0)
        log_path = body.get("fingerprint_log")
        if previous is None:
            report = full_reaudit(
                config,
                self._store_path,
                telemetry=self._tel,
                fingerprint_log=log_path,
            )
        else:
            report = incremental_reaudit(
                config,
                self._store_path,
                previous,
                telemetry=self._tel,
                fingerprint_log=log_path,
            )
        self._m_reaudit_cases.inc(report.replayed_cases, mode=report.mode)
        self._tel.events.emit(CONTROL_REAUDIT, **report.to_dict())
        ledger_out = body.get("ledger_out")
        if ledger_out is not None:
            report.ledger.save(str(ledger_out))
        payload = report.to_dict()
        if body.get("include_records"):
            payload["records"] = report.ledger.records
        return 200, payload, {}

    def _baseline_ledger(self, body: dict) -> Optional[ReauditLedger]:
        """The previous ledger to diff against (None: cold full run).

        Priority: ``"full": true`` forces a cold run; else an explicit
        ledger file in the request; else, on a live daemon with a
        config, the running state itself (current fingerprints +
        current records) — so a re-audit against an *edited* config
        replays exactly the tenants whose fingerprints moved.
        """
        if body.get("full"):
            return None
        ledger_path = body.get("ledger")
        if ledger_path is not None:
            try:
                return ReauditLedger.load(str(ledger_path))
            except (OSError, ValueError) as error:
                raise _ApiError(
                    400, f"cannot read ledger {ledger_path!r}: {error}"
                ) from error
        if self.router is not None and self.config is not None:
            records = {
                case: {k: v for k, v in record.items() if k != "shard"}
                for case, record in self._records().items()
            }
            return ReauditLedger(
                config_fingerprint=self.config.fingerprint(),
                fingerprints=self.config.tenant_fingerprints(),
                records=records,
            )
        return None

    # -- config ----------------------------------------------------------
    def _config_info(self) -> tuple[int, dict, dict]:
        if self.config is None:
            raise _ApiError(404, "no audit config is mounted")
        return (
            200,
            {
                "version": self.config.version,
                "source": self.config.source,
                "fingerprint": self.config.fingerprint(),
                "tenants": self.config.tenant_fingerprints(),
                "budgets": dict(self.config.budgets),
            },
            {},
        )


class _ApiError(ReproError):
    """An error with an HTTP status (and optional extra headers)."""

    def __init__(self, status: int, message: str, headers: Optional[dict] = None):
        super().__init__(message)
        self.status = status
        self.headers = headers or {}


def _int_param(query: dict, name: str, default: int) -> int:
    raw = query.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError as error:
        raise _ApiError(400, f"{name} must be an integer") from error


def _ts_param(query: dict, name: str) -> Optional[datetime]:
    raw = query.get(name)
    if raw is None:
        return None
    try:
        return datetime.fromisoformat(raw)
    except ValueError as error:
        raise _ApiError(
            400, f"{name} must be an ISO-8601 timestamp"
        ) from error


def _retry_after(seconds: float) -> str:
    """The Retry-After value: the wire hint's raw decimal seconds."""
    text = f"{seconds:.3f}".rstrip("0").rstrip(".")
    return text or "0"


def case_purpose_of(registry, case: str) -> Optional[str]:
    """Registry lookup that answers None instead of raising."""
    try:
        return registry.purpose_of_case(case)
    except UnknownPurposeError:
        return None
