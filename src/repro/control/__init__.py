"""The operator control plane (ROADMAP item 5).

``repro serve`` is socket-in/verdicts-out; this package turns it into a
continuously *operated* audit service:

* :mod:`repro.control.config` — one versioned, fingerprinted JSON/TOML
  document bundling processes, policies, registry prefixes, the role
  hierarchy, and serve budgets for any number of tenants (purposes),
  validated by a ``repro lint`` preflight at load time;
* :mod:`repro.control.api` — the HTTP/JSON control API mounted under
  ``/api/`` on the serve front end (and usable standalone over a store
  file): verdict queries, per-case drill-down, quarantine triage;
* :mod:`repro.control.reaudit` — incremental re-audit: on a config
  change, diff per-tenant fingerprints and replay only affected cases
  from the store, provably byte-identical to a cold full re-audit;
* :mod:`repro.control.client` — the thin client behind ``repro
  control``.

See ``docs/control-plane.md`` for the API reference and config schema.
"""

from repro.control.api import API_VERSION, ControlPlane
from repro.control.client import HttpControlClient, LocalControlClient
from repro.control.config import (
    AuditConfig,
    TenantSpec,
    load_config,
    parse_config,
)
from repro.control.reaudit import (
    ReauditLedger,
    ReauditReport,
    full_reaudit,
    incremental_reaudit,
)

__all__ = [
    "API_VERSION",
    "AuditConfig",
    "ControlPlane",
    "HttpControlClient",
    "LocalControlClient",
    "ReauditLedger",
    "ReauditReport",
    "TenantSpec",
    "full_reaudit",
    "incremental_reaudit",
    "load_config",
    "parse_config",
]
