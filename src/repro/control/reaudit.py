"""Incremental re-audit: replay only what a config change affected.

The paper's auditor is a batch tool — change the process model and you
re-run everything.  A standing service can do better: each tenant's
audit inputs are content-fingerprinted
(:meth:`~repro.control.config.AuditConfig.tenant_fingerprints`), so
when a config changes the control plane diffs fingerprints per purpose
and replays **only the cases of changed tenants** from the audit
store, carrying every other tenant's verdicts forward from the
previous :class:`ReauditLedger`.

The safety argument is differential, not hopeful: cases are
independent (Section 7) and a case's verdict is a pure function of its
entry sequence and its tenant's (process, hierarchy, policy-prefix)
bundle — exactly what the fingerprint covers.  The test suite proves
it mechanically: for every bundled scenario,
``incremental_reaudit(new, store, old_ledger)`` produces a ledger
byte-identical (:meth:`ReauditLedger.canonical`) to a cold
:func:`full_reaudit` of the new config.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.audit.store import AuditStore
from repro.control.config import AuditConfig
from repro.core.monitor import OnlineMonitor
from repro.errors import UnknownPurposeError
from repro.testing.differential import canonical_digest

#: Store rows are streamed in pages of this many entries, so a
#: million-entry store is never materialized (the keyset-pagination
#: satellite in action).
REPLAY_PAGE = 512

LEDGER_VERSION = 1


@dataclass
class ReauditLedger:
    """What one re-audit concluded, keyed for the next incremental run.

    ``records`` maps each case id to its final word — the
    :meth:`~repro.serve.core.ShardRouter.results` shape minus the
    ``shard`` key (shard placement is an implementation detail two runs
    need not share).  ``fingerprints`` are the per-tenant content
    hashes the verdicts were computed under; the next incremental run
    diffs against them.
    """

    config_fingerprint: str
    fingerprints: dict[str, str] = field(default_factory=dict)
    records: dict[str, dict] = field(default_factory=dict)

    def canonical(self) -> bytes:
        """The byte-equality form the differential suite compares.

        Sorted keys, compact separators — two ledgers are the same
        audit conclusion iff these bytes match.
        """
        return json.dumps(
            {
                "version": LEDGER_VERSION,
                "config": self.config_fingerprint,
                "fingerprints": self.fingerprints,
                "records": self.records,
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")

    def to_document(self) -> dict:
        return {
            "version": LEDGER_VERSION,
            "config": self.config_fingerprint,
            "fingerprints": dict(self.fingerprints),
            "records": dict(self.records),
        }

    @classmethod
    def from_document(cls, document: dict) -> "ReauditLedger":
        return cls(
            config_fingerprint=str(document.get("config", "")),
            fingerprints=dict(document.get("fingerprints", {})),
            records=dict(document.get("records", {})),
        )

    def save(self, path: str) -> None:
        Path(path).write_text(
            json.dumps(self.to_document(), sort_keys=True, indent=2) + "\n",
            encoding="utf-8",
        )

    @classmethod
    def load(cls, path: str) -> "ReauditLedger":
        return cls.from_document(
            json.loads(Path(path).read_text(encoding="utf-8"))
        )


@dataclass(frozen=True)
class ReauditReport:
    """What a re-audit run did and why."""

    mode: str  # "full" | "incremental"
    changed_purposes: tuple[str, ...]
    added_purposes: tuple[str, ...]
    removed_purposes: tuple[str, ...]
    replayed_cases: int
    reused_cases: int
    ledger: ReauditLedger

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "changed_purposes": list(self.changed_purposes),
            "added_purposes": list(self.added_purposes),
            "removed_purposes": list(self.removed_purposes),
            "replayed_cases": self.replayed_cases,
            "reused_cases": self.reused_cases,
            "config_fingerprint": self.ledger.config_fingerprint,
        }


def _replay(
    config: AuditConfig,
    store: AuditStore,
    cases: Optional[set[str]] = None,
    telemetry=None,
) -> dict[str, dict]:
    """Replay store entries through a fresh monitor; per-case records.

    ``cases=None`` replays everything; a set restricts the replay to
    those cases (the incremental path).  Entries stream through in
    store order via keyset pagination — the monitor sees exactly the
    sequence the service observed live, so the records are
    byte-identical to the streaming run's
    (``tests/serve``' differential suites established that equivalence
    for the monitor itself).
    """
    serve = config.serve_config()
    monitor = OnlineMonitor(
        config.registry(),
        hierarchy=config.hierarchy,
        telemetry=telemetry,
        compiled=serve.compiled,
        automaton_dir=serve.automaton_dir,
        automaton_max_states=serve.automaton_max_states,
    )
    cursor = 0
    while True:
        page = store.entries_with_seq(after_seq=cursor, limit=REPLAY_PAGE)
        if not page:
            break
        cursor = page[-1][0]
        for _, entry in page:
            if cases is not None and entry.case not in cases:
                continue
            monitor.observe(entry)
    monitor.checkpoint(force=True)
    records: dict[str, dict] = {}
    for case in monitor.cases():
        state = monitor.case_state(case)
        kind = monitor.case_failure_kind(case)
        result = monitor.case_result(case)
        records[case] = {
            "case": case,
            "state": str(state) if state is not None else None,
            "purpose": monitor.case_purpose(case),
            "digest": (
                canonical_digest(result) if result is not None else None
            ),
            "failure_kind": kind.value if kind is not None else None,
        }
    return records


def full_reaudit(
    config: AuditConfig,
    store_path: str,
    telemetry=None,
    fingerprint_log: Optional[str] = None,
) -> ReauditReport:
    """Cold re-audit: every case in the store, from scratch."""
    fingerprints = config.tenant_fingerprints()
    with AuditStore(store_path) as store:
        records = _replay(config, store, telemetry=telemetry)
    ledger = ReauditLedger(
        config_fingerprint=config.fingerprint(),
        fingerprints=fingerprints,
        records=records,
    )
    report = ReauditReport(
        mode="full",
        changed_purposes=tuple(sorted(fingerprints)),
        added_purposes=(),
        removed_purposes=(),
        replayed_cases=len(records),
        reused_cases=0,
        ledger=ledger,
    )
    _log_fingerprints(fingerprint_log, config, report)
    return report


def incremental_reaudit(
    config: AuditConfig,
    store_path: str,
    previous: ReauditLedger,
    telemetry=None,
    fingerprint_log: Optional[str] = None,
) -> ReauditReport:
    """Replay only the cases whose tenant's fingerprint changed.

    A case is **reused** from *previous* iff its purpose's fingerprint
    is unchanged *and* the previous run knew the case under the same
    purpose; everything else — changed tenants, new tenants, cases the
    new registry maps differently (a prefix change), cases the previous
    ledger never saw — is replayed.  Tenants removed from the config
    drop out of the ledger (their cases now audit as unknown-purpose,
    which is a replay, not a reuse).
    """
    fingerprints = config.tenant_fingerprints()
    changed = {
        purpose
        for purpose, fp in fingerprints.items()
        if previous.fingerprints.get(purpose) != fp
    }
    added = {
        purpose
        for purpose in fingerprints
        if purpose not in previous.fingerprints
    }
    removed = {
        purpose
        for purpose in previous.fingerprints
        if purpose not in fingerprints
    }
    registry = config.registry()

    with AuditStore(store_path) as store:
        all_cases = store.cases()
        replay: set[str] = set()
        reused: dict[str, dict] = {}
        for case in all_cases:
            try:
                purpose = registry.purpose_of_case(case)
            except UnknownPurposeError:
                purpose = None
            prev = previous.records.get(case)
            if (
                purpose is not None
                and purpose not in changed
                and prev is not None
                and prev.get("purpose") == purpose
            ):
                reused[case] = prev
            elif (
                purpose is None
                and prev is not None
                and prev.get("purpose") is None
                # An unknown-purpose verdict only carries forward while
                # the tenant set is stable: any removal/addition could
                # be the reason the case was (or now is) unroutable.
                and not removed
                and not added
            ):
                reused[case] = prev
            else:
                replay.add(case)
        records = (
            _replay(config, store, cases=replay, telemetry=telemetry)
            if replay
            else {}
        )
    merged = dict(reused)
    merged.update(records)
    ledger = ReauditLedger(
        config_fingerprint=config.fingerprint(),
        fingerprints=fingerprints,
        records=merged,
    )
    report = ReauditReport(
        mode="incremental",
        changed_purposes=tuple(sorted(changed)),
        added_purposes=tuple(sorted(added)),
        removed_purposes=tuple(sorted(removed)),
        replayed_cases=len(records),
        reused_cases=len(reused),
        ledger=ledger,
    )
    _log_fingerprints(fingerprint_log, config, report)
    return report


def _log_fingerprints(
    path: Optional[str], config: AuditConfig, report: ReauditReport
) -> None:
    """Append one forensics line per run (the CI artifact on failure)."""
    if path is None:
        return
    line = {
        "source": config.source,
        "version": config.version,
        **report.to_dict(),
        "fingerprints": report.ledger.fingerprints,
    }
    with open(path, "a", encoding="utf-8") as sink:
        sink.write(json.dumps(line, sort_keys=True) + "\n")
