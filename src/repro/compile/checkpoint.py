"""Incremental, crash-safe persistence of growing automata.

A long batch audit keeps discovering automaton states (every novel
trail shape materializes new frontiers).  Losing those to a crash means
the next run pays the WeakNext exploration again, so the auditor
checkpoints the automaton *during* the audit, not only at the end.

:class:`CheckpointWriter` is revision-gated: the automaton bumps a
monotonic ``revision`` counter on every new state or transition, and
``maybe_save`` persists only when enough growth accumulated (or enough
time passed) since the last checkpoint — so a warm automaton serving
pure cache hits costs one integer comparison per case.  Each save is a
full atomic artifact write (:func:`repro.compile.artifact.save_artifact`:
temp file + ``os.replace``), so a crash mid-checkpoint leaves the
previous checkpoint intact — the PR-2 resilience convention.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Optional

from repro.compile.artifact import save_artifact
from repro.compile.automaton import PurposeAutomaton
from repro.obs import AUTOMATON_CHECKPOINT, NULL_TELEMETRY, Telemetry


class CheckpointWriter:
    """Periodically persists one automaton's newly materialized states."""

    def __init__(
        self,
        automaton: PurposeAutomaton,
        path: "str | Path",
        min_growth: int = 32,
        min_interval_s: float = 5.0,
        telemetry: Telemetry | None = None,
    ):
        """``min_growth`` is how many revision bumps (new states or
        transitions) must accumulate before a timed save is considered;
        ``min_interval_s`` throttles disk writes regardless of growth.
        Either threshold alone never triggers a save — growth is
        necessary, the interval merely rate-limits."""
        self._automaton = automaton
        self._path = Path(path)
        self._min_growth = min_growth
        self._min_interval_s = min_interval_s
        self._saved_revision = automaton.revision
        self._last_save = time.monotonic()
        tel = telemetry if telemetry is not None else NULL_TELEMETRY
        self._tel = tel
        self._m_checkpoints = tel.registry.counter(
            "automaton_checkpoints_total",
            "incremental automaton checkpoints written",
        )

    @property
    def path(self) -> Path:
        return self._path

    @property
    def automaton(self) -> PurposeAutomaton:
        return self._automaton

    @property
    def pending_growth(self) -> int:
        """Revision bumps since the last persisted checkpoint."""
        return self._automaton.revision - self._saved_revision

    def maybe_save(self, force: bool = False) -> Optional[Path]:
        """Checkpoint if warranted; returns the path written, else ``None``.

        ``force=True`` flushes any unsaved growth regardless of the
        thresholds (used at end of audit); with no growth at all it is
        still a no-op.
        """
        growth = self.pending_growth
        if growth <= 0:
            return None
        if not force:
            if growth < self._min_growth:
                return None
            if time.monotonic() - self._last_save < self._min_interval_s:
                return None
        path = save_artifact(self._automaton, self._path)
        self._saved_revision = self._automaton.revision
        self._last_save = time.monotonic()
        self._m_checkpoints.inc()
        if self._tel.enabled:
            self._tel.events.emit(
                AUTOMATON_CHECKPOINT,
                purpose=self._automaton.purpose,
                states=self._automaton.state_count,
                transitions=self._automaton.transition_count,
                path=str(path),
            )
        return path

    def close(self) -> Optional[Path]:
        """Flush any unsaved growth (equivalent to ``maybe_save(force=True)``)."""
        return self.maybe_save(force=True)
