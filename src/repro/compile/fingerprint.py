"""Stable content fingerprints for compiled purpose automata.

A persisted automaton is only valid for exactly the process semantics it
was compiled from.  Three inputs determine those semantics:

* the **BPMN structure** — elements, flows, error flows (the COWS term
  is a pure function of them, so hashing the serialized process document
  covers the term as well);
* the **role hierarchy** — it decides which log entries match which
  observable labels (Algorithm 1, line 5), and therefore which compiled
  transitions exist;
* the **encoding options** — today the set of silent tasks (Section 7's
  unobservable activities), which changes the observable vocabulary.

The fingerprint is a SHA-256 over a canonical JSON rendering of all
three plus a schema version, so *any* change — a renamed task, an added
specialization, a new silent task, or a change to this very scheme —
invalidates every cached artifact keyed by it.  The digest is stable
across processes and machines (no ``PYTHONHASHSEED`` dependence).
"""

from __future__ import annotations

import hashlib
import json
from typing import Iterable, Optional

from repro.bpmn.encode import EncodedProcess
from repro.bpmn.model import Process
from repro.bpmn.serialize import process_to_dict
from repro.policy.hierarchy import RoleHierarchy

#: Bump on any change to the fingerprint recipe *or* to the semantics of
#: the compiled transition relation (entry-key scheme, step function).
FINGERPRINT_VERSION = 1


def _canonical(document: object) -> bytes:
    """A byte-stable rendering: sorted keys, no whitespace drift."""
    return json.dumps(
        document, sort_keys=True, separators=(",", ":"), default=str
    ).encode("utf-8")


def fingerprint_process(
    process: Process,
    hierarchy: Optional[RoleHierarchy] = None,
    silent_tasks: Iterable[str] = (),
) -> str:
    """The hex fingerprint keying cached artifacts of *process*."""
    payload = {
        "version": FINGERPRINT_VERSION,
        "process": process_to_dict(process),
        "hierarchy": (
            hierarchy.to_parent_map() if hierarchy is not None else {}
        ),
        "silent_tasks": sorted(silent_tasks),
    }
    return hashlib.sha256(_canonical(payload)).hexdigest()


def fingerprint_encoded(
    encoded: EncodedProcess,
    hierarchy: Optional[RoleHierarchy] = None,
    silent_tasks: Iterable[str] = (),
) -> str:
    """The fingerprint of an already-encoded process (same recipe)."""
    return fingerprint_process(
        encoded.process, hierarchy, silent_tasks=silent_tasks
    )


def term_digest(term: object) -> str:
    """A stable digest of one COWS term (by its canonical textual form).

    ``str`` on terms is deterministic — the encoder mints no fresh
    names — so this digest identifies a state across processes, which
    is what lets a warm artifact be shared by parallel workers.
    """
    return hashlib.sha256(str(term).encode("utf-8")).hexdigest()


def frontier_key(pairs: Iterable[tuple[str, tuple[tuple[str, str], ...]]]) -> str:
    """The identity key of one automaton state.

    *pairs* lists ``(term_digest, sorted_active)`` per configuration, in
    frontier order.  Order is part of the identity: Algorithm 1's step
    outcome (event ordering, frontier ordering) depends on it, and the
    compiled replay promises bit-identical steps — two orderings of the
    same configuration set are therefore distinct compiled states.
    """
    body = "\n".join(
        f"{digest}|{';'.join(f'{role}.{task}' for role, task in active)}"
        for digest, active in pairs
    )
    return hashlib.sha256(body.encode("utf-8")).hexdigest()
