"""Compiled replay: Algorithm 1 as integer-state transitions.

:class:`CompiledSession` is a drop-in for
:class:`~repro.core.compliance.ComplianceSession`: same ``feed`` /
``result`` / ``steps`` surface, same telemetry, same
``FrontierExplosionError`` contract — but a warm entry costs integer
indexing instead of a frontier scan over COWS configurations.  Replay
descends a three-tier ladder, cheapest first:

1. **dense table** (:mod:`repro.compile.table`, when attached) — the
   entry's ``(task, role)`` pair resolves through the hash-once symbol
   interner and two array indexings; unknown symbols or uncovered
   cells fall through;
2. **lazy DFA** — the automaton's memoized transition dicts, extending
   through the WeakNext engine on a miss;
3. **interpreted** — a full :class:`ComplianceSession`, entered only
   when the automaton cannot serve the step at all.

Every step any tier records is bit-identical to the interpreted one
(table cells and transition dicts both memoize the interpreted step
function, see :mod:`repro.compile.automaton`), which the differential
suites in ``tests/properties`` and ``tests/serve`` enforce.

When the automaton cannot serve a step — a transition miss on a
pure-disk automaton, or the ``max_states`` guard tripping — the session
falls back transparently: it builds an interpreted session, re-feeds
the entries seen so far (deterministic, so the replayed prefix is
identical), and delegates from then on.  The fallback is counted
(``automaton_fallbacks_total``) and re-counts the prefix's
``replay_entries_total`` increments — visible, rare, and preferable to
losing the case.

:class:`CompiledChecker` is the checker-shaped facade parallel workers
use: it carries a (possibly disk-loaded) automaton plus a *factory* for
the real checker, so the BPMN is re-encoded only if a case actually
needs a transition the artifact does not cover.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.audit.model import AuditTrail, LogEntry
from repro.compile.automaton import REJECTED_STATE, PurposeAutomaton
from repro.core.compliance import (
    REJECTED,
    ComplianceChecker,
    ComplianceResult,
    ComplianceSession,
    FrontierExplosionError,
    ReplayStep,
)
from repro.core.configuration import Configuration
from repro.errors import (
    AutomatonExplosionError,
    AutomatonUnavailableError,
)
from repro.obs import ENTRY_REPLAYED, FRONTIER_GROWN, NULL_TELEMETRY, Telemetry
from repro.obs.metrics import DEFAULT_SIZE_BUCKETS


@dataclass
class CompiledResult(ComplianceResult):
    """A :class:`ComplianceResult` whose frontier-derived properties come
    from the automaton's per-state classification instead of live
    configurations (compiled replay does not materialize COWS terms, so
    ``final_configurations`` stays empty and ``configurations_created``
    is 0)."""

    state_may_continue: bool = False
    state_active_sets: frozenset[frozenset[tuple[str, str]]] = frozenset()
    compiled: bool = True

    @property
    def may_continue(self) -> bool:
        return self.compliant and self.state_may_continue

    def active_task_sets(self) -> frozenset[frozenset[tuple[str, str]]]:
        return self.state_active_sets if self.compliant else frozenset()


class CompiledSession:
    """Incremental replay over a purpose automaton (with fallback)."""

    def __init__(
        self,
        automaton: PurposeAutomaton,
        max_frontier: int = 10_000,
        telemetry: Telemetry | None = None,
        fallback: Optional[Callable[[], ComplianceSession]] = None,
    ):
        self._automaton = automaton
        self._sid = automaton.initial()
        self._table = automaton.table
        self._table_hits = 0
        self._max_frontier = max_frontier
        self._fallback = fallback
        self._delegate: Optional[ComplianceSession] = None
        self._steps: list[ReplayStep] = []
        self._failed: Optional[tuple[int, LogEntry]] = None
        self._count = 0
        tel = telemetry if telemetry is not None else NULL_TELEMETRY
        self._tel = tel
        self._m_entries = tel.registry.counter(
            "replay_entries_total", "log entries replayed, by outcome"
        )
        #: outcome -> pre-bound counter series (hot-path label binding).
        self._entry_series: dict = {}
        self._m_frontier = tel.registry.histogram(
            "replay_frontier_size",
            "configuration frontier size after each replay step",
            buckets=DEFAULT_SIZE_BUCKETS,
        ).series()
        self._m_seconds = tel.registry.histogram(
            "replay_seconds", "wall time per replayed log entry"
        ).series()
        self._m_fallbacks = tel.registry.counter(
            "automaton_fallbacks_total",
            "cases that fell back from compiled to interpreted replay",
        )
        self._m_table_hits = tel.registry.counter(
            "automaton_table_hits_total",
            "replay steps served by the dense transition-table tier "
            "(flushed in batches at verdict/fallback time)",
        )
        # NullEventLogger.emit is a no-op; skipping the call (and its
        # kwargs build) per entry is behavior-preserving.
        self._events_on = tel.enabled and tel.events.enabled

    # -- state -----------------------------------------------------------
    @property
    def compliant(self) -> bool:
        if self._delegate is not None:
            return self._delegate.compliant
        return self._failed is None

    @property
    def steps(self) -> list[ReplayStep]:
        if self._delegate is not None:
            return self._delegate.steps
        return list(self._steps)

    @property
    def entries_fed(self) -> int:
        if self._delegate is not None:
            return self._delegate.entries_fed
        return self._count

    @property
    def may_continue(self) -> bool:
        """Whether further activities are still possible from here."""
        if self._delegate is not None:
            return self._delegate.may_continue
        if self._failed is not None:
            return False
        return self._automaton.state_may_continue(self._sid)

    @property
    def frontier(self) -> tuple[Configuration, ...]:
        """The live configurations (may require the automaton's engine)."""
        if self._delegate is not None:
            return self._delegate.frontier
        if self._failed is not None:
            return ()
        return self._automaton.materialize(self._sid)

    # -- the compiled algorithm -----------------------------------------
    def feed(self, entry: LogEntry) -> bool:
        """Replay one entry; returns whether the trail is still compliant."""
        if self._delegate is not None:
            return self._delegate.feed(entry)
        index = self._count
        self._count += 1
        if self._failed is not None:
            self._steps.append(ReplayStep(index, entry, REJECTED, 0))
            self._outcome_series(REJECTED).inc()
            return False
        started = time.perf_counter() if self._tel.enabled else 0.0
        previous_size = self._automaton.state_size(self._sid)

        transition = None
        table = self._table
        if table is not None and self._sid < table.n_states:
            # The dense tier: symbol id from the hash-once interner,
            # then two array/list indexings — no string build, no dict
            # probe.  UNKNOWN cells (or out-of-alphabet keys) fall
            # through to the lazy-DFA tier below.
            sym = (
                table.err_symbol
                if entry.failed
                else table.entry_symbol(entry.task, entry.role)
            )
            if sym >= 0:
                pooled = table.cells[self._sid * table.n_symbols + sym]
                if pooled >= 0:
                    transition = table.pool[pooled]
                    self._table_hits += 1
        if transition is None:
            key = self._automaton.entry_key(entry)
            transition = self._automaton.lookup(self._sid, key)
            if transition is None:
                try:
                    transition = self._automaton.extend(self._sid, key)
                except (AutomatonUnavailableError, AutomatonExplosionError):
                    return self._fall_back(entry)

        if transition.target == REJECTED_STATE:
            self._failed = (index, entry)
            self._steps.append(ReplayStep(index, entry, REJECTED, 0))
            self._record_step(index, entry, REJECTED, 0, previous_size, started)
            return False
        if transition.size > self._max_frontier:
            raise FrontierExplosionError(
                f"configuration frontier grew past {self._max_frontier}"
            )
        self._sid = transition.target
        self._steps.append(
            ReplayStep(
                index,
                entry,
                transition.outcome,
                transition.size,
                transition.events,
            )
        )
        self._record_step(
            index, entry, transition.outcome, transition.size,
            previous_size, started,
        )
        return True

    def _fall_back(self, entry: LogEntry) -> bool:
        """Replay the whole case so far through an interpreted session.

        Deterministic replay means the delegate reproduces the exact
        prefix this session already served, so the visible step record
        is seamless.
        """
        if self._fallback is None:
            raise AutomatonUnavailableError(
                f"automaton for {self._automaton.purpose!r} cannot serve "
                "this trail and no interpreted fallback is configured"
            )
        self._flush_table_hits()
        self._m_fallbacks.inc()
        delegate = self._fallback()
        for prior in self._steps:
            delegate.feed(prior.entry)
        self._delegate = delegate
        return delegate.feed(entry)

    def _outcome_series(self, outcome: str):
        series = self._entry_series.get(outcome)
        if series is None:
            series = self._m_entries.series(outcome=outcome)
            self._entry_series[outcome] = series
        return series

    def _flush_table_hits(self) -> None:
        if self._table_hits:
            self._m_table_hits.inc(self._table_hits)
            self._table_hits = 0

    def _record_step(
        self,
        index: int,
        entry: LogEntry,
        outcome: str,
        frontier_size: int,
        previous_size: int,
        started: float,
    ) -> None:
        self._outcome_series(outcome).inc()
        if not self._tel.enabled:
            return
        duration = time.perf_counter() - started
        self._m_frontier.observe(frontier_size)
        self._m_seconds.observe(duration)
        if not self._events_on:
            return
        self._tel.events.emit(
            ENTRY_REPLAYED,
            index=index,
            case=entry.case,
            role=entry.role,
            task=entry.task,
            status=str(entry.status),
            outcome=outcome,
            frontier=frontier_size,
            duration_s=round(duration, 6),
        )
        if frontier_size > previous_size:
            self._tel.events.emit(
                FRONTIER_GROWN,
                index=index,
                case=entry.case,
                size=frontier_size,
                previous=previous_size,
            )

    def result(self) -> ComplianceResult:
        if self._delegate is not None:
            return self._delegate.result()
        self._flush_table_hits()
        failed_index, failed_entry = self._failed or (None, None)
        compliant = self._failed is None
        return CompiledResult(
            compliant=compliant,
            trail_length=self._count,
            steps=list(self._steps),
            failed_index=failed_index,
            failed_entry=failed_entry,
            final_configurations=(),
            configurations_created=0,
            state_may_continue=(
                self._automaton.state_may_continue(self._sid)
                if compliant
                else False
            ),
            state_active_sets=(
                self._automaton.state_active_sets(self._sid)
                if compliant
                else frozenset()
            ),
        )


class CompiledChecker:
    """A checker-shaped facade replaying through a purpose automaton.

    Construction is cheap: no BPMN encoding, no COWS term, no WeakNext
    engine.  The *checker_factory* is invoked lazily — once — if (and
    only if) a replay needs a transition the automaton does not hold,
    which is how parallel workers warmed from a shipped artifact avoid
    re-encoding the process entirely on covered trails.
    """

    def __init__(
        self,
        automaton: PurposeAutomaton,
        checker_factory: Optional[Callable[[], ComplianceChecker]] = None,
        max_frontier: int = 10_000,
        telemetry: Telemetry | None = None,
    ):
        self._automaton = automaton
        self._factory = checker_factory
        self._real: Optional[ComplianceChecker] = None
        self._max_frontier = max_frontier
        self._tel = telemetry if telemetry is not None else NULL_TELEMETRY
        if checker_factory is not None:
            automaton.set_engine_source(self._engine_source)

    @property
    def automaton(self) -> PurposeAutomaton:
        return self._automaton

    @property
    def purpose(self) -> str:
        return self._automaton.purpose

    def _real_checker(self) -> ComplianceChecker:
        if self._real is None:
            if self._factory is None:
                raise AutomatonUnavailableError(
                    f"no checker factory for purpose {self.purpose!r}"
                )
            self._real = self._factory()
        return self._real

    def _engine_source(self):
        checker = self._real_checker()
        return checker.engine, checker.initial_configuration

    def _interpreted_session(self) -> ComplianceSession:
        return self._real_checker().interpreted_session()

    @property
    def encoded(self):
        """The encoded process (forces the real checker — avoid on hot paths)."""
        return self._real_checker().encoded

    @property
    def engine(self):
        """The WeakNext engine (forces the real checker — avoid on hot paths)."""
        return self._real_checker().engine

    def session(self) -> CompiledSession:
        return CompiledSession(
            self._automaton,
            max_frontier=self._max_frontier,
            telemetry=self._tel,
            fallback=(
                self._interpreted_session if self._factory is not None else None
            ),
        )

    def check(self, trail: AuditTrail | Iterable[LogEntry]) -> ComplianceResult:
        """Run (compiled) Algorithm 1 on a (case-projected) trail."""
        session = self.session()
        with self._tel.tracer.span("replay", purpose=self.purpose):
            for entry in trail:
                session.feed(entry)
        return session.result()
