"""Versioned on-disk persistence of purpose automata.

An artifact is one JSON file per ``(purpose, fingerprint)`` pair:

.. code-block:: text

    {
      "format": "repro-purpose-automaton",
      "version": 1,
      "fingerprint": "<sha256 of process + hierarchy + options>",
      "purpose": "...",
      "automaton": { ... PurposeAutomaton.to_document() ... },
      "eof": true
    }

``eof`` is written last, so a torn write that happens to parse as JSON
is still detectably truncated.  Writes are atomic (temp file +
``os.replace``, the PR-2 crash-safety convention): a crash mid-save
leaves the previous artifact intact.

Loading is defensive by contract: *every* defect — missing file aside —
raises :class:`~repro.errors.ArtifactError` with a machine-readable
``reason``, and :class:`AutomatonCache` turns that into a
``compile.artifact_invalid`` event plus a transparent recompile.  An
invalid artifact must never fail an audit.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from pathlib import Path
from typing import Optional

from repro.compile.automaton import PurposeAutomaton
from repro.errors import ArtifactError
from repro.obs import ARTIFACT_INVALID, NULL_TELEMETRY, Telemetry

FORMAT_NAME = "repro-purpose-automaton"

#: Bump on any change to the artifact layout (the automaton document
#: schema or this envelope).  Readers reject other versions.
FORMAT_VERSION = 1


def _slug(purpose: str) -> str:
    """A filesystem-safe rendering of a purpose name."""
    cleaned = re.sub(r"[^A-Za-z0-9._-]+", "-", purpose).strip("-")
    return cleaned or "purpose"


def artifact_path(directory: Path, purpose: str, fingerprint: str) -> Path:
    """The canonical artifact location for ``(purpose, fingerprint)``."""
    return directory / f"{_slug(purpose)}-{fingerprint[:16]}.automaton.json"


def save_artifact(automaton: PurposeAutomaton, path: Path) -> Path:
    """Atomically persist *automaton* at *path*; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    envelope = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "fingerprint": automaton.fingerprint,
        "purpose": automaton.purpose,
        "automaton": automaton.to_document(),
        "eof": True,
    }
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=str(path.parent)
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(envelope, handle, separators=(",", ":"))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def load_artifact(
    path: Path,
    expected_fingerprint: Optional[str] = None,
    telemetry: Telemetry | None = None,
) -> PurposeAutomaton:
    """Load and validate one artifact file.

    Raises :class:`~repro.errors.ArtifactError` with ``reason`` one of
    ``missing``, ``unreadable``, ``malformed``, ``truncated``,
    ``format``, ``version``, ``fingerprint``, ``state_mismatch``.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        raise ArtifactError(f"no artifact at {path}", reason="missing")
    except (OSError, UnicodeDecodeError) as exc:
        raise ArtifactError(
            f"artifact {path} unreadable: {exc}", reason="unreadable"
        ) from exc
    try:
        envelope = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ArtifactError(
            f"artifact {path} is not valid JSON (truncated write?): {exc}",
            reason="truncated",
        ) from exc
    if not isinstance(envelope, dict):
        raise ArtifactError(
            f"artifact {path} is not a JSON object", reason="malformed"
        )
    if envelope.get("format") != FORMAT_NAME:
        raise ArtifactError(
            f"artifact {path} has format {envelope.get('format')!r}, "
            f"expected {FORMAT_NAME!r}",
            reason="format",
        )
    if envelope.get("version") != FORMAT_VERSION:
        raise ArtifactError(
            f"artifact {path} has version {envelope.get('version')!r}, "
            f"this reader supports {FORMAT_VERSION}",
            reason="version",
        )
    if envelope.get("eof") is not True:
        raise ArtifactError(
            f"artifact {path} is missing its end-of-file marker "
            "(truncated write?)",
            reason="truncated",
        )
    fingerprint = envelope.get("fingerprint")
    if expected_fingerprint is not None and fingerprint != expected_fingerprint:
        raise ArtifactError(
            f"artifact {path} was compiled for fingerprint "
            f"{str(fingerprint)[:12]}…, the process now fingerprints to "
            f"{expected_fingerprint[:12]}…",
            reason="fingerprint",
        )
    document = envelope.get("automaton")
    if not isinstance(document, dict):
        raise ArtifactError(
            f"artifact {path} carries no automaton document",
            reason="malformed",
        )
    automaton = PurposeAutomaton.from_document(document, telemetry=telemetry)
    if automaton.fingerprint != fingerprint:
        raise ArtifactError(
            f"artifact {path}: envelope and document fingerprints disagree",
            reason="fingerprint",
        )
    return automaton


class AutomatonCache:
    """A directory of automaton artifacts, keyed by (purpose, fingerprint).

    ``load`` never raises into the audit path: any invalid artifact is
    reported as a ``compile.artifact_invalid`` event and treated as a
    cache miss (returning ``None``), so callers recompile transparently.
    """

    def __init__(self, directory: "str | Path", telemetry: Telemetry | None = None):
        self._directory = Path(directory)
        self._tel = telemetry if telemetry is not None else NULL_TELEMETRY

    @property
    def directory(self) -> Path:
        return self._directory

    def path_for(self, purpose: str, fingerprint: str) -> Path:
        return artifact_path(self._directory, purpose, fingerprint)

    def table_path_for(self, purpose: str, fingerprint: str) -> Path:
        from repro.compile.table import table_path

        return table_path(self._directory, purpose, fingerprint)

    def load(
        self, purpose: str, fingerprint: str
    ) -> Optional[PurposeAutomaton]:
        """The cached automaton, or ``None`` (miss or invalid artifact)."""
        path = self.path_for(purpose, fingerprint)
        try:
            return load_artifact(
                path, expected_fingerprint=fingerprint, telemetry=self._tel
            )
        except ArtifactError as error:
            if error.reason != "missing":
                self.report_invalid(path, error)
            return None

    def save(self, automaton: PurposeAutomaton) -> Path:
        return save_artifact(
            automaton,
            self.path_for(automaton.purpose, automaton.fingerprint),
        )

    def load_table(self, purpose: str, fingerprint: str):
        """The cached dense table, or ``None`` (miss or invalid artifact).

        Same contract as :meth:`load`: corruption — including a flipped
        bit in the mmap'd cell region, caught by the checksum — is
        reported and treated as a miss, never raised into an audit.
        """
        from repro.compile.table import load_table

        path = self.table_path_for(purpose, fingerprint)
        try:
            return load_table(path, expected_fingerprint=fingerprint)
        except ArtifactError as error:
            if error.reason != "missing":
                self.report_invalid(path, error)
            return None

    def save_table(self, table) -> Path:
        from repro.compile.table import save_table

        return save_table(
            table, self.table_path_for(table.purpose, table.fingerprint)
        )

    def report_invalid(self, path: Path, error: ArtifactError) -> None:
        """Emit the ``compile.artifact_invalid`` event for *error*."""
        self._tel.events.emit(
            ARTIFACT_INVALID,
            path=str(path),
            reason=error.reason,
            detail=str(error),
        )
        self._tel.registry.counter(
            "automaton_artifacts_invalid_total",
            "persisted automaton artifacts rejected at load time",
        ).inc(reason=error.reason)
