"""The purpose automaton: lazy subset construction over observable labels.

Algorithm 1's frontier-set replay *is* a subset construction: each step
maps a deduplicated set of ``(state, active)`` configurations to the
next one, driven by the entry being replayed.  Two different log entries
drive the very same step whenever they agree on

* success/failure (a failed entry is simulated only by ``sys.Err``), and
* for successful entries, the task plus the set of process pool roles
  the entry's role specializes under the (fixed) hierarchy — that set
  fully determines both absorption (Algorithm 1, line 8) and which
  ``r . q`` WeakNext transitions match (line 10).

So the automaton's alphabet is not raw log entries but canonical **entry
keys** (:meth:`PurposeAutomaton.entry_key`), and its states are integer
ids for frontiers, interned by content digest.  Order matters: the
interpreted replay's step record (event ordering, frontier ordering)
depends on configuration iteration order, and compiled replay promises
bit-identical steps — so the state key preserves frontier order (see
:func:`repro.compile.fingerprint.frontier_key`).

States are built **lazily** through the existing
:class:`~repro.core.weaknext.WeakNextEngine` on first demand and
memoized forever; each transition stores the precomputed step summary
(outcome, simulated events, target size) so a warm replay is a dict
lookup per entry.  A ``max_states`` guard mirrors
``FrontierExplosionError`` one level up — past it, replay falls back to
the interpreted engine.

Every state remembers its **witness path** (the entry-key sequence that
discovered it), which is how a disk-loaded automaton re-materializes
configurations on demand: no COWS terms are persisted, only digests.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.audit.model import LogEntry
from repro.compile.fingerprint import frontier_key, term_digest
from repro.core.compliance import (
    ABSORBED,
    ERROR_TRANSITION,
    TASK_TRANSITION,
    _summarize_outcomes,
)
from repro.core.configuration import Configuration
from repro.core.observables import ErrorEvent
from repro.core.weaknext import WeakNextEngine
from repro.errors import (
    ArtifactError,
    AutomatonExplosionError,
    AutomatonUnavailableError,
    CompileError,
)
from repro.obs import AUTOMATON_COMPILED, NULL_TELEMETRY, Telemetry
from repro.policy.hierarchy import RoleHierarchy

#: The transition target meaning "no configuration can simulate the entry".
REJECTED_STATE = -1

#: The entry key of every failed entry (only ``sys.Err`` can simulate it).
ERR_KEY = "e"

#: Field separator inside task keys; U+001F never occurs in BPMN names.
_SEP = "\x1f"


class EntryKeyer:
    """Maps log entries onto the automaton's canonical alphabet."""

    def __init__(self, roles: Iterable[str], hierarchy: RoleHierarchy | None):
        self._roles = frozenset(roles)
        self._hierarchy = hierarchy or RoleHierarchy()
        self._matched: dict[str, frozenset[str]] = {}
        self._key_cache: dict[tuple[str, str], str] = {}

    @property
    def roles(self) -> frozenset[str]:
        return self._roles

    @property
    def hierarchy(self) -> RoleHierarchy:
        return self._hierarchy

    def matched_roles(self, entry_role: str) -> frozenset[str]:
        """The process pool roles *entry_role* specializes (incl. itself)."""
        cached = self._matched.get(entry_role)
        if cached is None:
            cached = frozenset(
                pool
                for pool in self._roles
                if self._hierarchy.is_specialization_of(entry_role, pool)
            )
            self._matched[entry_role] = cached
        return cached

    def task_key(self, task: str, entry_role: str) -> str:
        cached = self._key_cache.get((task, entry_role))
        if cached is None:
            suffix = ",".join(sorted(self.matched_roles(entry_role)))
            cached = f"t{_SEP}{task}{_SEP}{suffix}"
            self._key_cache[(task, entry_role)] = cached
        return cached

    def key(self, entry: LogEntry) -> str:
        """The canonical alphabet symbol *entry* drives."""
        if entry.failed:
            return ERR_KEY
        return self.task_key(entry.task, entry.role)


def _parse_key(key: str) -> tuple[Optional[str], frozenset[str]]:
    """``(task, matched_roles)`` of a task key; ``(None, ø)`` for ERR_KEY."""
    if key == ERR_KEY:
        return None, frozenset()
    try:
        _, task, suffix = key.split(_SEP)
    except ValueError:
        raise CompileError(f"malformed entry key {key!r}") from None
    matched = frozenset(suffix.split(",")) if suffix else frozenset()
    return task, matched


@dataclass(frozen=True)
class Transition:
    """One compiled step: everything a replay records about it."""

    target: int  #: target state id, or :data:`REJECTED_STATE`
    outcome: str  #: the summarized step outcome (``absorbed``/``task``/...)
    events: tuple[str, ...]  #: the simulated observable events, in order
    size: int  #: the target frontier size (0 when rejected)


class _State:
    """One interned frontier (internal)."""

    __slots__ = (
        "sid",
        "key",
        "size",
        "may_continue",
        "active",
        "path",
        "transitions",
        "configs",
    )

    def __init__(
        self,
        sid: int,
        key: str,
        size: int,
        may_continue: bool,
        active: tuple[tuple[tuple[str, str], ...], ...],
        path: tuple[str, ...],
        transitions: Optional[dict[str, Transition]] = None,
        configs: Optional[tuple[Configuration, ...]] = None,
    ):
        self.sid = sid
        self.key = key
        self.size = size
        self.may_continue = may_continue
        self.active = active  # sorted (role, task) pairs, per configuration
        self.path = path  # entry-key witness path from the initial state
        self.transitions = transitions if transitions is not None else {}
        self.configs = configs


#: A callable producing the COWS backend on demand: ``(engine, initial)``.
EngineSource = Callable[[], tuple[WeakNextEngine, Configuration]]


class PurposeAutomaton:
    """The compiled observable LTS of one purpose's process.

    The automaton is usable in three modes:

    * **bound** — a :class:`WeakNextEngine` plus initial configuration
      are attached (:meth:`bind`); missing transitions are derived on
      demand and memoized;
    * **lazily bound** — an :attr:`engine source <set_engine_source>` is
      attached instead; the COWS backend is built only on the first
      transition miss (this is how parallel workers avoid re-encoding
      the BPMN when the shipped automaton already covers the trail);
    * **pure disk** — neither; a transition miss raises
      :class:`~repro.errors.AutomatonUnavailableError` and the caller
      falls back to interpreted replay.
    """

    def __init__(
        self,
        fingerprint: str,
        purpose: str,
        roles: Iterable[str],
        hierarchy: RoleHierarchy | None = None,
        max_states: int = 50_000,
        telemetry: Telemetry | None = None,
    ):
        self._fingerprint = fingerprint
        self._purpose = purpose
        self._keyer = EntryKeyer(roles, hierarchy)
        self._max_states = max_states
        self._states: list[_State] = []
        self._by_key: dict[str, int] = {}
        self._transition_count = 0
        self._engine: Optional[WeakNextEngine] = None
        self._engine_source: Optional[EngineSource] = None
        #: Monotonic edit counter; bumps on every new state or transition.
        #: Checkpointing compares it against the last persisted revision.
        self.revision = 0
        #: ``memory`` for freshly built automata, ``disk`` after
        #: :meth:`from_document` — the hit-counter tier label.
        self.tier = "memory"
        #: The attached dense transition table
        #: (:class:`~repro.compile.table.TransitionTable`), or ``None``.
        #: Replay consults it before the memoized transition dicts.
        self.table = None
        tel = telemetry if telemetry is not None else NULL_TELEMETRY
        self._tel = tel
        self._m_states = tel.registry.counter(
            "automaton_states_total", "purpose-automaton states materialized"
        )
        self._m_hits = tel.registry.counter(
            "automaton_hits_total",
            "compiled transitions served, by automaton tier",
        )
        self._m_misses = tel.registry.counter(
            "automaton_misses_total",
            "transition misses that required a WeakNext derivation",
        )
        self._m_build = tel.registry.histogram(
            "automaton_build_seconds",
            "wall time spent deriving missing automaton transitions",
        )

    # -- identity --------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        return self._fingerprint

    @property
    def purpose(self) -> str:
        return self._purpose

    @property
    def keyer(self) -> EntryKeyer:
        return self._keyer

    @property
    def max_states(self) -> int:
        return self._max_states

    @property
    def state_count(self) -> int:
        return len(self._states)

    @property
    def transition_count(self) -> int:
        return self._transition_count

    def entry_key(self, entry: LogEntry) -> str:
        return self._keyer.key(entry)

    # -- binding to the COWS backend ------------------------------------
    def bind(self, engine: WeakNextEngine, initial: Configuration) -> None:
        """Attach the interpreting engine (and verify the initial state).

        A fingerprint match should guarantee the initial frontier key
        matches too; a mismatch means the artifact was corrupted in a
        way that preserved its fingerprint field, so it is rejected the
        same way (:class:`~repro.errors.ArtifactError`).
        """
        actual = frontier_key(self._pairs((initial,)))
        if self._states:
            expected = self._states[0].key
            if actual != expected:
                raise ArtifactError(
                    "automaton initial state does not match the process "
                    f"(artifact key {expected[:12]}…, "
                    f"computed {actual[:12]}…)",
                    reason="state_mismatch",
                )
            self._states[0].configs = (initial,)
        self._engine = engine
        if not self._states:
            self._intern((initial,), path=())

    def set_engine_source(self, source: Optional[EngineSource]) -> None:
        """Attach a lazy engine factory (invoked on first transition miss)."""
        self._engine_source = source

    @property
    def bound(self) -> bool:
        return self._engine is not None

    def _require_engine(self) -> WeakNextEngine:
        if self._engine is None:
            if self._engine_source is None:
                raise AutomatonUnavailableError(
                    f"automaton for {self._purpose!r} has no engine attached"
                    " and no engine source to build one"
                )
            engine, initial = self._engine_source()
            self.bind(engine, initial)
        return self._engine

    # -- state interning -------------------------------------------------
    @staticmethod
    def _pairs(
        configs: Iterable[Configuration],
    ) -> list[tuple[str, tuple[tuple[str, str], ...]]]:
        return [
            (term_digest(conf.state), tuple(sorted(conf.active)))
            for conf in configs
        ]

    def _intern(
        self, configs: tuple[Configuration, ...], path: tuple[str, ...]
    ) -> int:
        key = frontier_key(self._pairs(configs))
        sid = self._by_key.get(key)
        if sid is not None:
            state = self._states[sid]
            if state.configs is None:
                state.configs = configs
            return sid
        if len(self._states) >= self._max_states:
            raise AutomatonExplosionError(
                f"purpose automaton for {self._purpose!r} grew past "
                f"{self._max_states} states",
                states=len(self._states),
            )
        sid = len(self._states)
        state = _State(
            sid=sid,
            key=key,
            size=len(configs),
            may_continue=any(conf.next for conf in configs),
            active=tuple(tuple(sorted(conf.active)) for conf in configs),
            path=path,
            configs=configs,
        )
        self._states.append(state)
        self._by_key[key] = sid
        self.revision += 1
        self._m_states.inc()
        return sid

    def initial(self) -> int:
        """The initial state id (0), materializing it if necessary."""
        if not self._states:
            self._require_engine()
        return 0

    def states_digest(self, limit: Optional[int] = None) -> str:
        """SHA-256 over the first *limit* state keys, in id order.

        Two automata agreeing on this digest assign the same ids to the
        same frontiers for those states — the alignment contract a
        dense transition table's integer cells depend on.
        """
        states = self._states if limit is None else self._states[:limit]
        hasher = hashlib.sha256()
        for state in states:
            hasher.update(state.key.encode("utf-8"))
            hasher.update(b"\n")
        return hasher.hexdigest()

    def attach_table(self, table) -> None:
        """Attach a dense table as this automaton's fastest replay tier.

        The table must carry this automaton's fingerprint and hash to
        the same states digest over its covered prefix — cells are raw
        state ids, so any misalignment would silently corrupt verdicts.
        Both defects raise :class:`~repro.errors.ArtifactError`.
        """
        if table.fingerprint != self._fingerprint:
            raise ArtifactError(
                f"table fingerprint {table.fingerprint[:12]}… does not "
                f"match automaton {self._fingerprint[:12]}…",
                reason="fingerprint",
            )
        if table.n_states > len(self._states) or (
            table.states_digest != self.states_digest(table.n_states)
        ):
            raise ArtifactError(
                f"table for {self._purpose!r} covers {table.n_states} "
                "states that do not align with this automaton's",
                reason="state_mismatch",
            )
        table.bind_keyer(self._keyer)
        self.table = table

    # -- the compiled step function --------------------------------------
    def lookup(self, sid: int, key: str) -> Optional[Transition]:
        """The memoized transition, counting hit/miss telemetry."""
        transition = self._states[sid].transitions.get(key)
        if transition is None:
            self._m_misses.inc()
        else:
            self._m_hits.inc(tier=self.tier)
        return transition

    def extend(self, sid: int, key: str) -> Transition:
        """Derive, memoize, and return the missing transition ``sid --key-->``.

        Raises :class:`~repro.errors.AutomatonUnavailableError` when no
        engine is available and
        :class:`~repro.errors.AutomatonExplosionError` when the target
        frontier would exceed ``max_states`` — both of which compiled
        replay turns into an interpreted fallback.
        """
        started = time.perf_counter()
        self._require_engine()
        state = self._states[sid]
        configs = self.materialize(sid)
        next_frontier, outcomes, events = self._apply(configs, key)
        if not next_frontier:
            transition = Transition(REJECTED_STATE, "rejected", (), 0)
        else:
            target = self._intern(tuple(next_frontier), state.path + (key,))
            transition = Transition(
                target,
                _summarize_outcomes(outcomes),
                tuple(events),
                len(next_frontier),
            )
        state.transitions[key] = transition
        self._transition_count += 1
        self.revision += 1
        self._m_build.observe(time.perf_counter() - started)
        return transition

    def _apply(
        self, configs: tuple[Configuration, ...], key: str
    ) -> tuple[list[Configuration], set[str], list[str]]:
        """One Algorithm 1 step over *configs*, driven by entry key *key*.

        This mirrors ``ComplianceSession.feed`` exactly — including the
        un-deduplicated ``events`` append — so compiled steps are
        bit-identical to interpreted ones.
        """
        engine = self._engine
        assert engine is not None
        task, matched = _parse_key(key)
        next_frontier: list[Configuration] = []
        seen: set[Configuration] = set()
        outcomes: set[str] = set()
        events: list[str] = []
        for conf in configs:
            if task is not None and any(
                q == task and r in matched for r, q in conf.active
            ):
                if conf not in seen:
                    seen.add(conf)
                    next_frontier.append(conf)
                outcomes.add(ABSORBED)
                continue
            for successor in conf.next:
                event = successor[0]
                if isinstance(event, ErrorEvent):
                    if task is not None:
                        continue
                    outcome = ERROR_TRANSITION
                else:
                    if (
                        task is None
                        or event.task != task
                        or event.role not in matched
                    ):
                        continue
                    outcome = TASK_TRANSITION
                reached = Configuration.reached(engine, successor)
                if reached not in seen:
                    seen.add(reached)
                    next_frontier.append(reached)
                outcomes.add(outcome)
                events.append(str(event))
        return next_frontier, outcomes, events

    # -- materialization --------------------------------------------------
    def materialize(self, sid: int) -> tuple[Configuration, ...]:
        """The configurations of state *sid*, replaying its witness path
        from the initial state if they were not kept (disk-loaded
        automata persist digests, not COWS terms)."""
        state = self._states[sid]
        if state.configs is not None:
            return state.configs
        engine = self._require_engine()
        configs = self._states[0].configs
        assert configs is not None  # bind() always sets state 0
        for key in state.path:
            step_frontier, _, _ = self._apply(configs, key)
            configs = tuple(step_frontier)
            cursor = self._by_key.get(frontier_key(self._pairs(configs)))
            if cursor is not None and self._states[cursor].configs is None:
                self._states[cursor].configs = configs
        if frontier_key(self._pairs(configs)) != state.key:
            raise ArtifactError(
                f"state {sid} of automaton for {self._purpose!r} could not "
                "be reconstructed from its witness path",
                reason="state_mismatch",
            )
        state.configs = configs
        return configs

    # -- per-state classification ----------------------------------------
    def state_size(self, sid: int) -> int:
        return self._states[sid].size

    def state_may_continue(self, sid: int) -> bool:
        return self._states[sid].may_continue

    def state_active_sets(
        self, sid: int
    ) -> frozenset[frozenset[tuple[str, str]]]:
        return frozenset(
            frozenset(pairs) for pairs in self._states[sid].active
        )

    def configurations_of(self, sid: int) -> tuple[Configuration, ...]:
        """Like :meth:`materialize` (may need the engine)."""
        return self.materialize(sid)

    def classify(self, sid: int) -> str:
        """``may-continue`` or ``accepting`` (rejection has no state —
        transitions to :data:`REJECTED_STATE` instead)."""
        return "may-continue" if self._states[sid].may_continue else "accepting"

    # -- persistence ------------------------------------------------------
    def to_document(self) -> dict:
        """A plain-JSON rendering (no COWS terms; witness paths instead)."""
        return {
            "purpose": self._purpose,
            "fingerprint": self._fingerprint,
            "roles": sorted(self._keyer.roles),
            "hierarchy": self._keyer.hierarchy.to_parent_map(),
            "max_states": self._max_states,
            "states": [
                {
                    "key": state.key,
                    "size": state.size,
                    "may_continue": state.may_continue,
                    "active": [
                        [[role, task] for role, task in pairs]
                        for pairs in state.active
                    ],
                    "path": list(state.path),
                    "transitions": {
                        key: {
                            "to": t.target,
                            "outcome": t.outcome,
                            "events": list(t.events),
                            "size": t.size,
                        }
                        for key, t in state.transitions.items()
                    },
                }
                for state in self._states
            ],
        }

    @classmethod
    def from_document(
        cls,
        document: dict,
        telemetry: Telemetry | None = None,
        tier: str = "disk",
    ) -> "PurposeAutomaton":
        """Rebuild from :meth:`to_document` output.

        Malformed documents raise :class:`~repro.errors.ArtifactError`
        so loaders can recompile transparently.
        """
        try:
            hierarchy = RoleHierarchy.from_parent_map(document["hierarchy"])
            automaton = cls(
                fingerprint=document["fingerprint"],
                purpose=document["purpose"],
                roles=document["roles"],
                hierarchy=hierarchy,
                max_states=int(document["max_states"]),
                telemetry=telemetry,
            )
            automaton.tier = tier
            for raw in document["states"]:
                sid = len(automaton._states)
                state = _State(
                    sid=sid,
                    key=raw["key"],
                    size=int(raw["size"]),
                    may_continue=bool(raw["may_continue"]),
                    active=tuple(
                        tuple((role, task) for role, task in pairs)
                        for pairs in raw["active"]
                    ),
                    path=tuple(raw["path"]),
                    transitions={
                        key: Transition(
                            target=int(t["to"]),
                            outcome=t["outcome"],
                            events=tuple(t["events"]),
                            size=int(t["size"]),
                        )
                        for key, t in raw["transitions"].items()
                    },
                )
                automaton._states.append(state)
                automaton._by_key[state.key] = sid
                automaton._transition_count += len(state.transitions)
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise ArtifactError(
                f"malformed automaton document: {exc!r}", reason="malformed"
            ) from exc
        if not automaton._states:
            raise ArtifactError(
                "automaton document has no states", reason="malformed"
            )
        return automaton


def compile_automaton(
    checker,
    fingerprint: Optional[str] = None,
    max_states: int = 50_000,
    telemetry: Telemetry | None = None,
    exhaustive: bool = True,
) -> PurposeAutomaton:
    """Eagerly compile a checker's process into a purpose automaton.

    The construction BFS-explores every state reachable over the
    **canonical alphabet** — the distinct entry keys the process can
    ever be driven with: one per (task, matched-role-set) combination
    drawn from the process's tasks and the roles mentioned by process
    or hierarchy, plus the error key.  ``exhaustive=False`` interns only
    the initial state, leaving everything to lazy demand.

    If the alphabet closure exceeds *max_states*, the partially built
    automaton is returned (it stays correct — missing transitions are
    derived lazily at replay time).
    """
    from repro.compile.fingerprint import fingerprint_encoded

    started = time.perf_counter()
    tel = telemetry if telemetry is not None else NULL_TELEMETRY
    observables = checker.observables
    if fingerprint is None:
        fingerprint = fingerprint_encoded(
            checker.encoded,
            hierarchy=observables.hierarchy,
            silent_tasks=observables.silent_tasks,
        )
    automaton = PurposeAutomaton(
        fingerprint=fingerprint,
        purpose=checker.purpose,
        roles=checker.encoded.roles,
        hierarchy=observables.hierarchy,
        max_states=max_states,
        telemetry=tel,
    )
    checker.attach_automaton(automaton)
    if exhaustive:
        keyer = automaton.keyer
        universe = set(checker.encoded.roles) | {
            role
            for role in observables.hierarchy.roles()
            if keyer.matched_roles(role)
        }
        alphabet = sorted(
            {
                keyer.task_key(task, role)
                for task in checker.encoded.tasks
                for role in universe
            }
            | {ERR_KEY}
        )
        queue = [automaton.initial()]
        visited = {queue[0]}
        try:
            while queue:
                sid = queue.pop()
                for key in alphabet:
                    transition = automaton._states[sid].transitions.get(key)
                    if transition is None:
                        transition = automaton.extend(sid, key)
                    target = transition.target
                    if target != REJECTED_STATE and target not in visited:
                        visited.add(target)
                        queue.append(target)
        except AutomatonExplosionError:
            pass  # partial automata are fine: replay extends them lazily
    if tel.enabled:
        tel.events.emit(
            AUTOMATON_COMPILED,
            purpose=checker.purpose,
            states=automaton.state_count,
            transitions=automaton.transition_count,
            duration_s=round(time.perf_counter() - started, 6),
        )
    return automaton
