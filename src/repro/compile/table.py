"""Dense transition tables: the automaton flattened into integer arrays.

The purpose automaton (:mod:`repro.compile.automaton`) memoizes replay
as dict-of-dict transitions — one Python dict probe per entry, plus an
:class:`~repro.compile.automaton.EntryKeyer` string build for every
``(task, role)`` pair a case presents.  This module compiles that
structure one step further, into the shape ROADMAP item 2 calls for:

* a **dense ``state × symbol`` cell matrix** of ``int32`` pool indices
  (``array('i')``; zero-copy over ``mmap`` when disk-loaded), where the
  *symbols* are the automaton's interned entry keys and every cell
  resolves to a shared :class:`~repro.compile.automaton.Transition`
  carrying the full precomputed step record (target, outcome, simulated
  events, frontier size) — so a warm replay step is two array/list
  indexing operations and **zero hashing**;
* a **symbol interner** mapping ``(task, role)`` pairs (and the error
  key) straight to symbol ids, so the serve wire path hashes each
  distinct pair exactly once per table lifetime instead of once per
  entry;
* a **may-continue bitset** over states (the accept/sink
  classification, one bit per state) for batch post-processing without
  touching per-state Python objects;
* a **batch stepper** (:meth:`TransitionTable.step_batch`) advancing
  many live cases through the same table per call — numpy-vectorized
  when numpy is importable, plain ``array`` arithmetic otherwise;
* a **versioned binary artifact** (magic ``RPTB`` + canonical-JSON
  header + raw little-endian cell region) persisted next to the JSON
  automaton artifact and loaded via ``mmap`` so warm start is O(1) in
  table size.  The header carries a SHA-256 of the cell region: a
  bit-flip anywhere in the mmap'd table is detected at load time and
  rejected (:class:`~repro.errors.ArtifactError` ``reason="tamper"``),
  never silently replayed.

Cells the automaton had not memoized at compile time hold
:data:`UNKNOWN` — replay falls through to the lazy-DFA tier (and from
there to interpreted replay), so a table is *always* a sound prefix
accelerator: it can only serve transitions the automaton derived, and
anything else takes the slow path to the identical verdict.  The
tier-differential suite (``tests/properties/test_compiled_equivalence``,
``tests/serve/test_differential``) holds all three tiers byte-identical.

State-id alignment is load-bearing: cell values are automaton state
ids.  A table therefore binds only to an automaton whose first
``n_states`` states hash to the same :meth:`states digest
<repro.compile.automaton.PurposeAutomaton.states_digest>` recorded at
compile time — a fingerprint-colliding but structurally different
automaton is rejected (``reason="state_mismatch"``) before a single
cell is trusted.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import sys
import tempfile
from array import array
from pathlib import Path
from typing import Optional, Sequence

from repro.compile.automaton import (
    ERR_KEY,
    REJECTED_STATE,
    EntryKeyer,
    PurposeAutomaton,
    Transition,
)
from repro.errors import ArtifactError
from repro.policy.hierarchy import RoleHierarchy

#: Cell value meaning "the automaton had not memoized this transition
#: when the table was compiled" — replay consults the lazy tier.
UNKNOWN = -1

#: Symbol id meaning "this entry key is not in the interned alphabet".
UNKNOWN_SYMBOL = -1

#: The binary artifact's magic number (first four bytes on disk).
TABLE_MAGIC = b"RPTB"

#: Bump on any change to the binary layout or header schema.
TABLE_FORMAT_NAME = "repro-transition-table"
TABLE_FORMAT_VERSION = 1

_HEADER_FIXED = 12  # magic(4) + version(4) + header_len(4), little-endian

try:  # numpy accelerates step_batch; everything works without it
    import numpy as _np
except Exception:  # pragma: no cover - numpy is present in CI
    _np = None


def _cells_to_le_bytes(cells: array) -> bytes:
    """The cell array as little-endian ``int32`` bytes (the disk order)."""
    if sys.byteorder == "little":
        return cells.tobytes()
    swapped = array("i", cells)
    swapped.byteswap()
    return swapped.tobytes()


class TransitionTable:
    """One purpose automaton's transitions as a dense integer matrix.

    ``cells[sid * n_symbols + sym]`` is an index into :attr:`pool` (a
    tuple of deduplicated :class:`Transition` records), or
    :data:`UNKNOWN`.  Instances are immutable after construction and
    safe to share across shard threads: the hot-path state (``cells``,
    ``pool``, the symbol interner) is only ever read after build, and
    the ``(task, role)`` cache is a dict whose entries are idempotent
    to recompute, so a benign race re-derives the same value.
    """

    def __init__(
        self,
        fingerprint: str,
        purpose: str,
        symbols: Sequence[str],
        pool: Sequence[Transition],
        cells: "array | memoryview",
        n_states: int,
        states_digest: str,
        may_continue_bits: bytes,
        keyer: Optional[EntryKeyer] = None,
        source: str = "memory",
        _mmap: Optional[mmap.mmap] = None,
    ):
        self.fingerprint = fingerprint
        self.purpose = purpose
        self.symbols = tuple(symbols)
        self.pool = tuple(pool)
        self.cells = cells
        self.n_states = n_states
        self.n_symbols = len(self.symbols)
        self.states_digest = states_digest
        self.may_continue_bits = may_continue_bits
        #: ``memory`` when compiled in-process, ``mmap`` when disk-loaded.
        self.source = source
        self._mmap = _mmap
        self._symbol_ids = {key: i for i, key in enumerate(self.symbols)}
        self.err_symbol = self._symbol_ids.get(ERR_KEY, UNKNOWN_SYMBOL)
        self._keyer = keyer
        #: ``(task, role) -> symbol id`` — the hash-once interning cache.
        self._entry_symbols: dict[tuple[str, str], int] = {}
        # Both cell backings (in-memory array, mmap memoryview cast on a
        # little-endian platform) expose native int32 via the buffer
        # protocol, so numpy can wrap them zero-copy for step_batch.
        self._np_cells = None
        if _np is not None and self.n_states * self.n_symbols:
            self._np_cells = _np.frombuffer(cells, dtype=_np.int32)

    # -- symbol interning --------------------------------------------------
    def bind_keyer(self, keyer: EntryKeyer) -> None:
        """Share the automaton's keyer (and its matched-role caches)."""
        self._keyer = keyer

    def symbol_id(self, key: str) -> int:
        """The symbol id of a canonical entry key, or UNKNOWN_SYMBOL."""
        return self._symbol_ids.get(key, UNKNOWN_SYMBOL)

    def entry_symbol(self, task: str, role: str) -> int:
        """Intern one ``(task, role)`` pair; hashes the key at most once.

        Returns :data:`UNKNOWN_SYMBOL` (and caches the miss) when the
        pair's canonical key is outside the compiled alphabet — replay
        then takes the lazy tier, which can extend the automaton.
        """
        pair = (task, role)
        sym = self._entry_symbols.get(pair)
        if sym is None:
            if self._keyer is None:
                raise ArtifactError(
                    f"transition table for {self.purpose!r} has no entry "
                    "keyer bound",
                    reason="malformed",
                )
            key = self._keyer.task_key(task, role)
            sym = self._symbol_ids.get(key, UNKNOWN_SYMBOL)
            self._entry_symbols[pair] = sym
        return sym

    # -- stepping ----------------------------------------------------------
    def step(self, sid: int, sym: int) -> Optional[Transition]:
        """The pooled transition for ``(sid, sym)``, or ``None`` (unknown)."""
        if sym < 0 or sid < 0 or sid >= self.n_states:
            return None
        index = self.cells[sid * self.n_symbols + sym]
        if index < 0:
            return None
        return self.pool[index]

    def step_batch(
        self, sids: Sequence[int], syms: Sequence[int]
    ) -> list[Optional[Transition]]:
        """Advance many cases at once: one pooled transition per pair.

        Pairs whose state or symbol the table does not cover come back
        as ``None`` (the caller routes those cases to the lazy tier).
        Vectorized through numpy when available; the fallback is a
        plain loop over the same arrays.
        """
        n_symbols = self.n_symbols
        pool = self.pool
        if self._np_cells is not None and len(sids) >= 8:
            sid_arr = _np.asarray(sids, dtype=_np.int64)
            sym_arr = _np.asarray(syms, dtype=_np.int64)
            valid = (
                (sym_arr >= 0)
                & (sid_arr >= 0)
                & (sid_arr < self.n_states)
            )
            flat = _np.where(valid, sid_arr * n_symbols + sym_arr, 0)
            indices = _np.where(valid, self._np_cells[flat], UNKNOWN)
            return [
                pool[index] if index >= 0 else None
                for index in indices.tolist()
            ]
        out: list[Optional[Transition]] = []
        cells = self.cells
        for sid, sym in zip(sids, syms):
            if sym < 0 or sid < 0 or sid >= self.n_states:
                out.append(None)
                continue
            index = cells[sid * n_symbols + sym]
            out.append(pool[index] if index >= 0 else None)
        return out

    def state_may_continue(self, sid: int) -> bool:
        """Bit *sid* of the accept/sink bitset."""
        return bool(self.may_continue_bits[sid >> 3] & (1 << (sid & 7)))

    @property
    def coverage(self) -> float:
        """Fraction of cells holding a real transition (not UNKNOWN)."""
        total = self.n_states * self.n_symbols
        if total == 0:
            return 0.0
        known = sum(1 for value in self.cells if value >= 0)
        return known / total

    def close(self) -> None:
        """Release the mmap (if any); the table is unusable afterwards."""
        if self._mmap is not None:
            if isinstance(self.cells, memoryview):
                self.cells.release()
            self._np_cells = None
            self._mmap.close()
            self._mmap = None


def compile_table(
    automaton: PurposeAutomaton, telemetry=None
) -> TransitionTable:
    """Flatten *automaton*'s memoized transitions into a dense table.

    Pure data reshaping — no engine, no COWS terms: every transition the
    automaton has derived so far becomes a cell; everything else is
    :data:`UNKNOWN`.  The alphabet is the sorted set of entry keys any
    state transitions on (eagerly compiled automata cover the canonical
    alphabet; lazy ones cover what replay has seen).

    With a :class:`~repro.obs.Telemetry` bundle, emits
    ``automaton.table_compiled`` and records the table shape under
    ``automaton_table_states``/``_symbols``/``_pool_size`` gauges.
    """
    import time as _time

    started = _time.perf_counter()
    states = automaton._states
    alphabet = sorted({key for s in states for key in s.transitions})
    symbol_ids = {key: i for i, key in enumerate(alphabet)}
    n_states = len(states)
    n_symbols = len(alphabet)
    cells = array("i", [UNKNOWN]) * (n_states * n_symbols)
    pool: list[Transition] = []
    pool_index: dict[Transition, int] = {}
    for state in states:
        base = state.sid * n_symbols
        for key, transition in state.transitions.items():
            index = pool_index.get(transition)
            if index is None:
                index = len(pool)
                pool.append(transition)
                pool_index[transition] = index
            cells[base + symbol_ids[key]] = index
    bits = bytearray((n_states + 7) // 8)
    for state in states:
        if state.may_continue:
            bits[state.sid >> 3] |= 1 << (state.sid & 7)
    if telemetry is not None and telemetry.enabled:
        duration = _time.perf_counter() - started
        labels = {"purpose": automaton.purpose}
        telemetry.registry.gauge(
            "automaton_table_states",
            "States covered by the dense transition table",
        ).set(n_states, **labels)
        telemetry.registry.gauge(
            "automaton_table_symbols",
            "Interned entry keys in the table alphabet",
        ).set(n_symbols, **labels)
        telemetry.registry.gauge(
            "automaton_table_pool_size",
            "Deduplicated transitions shared by table cells",
        ).set(len(pool), **labels)
        telemetry.events.emit(
            "automaton.table_compiled",
            purpose=automaton.purpose,
            states=n_states,
            symbols=n_symbols,
            pool=len(pool),
            duration_s=round(duration, 6),
        )
    return TransitionTable(
        fingerprint=automaton.fingerprint,
        purpose=automaton.purpose,
        symbols=alphabet,
        pool=pool,
        cells=cells,
        n_states=n_states,
        states_digest=automaton.states_digest(n_states),
        may_continue_bits=bytes(bits),
        keyer=automaton.keyer,
        source="memory",
    )


# -- persistence -------------------------------------------------------------


def table_path(directory: Path, purpose: str, fingerprint: str) -> Path:
    """The canonical table location for ``(purpose, fingerprint)``."""
    from repro.compile.artifact import _slug

    return Path(directory) / f"{_slug(purpose)}-{fingerprint[:16]}.table.bin"


def save_table(table: TransitionTable, path: Path) -> Path:
    """Atomically persist *table* at *path*; returns the path.

    Layout: ``RPTB`` magic, ``uint32`` format version, ``uint32`` header
    length, canonical-JSON header (space-padded to 4-byte alignment),
    then the raw cell region as little-endian ``int32``.  The header
    records a SHA-256 of the cell region, so loads detect any flipped
    bit; ``eof`` is the last header field written, so a torn write is
    detectably truncated even if it parses.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    cells_bytes = (
        _cells_to_le_bytes(table.cells)
        if isinstance(table.cells, array)
        else bytes(table.cells)
    )
    keyer = table._keyer
    header = {
        "format": TABLE_FORMAT_NAME,
        "fingerprint": table.fingerprint,
        "purpose": table.purpose,
        "n_states": table.n_states,
        "n_symbols": table.n_symbols,
        "symbols": list(table.symbols),
        "pool": [
            [t.target, t.outcome, list(t.events), t.size] for t in table.pool
        ],
        "states_digest": table.states_digest,
        "may_continue": table.may_continue_bits.hex(),
        "roles": sorted(keyer.roles) if keyer is not None else [],
        "hierarchy": (
            keyer.hierarchy.to_parent_map() if keyer is not None else {}
        ),
        "byteorder": "little",
        "cells_bytes": len(cells_bytes),
        "table_sha256": hashlib.sha256(cells_bytes).hexdigest(),
        "eof": True,
    }
    header_bytes = json.dumps(
        header, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    pad = (-len(header_bytes)) % 4
    header_bytes += b" " * pad
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=str(path.parent)
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(TABLE_MAGIC)
            handle.write(TABLE_FORMAT_VERSION.to_bytes(4, "little"))
            handle.write(len(header_bytes).to_bytes(4, "little"))
            handle.write(header_bytes)
            handle.write(cells_bytes)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def load_table(
    path: Path, expected_fingerprint: Optional[str] = None
) -> TransitionTable:
    """mmap-load and validate one binary table artifact.

    O(1) in table size apart from the tamper checksum (one linear
    SHA-256 pass over the cell region, no parsing, no object building).
    Raises :class:`~repro.errors.ArtifactError` with ``reason`` one of
    ``missing``, ``unreadable``, ``format``, ``version``, ``truncated``,
    ``malformed``, ``fingerprint``, ``tamper``.
    """
    path = Path(path)
    try:
        handle = open(path, "rb")
    except FileNotFoundError:
        raise ArtifactError(f"no table artifact at {path}", reason="missing")
    except OSError as exc:
        raise ArtifactError(
            f"table artifact {path} unreadable: {exc}", reason="unreadable"
        ) from exc
    try:
        try:
            mm = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError) as exc:  # empty or unmappable file
            raise ArtifactError(
                f"table artifact {path} is empty or unmappable: {exc}",
                reason="truncated",
            ) from exc
    finally:
        handle.close()
    try:
        return _decode_table(mm, path, expected_fingerprint)
    except BaseException:
        mm.close()
        raise


def _decode_table(
    mm: mmap.mmap, path: Path, expected_fingerprint: Optional[str]
) -> TransitionTable:
    if len(mm) < _HEADER_FIXED:
        raise ArtifactError(
            f"table artifact {path} is shorter than its fixed header",
            reason="truncated",
        )
    if mm[:4] != TABLE_MAGIC:
        raise ArtifactError(
            f"table artifact {path} has magic {bytes(mm[:4])!r}, "
            f"expected {TABLE_MAGIC!r}",
            reason="format",
        )
    version = int.from_bytes(mm[4:8], "little")
    if version != TABLE_FORMAT_VERSION:
        raise ArtifactError(
            f"table artifact {path} has version {version}, this reader "
            f"supports {TABLE_FORMAT_VERSION}",
            reason="version",
        )
    header_len = int.from_bytes(mm[8:12], "little")
    cells_start = _HEADER_FIXED + header_len
    if cells_start > len(mm):
        raise ArtifactError(
            f"table artifact {path} declares a {header_len}-byte header "
            f"but holds {len(mm) - _HEADER_FIXED}",
            reason="truncated",
        )
    try:
        header = json.loads(mm[_HEADER_FIXED:cells_start].decode("utf-8"))
        if not isinstance(header, dict):
            raise ValueError("header is not a JSON object")
    except (ValueError, UnicodeDecodeError) as exc:
        raise ArtifactError(
            f"table artifact {path} header does not parse: {exc}",
            reason="malformed",
        ) from exc
    if header.get("format") != TABLE_FORMAT_NAME:
        raise ArtifactError(
            f"table artifact {path} has format {header.get('format')!r}",
            reason="format",
        )
    if header.get("eof") is not True:
        raise ArtifactError(
            f"table artifact {path} is missing its end-of-header marker",
            reason="truncated",
        )
    fingerprint = header.get("fingerprint")
    if (
        expected_fingerprint is not None
        and fingerprint != expected_fingerprint
    ):
        raise ArtifactError(
            f"table artifact {path} was compiled for fingerprint "
            f"{str(fingerprint)[:12]}…, expected "
            f"{expected_fingerprint[:12]}…",
            reason="fingerprint",
        )
    try:
        n_states = int(header["n_states"])
        n_symbols = int(header["n_symbols"])
        symbols = [str(s) for s in header["symbols"]]
        pool = tuple(
            Transition(int(t), str(o), tuple(str(e) for e in ev), int(sz))
            for t, o, ev, sz in header["pool"]
        )
        states_digest = str(header["states_digest"])
        may_continue = bytes.fromhex(header["may_continue"])
        cells_bytes = int(header["cells_bytes"])
        table_sha = str(header["table_sha256"])
        roles = [str(r) for r in header["roles"]]
        hierarchy = RoleHierarchy.from_parent_map(header["hierarchy"])
        if header.get("byteorder") != "little":
            raise ValueError(f"byteorder {header.get('byteorder')!r}")
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtifactError(
            f"table artifact {path} header is malformed: {exc!r}",
            reason="malformed",
        ) from exc
    if len(symbols) != n_symbols or cells_bytes != n_states * n_symbols * 4:
        raise ArtifactError(
            f"table artifact {path} header is self-inconsistent",
            reason="malformed",
        )
    if cells_start + cells_bytes != len(mm):
        raise ArtifactError(
            f"table artifact {path} holds {len(mm) - cells_start} cell "
            f"bytes, header declares {cells_bytes}",
            reason="truncated",
        )
    region = memoryview(mm)[cells_start:]
    if hashlib.sha256(region).hexdigest() != table_sha:
        region.release()
        raise ArtifactError(
            f"table artifact {path} cell region does not match its "
            "checksum (bit rot or tampering)",
            reason="tamper",
        )
    out_of_range = n_states if n_states > 0 else 0
    for t in pool:
        if t.target >= out_of_range and t.target != REJECTED_STATE:
            region.release()
            raise ArtifactError(
                f"table artifact {path} pool targets state {t.target} "
                f"of {n_states}",
                reason="malformed",
            )
    if sys.byteorder == "little" and array("i").itemsize == 4:
        cells: "array | memoryview" = region.cast("i")
        mm_ref: Optional[mmap.mmap] = mm
    else:  # pragma: no cover - big-endian fallback copies
        copied = array("i")
        copied.frombytes(bytes(region))
        copied.byteswap()
        cells = copied
        region.release()
        mm.close()
        mm_ref = None
    return TransitionTable(
        fingerprint=str(fingerprint),
        purpose=str(header.get("purpose", "")),
        symbols=symbols,
        pool=pool,
        cells=cells,
        n_states=n_states,
        states_digest=states_digest,
        may_continue_bits=may_continue,
        keyer=EntryKeyer(roles, hierarchy),
        source="mmap",
        _mmap=mm_ref,
    )
