"""Purpose-automaton compiler: shared, persistent replay acceleration.

Algorithm 1's frontier-set replay is a lazy subset construction over
observable labels, so it compiles: this package determinizes a
well-founded process's observable LTS into a **purpose automaton** —
integer states for deduplicated configuration frontiers, transitions
keyed by canonical entry keys, each carrying the precomputed step
record.  A warm replay is one dict lookup per log entry, the automaton
is shared across cases, workers, and (via on-disk artifacts) runs.

Layers:

* :mod:`repro.compile.fingerprint` — content hashes keying and
  invalidating every cached artifact;
* :mod:`repro.compile.automaton` — the lazy subset-construction DFA
  (with ``max_states`` guard) plus the eager :func:`compile_automaton`;
* :mod:`repro.compile.replay` — :class:`CompiledSession` /
  :class:`CompiledChecker`, the drop-in replay surface with interpreted
  fallback;
* :mod:`repro.compile.table` — the automaton flattened into dense
  ``state × symbol`` integer arrays with a hash-once symbol interner,
  a batch stepper, and an mmap-backed binary artifact — the fastest
  replay tier, falling through to the lazy DFA on any uncovered cell;
* :mod:`repro.compile.artifact` — versioned, atomic JSON persistence
  and the :class:`AutomatonCache` directory abstraction;
* :mod:`repro.compile.checkpoint` — revision-gated incremental saves
  during long batch audits.

Design, artifact format, and invalidation rules: ``docs/compilation.md``.
"""

from __future__ import annotations

from typing import Optional

from repro.compile.artifact import (
    FORMAT_NAME,
    FORMAT_VERSION,
    AutomatonCache,
    artifact_path,
    load_artifact,
    save_artifact,
)
from repro.compile.automaton import (
    ERR_KEY,
    REJECTED_STATE,
    EntryKeyer,
    PurposeAutomaton,
    Transition,
    compile_automaton,
)
from repro.compile.checkpoint import CheckpointWriter
from repro.compile.fingerprint import (
    FINGERPRINT_VERSION,
    fingerprint_encoded,
    fingerprint_process,
    frontier_key,
    term_digest,
)
from repro.compile.replay import (
    CompiledChecker,
    CompiledResult,
    CompiledSession,
)
from repro.compile.table import (
    TABLE_FORMAT_NAME,
    TABLE_FORMAT_VERSION,
    UNKNOWN,
    UNKNOWN_SYMBOL,
    TransitionTable,
    compile_table,
    load_table,
    save_table,
    table_path,
)
from repro.errors import (
    ArtifactError,
    AutomatonExplosionError,
    AutomatonUnavailableError,
    CompileError,
)


def warm_checker(
    checker,
    cache: Optional[AutomatonCache] = None,
    max_states: int = 50_000,
    telemetry=None,
    table: bool = True,
) -> PurposeAutomaton:
    """Attach a (cached, else fresh) automaton to *checker*; returns it.

    This is the auditor/monitor entry point: compute the checker's
    fingerprint, try the artifact cache, fall back to a fresh lazy
    automaton on miss or invalid artifact, and bind it so
    ``checker.session()`` serves compiled replays from now on.  With
    ``table=True`` a cached dense table artifact (the mmap-backed
    fastest tier, see :mod:`repro.compile.table`) is attached on top
    when present and intact; a corrupt or misaligned table is reported
    and skipped — replay simply runs on the lazy tier.  Never raises on
    a bad artifact (it is reported and recompiled).
    """
    observables = checker.observables
    fingerprint = fingerprint_encoded(
        checker.encoded,
        hierarchy=observables.hierarchy,
        silent_tasks=observables.silent_tasks,
    )
    if cache is not None:
        automaton = cache.load(checker.purpose, fingerprint)
        if automaton is not None:
            try:
                checker.attach_automaton(automaton)
            except CompileError as error:
                path = cache.path_for(checker.purpose, fingerprint)
                reported = (
                    error
                    if isinstance(error, ArtifactError)
                    else ArtifactError(str(error), reason="state_mismatch")
                )
                cache.report_invalid(path, reported)
            else:
                if table:
                    cached_table = cache.load_table(
                        checker.purpose, fingerprint
                    )
                    if cached_table is not None:
                        try:
                            automaton.attach_table(cached_table)
                        except ArtifactError as error:
                            cache.report_invalid(
                                cache.table_path_for(
                                    checker.purpose, fingerprint
                                ),
                                error,
                            )
                return automaton
    automaton = PurposeAutomaton(
        fingerprint=fingerprint,
        purpose=checker.purpose,
        roles=checker.encoded.roles,
        hierarchy=observables.hierarchy,
        max_states=max_states,
        telemetry=telemetry,
    )
    checker.attach_automaton(automaton)
    return automaton


__all__ = [
    "ERR_KEY",
    "FINGERPRINT_VERSION",
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "REJECTED_STATE",
    "ArtifactError",
    "AutomatonCache",
    "AutomatonExplosionError",
    "AutomatonUnavailableError",
    "CheckpointWriter",
    "CompileError",
    "CompiledChecker",
    "CompiledResult",
    "CompiledSession",
    "EntryKeyer",
    "PurposeAutomaton",
    "TABLE_FORMAT_NAME",
    "TABLE_FORMAT_VERSION",
    "Transition",
    "TransitionTable",
    "UNKNOWN",
    "UNKNOWN_SYMBOL",
    "artifact_path",
    "compile_automaton",
    "compile_table",
    "load_table",
    "save_table",
    "table_path",
    "fingerprint_encoded",
    "fingerprint_process",
    "frontier_key",
    "load_artifact",
    "save_artifact",
    "term_digest",
    "warm_checker",
]
