"""Graphviz (DOT) export of BPMN processes and explored LTS fragments.

Purely textual: the functions return DOT source strings that render the
paper's figures (process diagrams like Fig. 1/2, transition systems like
Fig. 6) with any Graphviz installation.  No external dependency is
imported.
"""

from __future__ import annotations

from repro.bpmn.model import ElementType, Process
from repro.cows.lts import ExplorationResult
from repro.cows.pretty import format_label

_SHAPES = {
    ElementType.START_EVENT: ("circle", "palegreen"),
    ElementType.MESSAGE_START_EVENT: ("doublecircle", "palegreen"),
    ElementType.END_EVENT: ("circle", "lightcoral"),
    ElementType.MESSAGE_END_EVENT: ("doublecircle", "lightcoral"),
    ElementType.TASK: ("box", "lightyellow"),
    ElementType.EXCLUSIVE_GATEWAY: ("diamond", "white"),
    ElementType.PARALLEL_GATEWAY: ("diamond", "lightblue"),
    ElementType.INCLUSIVE_GATEWAY: ("diamond", "lightgrey"),
    ElementType.MESSAGE_THROW_EVENT: ("circle", "white"),
    ElementType.MESSAGE_CATCH_EVENT: ("circle", "white"),
}


def _quote(text: str) -> str:
    return '"' + text.replace('"', '\\"') + '"'


def process_to_dot(process: Process) -> str:
    """A DOT digraph of *process*, with one cluster per pool."""
    lines = [f"digraph {_quote(process.process_id)} {{", "  rankdir=LR;"]
    for pool_index, pool in enumerate(process.pools):
        lines.append(f"  subgraph cluster_{pool_index} {{")
        lines.append(f"    label={_quote(pool)};")
        for element in process.elements.values():
            if element.pool != pool:
                continue
            shape, fill = _SHAPES[element.element_type]
            label = element.label
            lines.append(
                f"    {_quote(element.element_id)} [shape={shape}, "
                f"style=filled, fillcolor={fill}, label={_quote(label)}];"
            )
        lines.append("  }")
    for flow in process.flows:
        lines.append(f"  {_quote(flow.source)} -> {_quote(flow.target)};")
    for flow in process.error_flows:
        lines.append(
            f"  {_quote(flow.source)} -> {_quote(flow.target)} "
            '[style=dashed, color=red, label="Err"];'
        )
    for thrower, catcher in process.message_links():
        lines.append(
            f"  {_quote(thrower.element_id)} -> {_quote(catcher.element_id)} "
            f"[style=dotted, label={_quote(thrower.message or '')}];"
        )
    lines.append("}")
    return "\n".join(lines)


def lts_to_dot(result: ExplorationResult, max_label_length: int = 40) -> str:
    """A DOT digraph of an explored LTS fragment (Fig. 6 style)."""
    index = {state: f"St{i + 1}" for i, state in enumerate(sorted(
        result.states, key=str
    ))}
    # Keep the initial state first for readability.
    index[result.initial] = "St0"
    lines = ["digraph LTS {", "  rankdir=TB;", '  node [shape=box, fontsize=10];']
    for state, state_id in index.items():
        label = str(state)
        if len(label) > max_label_length:
            label = label[: max_label_length - 3] + "..."
        lines.append(f"  {_quote(state_id)} [label={_quote(label)}];")
    for source, label, target in result.edges:
        lines.append(
            f"  {_quote(index[source])} -> {_quote(index[target])} "
            f"[label={_quote(format_label(label))}];"
        )
    lines.append("}")
    return "\n".join(lines)
