"""The BPMN -> COWS encoding (Section 3.3 and Appendix A of the paper).

Every BPMN element becomes one COWS service; the organizational process
is the parallel composition of these services.  The encoding follows the
appendix patterns:

* a start event invokes the trigger endpoint of its successor
  (``[[S1]] = GP.T01!<>``, Fig. 7);
* a task receives its trigger and then passes the token on
  (``[[T01]] = GP.T01?<>.[[Act]]``), wrapped in a :class:`TaskMarker` so
  the active-task set of a configuration can be read off the state;
* a task with an attached error event makes an internal ``sys`` choice
  between the normal continuation and the error path; taking the error
  path produces the observable ``sys.Err`` label (Fig. 9);
* an exclusive gateway resolves its choice through a private ``sys``
  endpoint and a ``kill``/protect pair, so exactly one branch survives
  (Fig. 8);
* a parallel gateway splits by emitting all branch tokens at once and
  joins by receiving one token per incoming flow (on flow-specific
  endpoints, so tokens from different branches cannot be confused);
* an inclusive gateway chooses a non-empty subset of branches; the
  paired inclusive join is told how many branches were activated through
  a private configuration message and waits for exactly that many tokens
  (count-based OR-join; see DESIGN.md for the concurrency caveat);
* message events communicate across pools by value-carrying invokes, as
  in Fig. 10 (``P2.S3!<msg1>``);
* every service except plain start events is replicated (``*``) so that
  cycles can re-enter elements, exactly as the appendix prescribes.

The result bundles the COWS term with the observable vocabulary
(roles = pools, tasks) that :mod:`repro.core.observables` needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from sys import intern

from repro.bpmn.model import Element, ElementType, Process
from repro.bpmn.validate import validate
from repro.cows.names import Endpoint, Name, var
from repro.cows.terms import (
    Invoke,
    Kill,
    Nil,
    Protect,
    Replicate,
    Request,
    TaskMarker,
    Term,
    choice,
    parallel,
    scope,
)
from repro.cows.congruence import normalize
from repro.cows.names import killer, name
from repro.errors import EncodingError

#: The operation name of the observable error label ``sys.Err``.
ERROR_OPERATION = "Err"

#: The private partner name used for internal computations (gateway
#: decisions, error choices), as in the paper's encodings.
SYS = "sys"


@dataclass(frozen=True)
class EncodedProcess:
    """The COWS encoding of a BPMN process plus its observable vocabulary."""

    process: Process
    term: Term
    roles: frozenset[str]
    tasks: frozenset[str]

    @property
    def purpose(self) -> str:
        return self.process.purpose


def encode(process: Process, validated: bool = False) -> EncodedProcess:
    """Encode *process* into COWS.

    Runs validation first unless the caller vouches with
    ``validated=True``.  Raises :class:`EncodingError` for constructs the
    encoder cannot express.
    """
    if not validated:
        validate(process)
    services = [_encode_element(process, e) for e in process.elements.values()]
    term = normalize(parallel(*services))
    # Intern the observable vocabulary at encode time: role/task names
    # become the keys of every replay-side cache (entry keyers, the
    # dense table's symbol interner), and interning here pairs with the
    # wire-side interning in repro.serve.protocol so those dict probes
    # hit the pointer-equality fast path.
    return EncodedProcess(
        process=process,
        term=term,
        roles=frozenset(intern(pool) for pool in process.pools),
        tasks=frozenset(intern(task) for task in process.task_ids),
    )


# ---------------------------------------------------------------------------
# endpoints


def trigger_endpoint(process: Process, target_id: str, source_id: str) -> Endpoint:
    """The endpoint *source* invokes to hand the token to *target*.

    Parallel joins use flow-specific endpoints (one per incoming flow) so
    that the join synchronizes one token from **each** branch; every
    other element is triggered on a single generic endpoint.
    """
    target = process.element(target_id)
    if (
        target.element_type is ElementType.PARALLEL_GATEWAY
        and len(process.incoming(target_id)) > 1
    ):
        return Endpoint(Name(target.pool), Name(f"{target_id}_from_{source_id}"))
    return Endpoint(Name(target.pool), Name(target_id))


def _generic_trigger(element: Element) -> Endpoint:
    return Endpoint(Name(element.pool), Name(element.element_id))


def _message_endpoint(catcher: Element) -> Endpoint:
    """Where the thrower of a message delivers it."""
    if catcher.element_type is ElementType.MESSAGE_START_EVENT:
        return _generic_trigger(catcher)
    return Endpoint(Name(catcher.pool), Name(f"{catcher.element_id}_msg"))


def _single_successor(process: Process, element: Element) -> str:
    outgoing = process.outgoing(element.element_id)
    if len(outgoing) != 1:
        raise EncodingError(
            f"element {element.element_id!r} must have exactly one outgoing "
            f"flow, found {len(outgoing)}"
        )
    return outgoing[0]


def _pass_token(process: Process, element: Element) -> Invoke:
    successor = _single_successor(process, element)
    return Invoke(trigger_endpoint(process, successor, element.element_id))


def _catcher_of(process: Process, message: str) -> Element:
    for element in process.elements.values():
        if (
            element.element_type
            in (ElementType.MESSAGE_START_EVENT, ElementType.MESSAGE_CATCH_EVENT)
            and element.message == message
        ):
            return element
    raise EncodingError(f"message {message!r} has no catching event")


# ---------------------------------------------------------------------------
# element services


def _encode_element(process: Process, element: Element) -> Term:
    etype = element.element_type
    if etype is ElementType.START_EVENT:
        return _pass_token(process, element)
    if etype is ElementType.MESSAGE_START_EVENT:
        return _encode_message_start(process, element)
    if etype is ElementType.END_EVENT:
        return Replicate(Request(_generic_trigger(element), (), Nil()))
    if etype is ElementType.MESSAGE_END_EVENT:
        return _encode_message_end(process, element)
    if etype is ElementType.MESSAGE_THROW_EVENT:
        return _encode_message_throw(process, element)
    if etype is ElementType.MESSAGE_CATCH_EVENT:
        return _encode_message_catch(process, element)
    if etype is ElementType.TASK:
        return _encode_task(process, element)
    if etype is ElementType.EXCLUSIVE_GATEWAY:
        return _encode_exclusive(process, element)
    if etype is ElementType.PARALLEL_GATEWAY:
        return _encode_parallel(process, element)
    if etype is ElementType.INCLUSIVE_GATEWAY:
        return _encode_inclusive(process, element)
    raise EncodingError(f"unsupported element type {etype!r}")


def _encode_message_start(process: Process, element: Element) -> Term:
    z = var("z")
    body = Request(
        _generic_trigger(element), (z,), _pass_token(process, element)
    )
    return Replicate(scope(z, body))


def _encode_message_end(process: Process, element: Element) -> Term:
    catcher = _catcher_of(process, element.message or "")
    send = Invoke(_message_endpoint(catcher), (Name(element.message or ""),))
    return Replicate(Request(_generic_trigger(element), (), send))


def _encode_message_throw(process: Process, element: Element) -> Term:
    catcher = _catcher_of(process, element.message or "")
    send = Invoke(_message_endpoint(catcher), (Name(element.message or ""),))
    body = parallel(send, _pass_token(process, element))
    return Replicate(Request(_generic_trigger(element), (), body))


def _encode_message_catch(process: Process, element: Element) -> Term:
    z = var("z")
    wait = scope(
        z,
        Request(
            _message_endpoint(element), (z,), _pass_token(process, element)
        ),
    )
    return Replicate(Request(_generic_trigger(element), (), wait))


def _encode_task(process: Process, element: Element) -> Term:
    role = Name(element.pool)
    task = Name(element.element_id)
    error_target = process.error_target(element.element_id)
    if error_target is None:
        body: Term = _pass_token(process, element)
    else:
        body = _error_choice(process, element, error_target)
    marked = TaskMarker(role, task, body)
    return Replicate(Request(_generic_trigger(element), (), marked))


def _error_choice(process: Process, element: Element, error_target: str) -> Term:
    """The Fig. 9 pattern: internal choice between normal flow and sys.Err."""
    k = killer("k")
    sys = name(SYS)
    ok_op = Endpoint(sys, Name("ok"))
    err_op = Endpoint(sys, Name(ERROR_OPERATION))
    on_error = Invoke(
        trigger_endpoint(process, error_target, element.element_id)
    )
    on_success = _pass_token(process, element)
    body = parallel(
        Invoke(err_op),
        Invoke(ok_op),
        Request(err_op, (), parallel(Kill(k), Protect(on_error))),
        Request(ok_op, (), parallel(Kill(k), Protect(on_success))),
    )
    return scope([k, sys], body)


def _encode_exclusive(process: Process, element: Element) -> Term:
    targets = process.outgoing(element.element_id)
    if len(set(targets)) != len(targets):
        raise EncodingError(
            f"gateway {element.element_id!r} has duplicate flows to one target"
        )
    if len(targets) == 1:
        body: Term = Invoke(
            trigger_endpoint(process, targets[0], element.element_id)
        )
        return Replicate(Request(_generic_trigger(element), (), body))
    k = killer("k")
    sys = name(SYS)
    pieces: list[Term] = []
    for target in targets:
        branch_endpoint = Endpoint(sys, Name(f"br_{target}"))
        go = Invoke(trigger_endpoint(process, target, element.element_id))
        pieces.append(Invoke(branch_endpoint))
        pieces.append(
            Request(branch_endpoint, (), parallel(Kill(k), Protect(go)))
        )
    body = scope([k, sys], parallel(*pieces))
    return Replicate(Request(_generic_trigger(element), (), body))


def _encode_parallel(process: Process, element: Element) -> Term:
    eid = element.element_id
    incoming = process.incoming(eid)
    targets = process.outgoing(eid)
    if len(incoming) > 1:  # a join: one token per incoming flow, then go
        if len(targets) != 1:
            raise EncodingError(f"parallel join {eid!r} must have one outgoing flow")
        body: Term = Invoke(trigger_endpoint(process, targets[0], eid))
        for source in sorted(incoming, reverse=True):
            flow_endpoint = Endpoint(Name(element.pool), Name(f"{eid}_from_{source}"))
            body = Request(flow_endpoint, (), body)
        return Replicate(body)
    # a split (or pass-through): emit every branch token at once
    tokens = parallel(
        *(Invoke(trigger_endpoint(process, t, eid)) for t in targets)
    )
    return Replicate(Request(_generic_trigger(element), (), tokens))


def _encode_inclusive(process: Process, element: Element) -> Term:
    eid = element.element_id
    incoming = process.incoming(eid)
    targets = process.outgoing(eid)
    if len(incoming) > 1:
        return _encode_inclusive_join(process, element)
    if len(targets) == 1:
        body: Term = Invoke(trigger_endpoint(process, targets[0], eid))
        return Replicate(Request(_generic_trigger(element), (), body))
    return _encode_inclusive_split(process, element, targets)


def _inclusive_subsets(targets: list[str]) -> list[tuple[str, ...]]:
    subsets: list[tuple[str, ...]] = []
    for size in range(1, len(targets) + 1):
        subsets.extend(combinations(sorted(targets), size))
    return subsets


def _encode_inclusive_split(
    process: Process, element: Element, targets: list[str]
) -> Term:
    eid = element.element_id
    join = process.paired_join(eid)
    k = killer("k")
    sys = name(SYS)
    pieces: list[Term] = []
    for subset in _inclusive_subsets(targets):
        tag = "_".join(subset)
        subset_endpoint = Endpoint(sys, Name(f"sub_{tag}"))
        emissions: list[Term] = [
            Invoke(trigger_endpoint(process, t, eid)) for t in subset
        ]
        if join is not None:
            config_endpoint = Endpoint(
                Name(join.pool), Name(f"{join.element_id}_cfg_{len(subset)}")
            )
            emissions.append(Invoke(config_endpoint))
        pieces.append(Invoke(subset_endpoint))
        pieces.append(
            Request(
                subset_endpoint,
                (),
                parallel(Kill(k), Protect(parallel(*emissions))),
            )
        )
    body = scope([k, sys], parallel(*pieces))
    return Replicate(Request(_generic_trigger(element), (), body))


def _encode_inclusive_join(process: Process, element: Element) -> Term:
    eid = element.element_id
    targets = process.outgoing(eid)
    if len(targets) != 1:
        raise EncodingError(f"inclusive join {eid!r} must have one outgoing flow")
    split_id = element.join_of
    if split_id is None:
        raise EncodingError(f"inclusive join {eid!r} lacks its join_of pairing")
    branch_count = len(process.outgoing(split_id))
    if branch_count < 1:
        raise EncodingError(
            f"inclusive split {split_id!r} paired by {eid!r} has no branches"
        )
    go = Invoke(trigger_endpoint(process, targets[0], eid))
    token_endpoint = _generic_trigger(element)
    branches = []
    for count in range(1, branch_count + 1):
        config_endpoint = Endpoint(Name(element.pool), Name(f"{eid}_cfg_{count}"))
        body: Term = go
        for _ in range(count):
            body = Request(token_endpoint, (), body)
        branches.append(Request(config_endpoint, (), body))
    return Replicate(choice(*branches))
