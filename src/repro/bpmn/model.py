"""The BPMN process model used throughout the framework.

The paper models organizational processes in BPMN (Section 3.3).  This
module provides the core subset the paper uses:

* **pools**, each corresponding to a *role* (Section 3.1: "we assume that
  every BPMN pool corresponds to a role in R");
* **tasks** — the units of work whose execution is IT-observable;
* **events** — plain and message start events, plain and message end
  events, and intermediate message throw/catch events;
* **gateways** — exclusive (XOR), parallel (AND) and inclusive (OR);
* **sequence flows** within a pool, **error flows** from a task to its
  error handler (the task+error-event pattern of Fig. 9), and **message
  flows** across pools, linked by message name (the msg1/msg2 style of
  Fig. 10).

The model is deliberately plain data: behaviour lives in
:mod:`repro.bpmn.validate` (structural and well-foundedness checks) and
:mod:`repro.bpmn.encode` (the COWS encoding).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator, Optional


class ElementType(Enum):
    """The kinds of BPMN flow elements supported by the framework."""

    START_EVENT = "startEvent"
    MESSAGE_START_EVENT = "messageStartEvent"
    END_EVENT = "endEvent"
    MESSAGE_END_EVENT = "messageEndEvent"
    TASK = "task"
    EXCLUSIVE_GATEWAY = "exclusiveGateway"
    PARALLEL_GATEWAY = "parallelGateway"
    INCLUSIVE_GATEWAY = "inclusiveGateway"
    MESSAGE_THROW_EVENT = "intermediateMessageThrow"
    MESSAGE_CATCH_EVENT = "intermediateMessageCatch"

    @property
    def is_start(self) -> bool:
        return self in (ElementType.START_EVENT, ElementType.MESSAGE_START_EVENT)

    @property
    def is_end(self) -> bool:
        return self in (ElementType.END_EVENT, ElementType.MESSAGE_END_EVENT)

    @property
    def is_gateway(self) -> bool:
        return self in (
            ElementType.EXCLUSIVE_GATEWAY,
            ElementType.PARALLEL_GATEWAY,
            ElementType.INCLUSIVE_GATEWAY,
        )


@dataclass(frozen=True, slots=True)
class Element:
    """A BPMN flow element.

    ``element_id`` is unique within the process and doubles as the COWS
    operation name of the element's trigger endpoint.  ``message`` names
    the message a message event sends or awaits; message events with the
    same message name are connected by an implicit message flow.
    ``join_of`` on an inclusive gateway names the inclusive *split* it
    merges — the pairing the encoder needs to synchronize exactly the
    activated branches.
    """

    element_id: str
    element_type: ElementType
    pool: str
    name: str = ""
    message: Optional[str] = None
    join_of: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.element_id:
            raise ValueError("element_id must be non-empty")
        needs_message = self.element_type in (
            ElementType.MESSAGE_START_EVENT,
            ElementType.MESSAGE_END_EVENT,
            ElementType.MESSAGE_THROW_EVENT,
            ElementType.MESSAGE_CATCH_EVENT,
        )
        if needs_message and not self.message:
            raise ValueError(
                f"{self.element_type.value} {self.element_id!r} needs a message name"
            )
        if self.join_of and self.element_type is not ElementType.INCLUSIVE_GATEWAY:
            raise ValueError("join_of is only meaningful on inclusive gateways")

    @property
    def label(self) -> str:
        return self.name or self.element_id


@dataclass(frozen=True, slots=True)
class SequenceFlow:
    """A sequence flow: the token path from *source* to *target*."""

    source: str
    target: str

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise ValueError(f"self-loop flow on {self.source!r}")


@dataclass(frozen=True, slots=True)
class ErrorFlow:
    """The error path of a task: on failure, the token moves to *target*.

    This models the task-with-attached-error-event pattern of Fig. 9; the
    failure itself surfaces as the observable ``sys.Err`` label.
    """

    source: str
    target: str


@dataclass
class Process:
    """A BPMN process: pools (roles), elements, and flows.

    Instances are built with :class:`repro.bpmn.builder.ProcessBuilder`
    and validated with :func:`repro.bpmn.validate.validate`.  A process
    also records the *purpose* it implements — the link between data
    protection policies and organizational processes that Section 3.1 of
    the paper establishes (purpose == organizational process).
    """

    process_id: str
    purpose: str = ""
    elements: dict[str, Element] = field(default_factory=dict)
    flows: list[SequenceFlow] = field(default_factory=list)
    error_flows: list[ErrorFlow] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.purpose:
            self.purpose = self.process_id

    # -- structure queries ------------------------------------------------
    def element(self, element_id: str) -> Element:
        try:
            return self.elements[element_id]
        except KeyError:
            raise KeyError(
                f"process {self.process_id!r} has no element {element_id!r}"
            ) from None

    @property
    def pools(self) -> list[str]:
        """The pool names (roles) of the process, in first-seen order."""
        seen: dict[str, None] = {}
        for element in self.elements.values():
            seen.setdefault(element.pool, None)
        return list(seen)

    def elements_of_type(self, *types: ElementType) -> list[Element]:
        return [e for e in self.elements.values() if e.element_type in types]

    @property
    def tasks(self) -> list[Element]:
        return self.elements_of_type(ElementType.TASK)

    @property
    def task_ids(self) -> frozenset[str]:
        return frozenset(t.element_id for t in self.tasks)

    @property
    def start_events(self) -> list[Element]:
        return [e for e in self.elements.values() if e.element_type.is_start]

    @property
    def end_events(self) -> list[Element]:
        return [e for e in self.elements.values() if e.element_type.is_end]

    def outgoing(self, element_id: str) -> list[str]:
        return [f.target for f in self.flows if f.source == element_id]

    def incoming(self, element_id: str) -> list[str]:
        return [f.source for f in self.flows if f.target == element_id]

    def error_target(self, element_id: str) -> Optional[str]:
        for flow in self.error_flows:
            if flow.source == element_id:
                return flow.target
        return None

    def message_links(self) -> Iterator[tuple[Element, Element]]:
        """Yield (thrower, catcher) pairs connected by a message name."""
        throwers = self.elements_of_type(
            ElementType.MESSAGE_END_EVENT, ElementType.MESSAGE_THROW_EVENT
        )
        catchers = self.elements_of_type(
            ElementType.MESSAGE_START_EVENT, ElementType.MESSAGE_CATCH_EVENT
        )
        for thrower in throwers:
            for catcher in catchers:
                if thrower.message == catcher.message:
                    yield thrower, catcher

    def paired_join(self, split_id: str) -> Optional[Element]:
        """The inclusive join declared as merging the split *split_id*."""
        for element in self.elements.values():
            if (
                element.element_type is ElementType.INCLUSIVE_GATEWAY
                and element.join_of == split_id
            ):
                return element
        return None

    def role_of_task(self, task_id: str) -> str:
        """The role (pool) expected to perform *task_id*."""
        element = self.element(task_id)
        if element.element_type is not ElementType.TASK:
            raise ValueError(f"{task_id!r} is not a task")
        return element.pool

    def __contains__(self, element_id: str) -> bool:
        return element_id in self.elements

    def __len__(self) -> int:
        return len(self.elements)
