"""A fluent builder for BPMN processes.

Example — a tiny diagnose-or-refer fragment::

    builder = ProcessBuilder("treatment", purpose="treatment")
    gp = builder.pool("GP")
    gp.start_event("S1")
    gp.task("T01", name="Examine patient")
    gp.exclusive_gateway("G1")
    gp.task("T02", name="Make diagnosis")
    gp.end_event("E0")
    builder.flow("S1", "T01").flow("T01", "G1").flow("G1", "T02")
    builder.flow("T02", "E0")
    process = builder.build()

``build()`` runs full validation (including the well-foundedness check of
Section 5) unless ``validate=False`` is passed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bpmn.model import (
    Element,
    ElementType,
    ErrorFlow,
    Process,
    SequenceFlow,
)
from repro.errors import ProcessValidationError


@dataclass
class PoolBuilder:
    """Adds elements to one pool of a :class:`ProcessBuilder`."""

    _builder: "ProcessBuilder"
    role: str

    def _add(self, element: Element) -> "PoolBuilder":
        self._builder._add_element(element)
        return self

    def start_event(self, element_id: str, name: str = "") -> "PoolBuilder":
        return self._add(
            Element(element_id, ElementType.START_EVENT, self.role, name)
        )

    def message_start_event(
        self, element_id: str, message: str, name: str = ""
    ) -> "PoolBuilder":
        return self._add(
            Element(
                element_id,
                ElementType.MESSAGE_START_EVENT,
                self.role,
                name,
                message=message,
            )
        )

    def end_event(self, element_id: str, name: str = "") -> "PoolBuilder":
        return self._add(Element(element_id, ElementType.END_EVENT, self.role, name))

    def message_end_event(
        self, element_id: str, message: str, name: str = ""
    ) -> "PoolBuilder":
        return self._add(
            Element(
                element_id,
                ElementType.MESSAGE_END_EVENT,
                self.role,
                name,
                message=message,
            )
        )

    def task(self, element_id: str, name: str = "") -> "PoolBuilder":
        return self._add(Element(element_id, ElementType.TASK, self.role, name))

    def exclusive_gateway(self, element_id: str, name: str = "") -> "PoolBuilder":
        return self._add(
            Element(element_id, ElementType.EXCLUSIVE_GATEWAY, self.role, name)
        )

    def parallel_gateway(self, element_id: str, name: str = "") -> "PoolBuilder":
        return self._add(
            Element(element_id, ElementType.PARALLEL_GATEWAY, self.role, name)
        )

    def inclusive_gateway(
        self, element_id: str, name: str = "", join_of: str | None = None
    ) -> "PoolBuilder":
        return self._add(
            Element(
                element_id,
                ElementType.INCLUSIVE_GATEWAY,
                self.role,
                name,
                join_of=join_of,
            )
        )

    def message_throw_event(
        self, element_id: str, message: str, name: str = ""
    ) -> "PoolBuilder":
        return self._add(
            Element(
                element_id,
                ElementType.MESSAGE_THROW_EVENT,
                self.role,
                name,
                message=message,
            )
        )

    def message_catch_event(
        self, element_id: str, message: str, name: str = ""
    ) -> "PoolBuilder":
        return self._add(
            Element(
                element_id,
                ElementType.MESSAGE_CATCH_EVENT,
                self.role,
                name,
                message=message,
            )
        )


class ProcessBuilder:
    """Accumulates pools, elements and flows, then builds a validated process."""

    def __init__(self, process_id: str, purpose: str = ""):
        self._process = Process(process_id=process_id, purpose=purpose)
        self._pools: dict[str, PoolBuilder] = {}

    def pool(self, role: str) -> PoolBuilder:
        """Get (or create) the builder for the pool of the given role."""
        if role not in self._pools:
            self._pools[role] = PoolBuilder(self, role)
        return self._pools[role]

    def _add_element(self, element: Element) -> None:
        if element.element_id in self._process.elements:
            raise ProcessValidationError(
                f"duplicate element id {element.element_id!r}"
            )
        self._process.elements[element.element_id] = element

    def flow(self, source: str, target: str) -> "ProcessBuilder":
        """Add a sequence flow from *source* to *target*."""
        self._process.flows.append(SequenceFlow(source, target))
        return self

    def chain(self, *element_ids: str) -> "ProcessBuilder":
        """Add sequence flows linking the given elements in order."""
        for source, target in zip(element_ids, element_ids[1:]):
            self.flow(source, target)
        return self

    def error_flow(self, task_id: str, target: str) -> "ProcessBuilder":
        """Attach an error boundary to *task_id*, routing failures to *target*."""
        self._process.error_flows.append(ErrorFlow(task_id, target))
        return self

    def build(self, validate: bool = True) -> Process:
        """Finalize the process, optionally running full validation."""
        if validate:
            from repro.bpmn.validate import validate as run_validation

            run_validation(self._process)
        return self._process
