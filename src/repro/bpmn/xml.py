"""BPMN 2.0 XML interchange (a pragmatic subset).

Reads and writes the OMG BPMN 2.0 XML format for the element subset this
library supports, so processes drawn in standard modelers (Camunda,
Signavio, bpmn.io, ...) can be audited directly:

* ``<collaboration>`` participants become pools; without a
  collaboration, the single ``<process>`` becomes one pool named after
  the process;
* ``task`` (and its ``userTask``/``serviceTask``/``manualTask``/
  ``sendTask``/``receiveTask`` flavours), ``exclusiveGateway``,
  ``parallelGateway``, ``inclusiveGateway``;
* ``startEvent``/``endEvent``/``intermediateThrowEvent``/
  ``intermediateCatchEvent``, message-flavoured via a nested
  ``messageEventDefinition`` (message names resolve through
  ``<message>`` declarations or, failing that, through the
  collaboration's ``<messageFlow>`` links);
* ``boundaryEvent`` with an ``errorEventDefinition`` attached to a task
  becomes the library's error flow (the Fig. 9 pattern);
* inclusive-join pairing: BPMN XML has no join/split pairing attribute,
  so the exporter writes ``repro:joinOf`` in a vendor-extension
  namespace and the importer falls back to *inference* — when the
  process has exactly one inclusive split, every inclusive join pairs
  with it; ambiguous diagrams must carry the attribute.

Everything outside the subset (data objects, subprocesses, timers,
lanes within a pool, conditions on flows) is rejected with a clear
:class:`~repro.errors.ProcessValidationError` rather than silently
dropped — an auditor must know the model it checks is the model that
was drawn.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Optional

from repro.bpmn.model import (
    Element,
    ElementType,
    ErrorFlow,
    Process,
    SequenceFlow,
)
from repro.bpmn.validate import validate
from repro.errors import ProcessValidationError

BPMN_NS = "http://www.omg.org/spec/BPMN/20100524/MODEL"
REPRO_NS = "https://example.org/repro/bpmn-extensions"

_TASK_TAGS = {
    "task",
    "userTask",
    "serviceTask",
    "manualTask",
    "sendTask",
    "receiveTask",
    "scriptTask",
    "businessRuleTask",
}

_IGNORED_TAGS = {
    # Purely informational content that does not change semantics.
    "documentation",
    "extensionElements",
    "laneSet",
    "incoming",
    "outgoing",
    "text",
    "textAnnotation",
    "association",
    "category",
    "BPMNDiagram",
}


def _local(tag: str) -> str:
    return tag.rsplit("}", 1)[-1]


def _q(tag: str) -> str:
    return f"{{{BPMN_NS}}}{tag}"


# ---------------------------------------------------------------------------
# import


def process_from_bpmn_xml(document: str, validated: bool = True) -> Process:
    """Parse a BPMN 2.0 XML document into a :class:`Process`."""
    try:
        root = ET.fromstring(document)
    except ET.ParseError as error:
        raise ProcessValidationError(f"invalid BPMN XML: {error}") from error
    if _local(root.tag) != "definitions":
        raise ProcessValidationError(
            f"expected <definitions> root, found <{_local(root.tag)}>"
        )

    messages = {
        node.get("id"): node.get("name") or node.get("id")
        for node in root
        if _local(node.tag) == "message"
    }
    collaboration = next(
        (n for n in root if _local(n.tag) == "collaboration"), None
    )
    xml_processes = [n for n in root if _local(n.tag) == "process"]
    if not xml_processes:
        raise ProcessValidationError("document contains no <process>")

    pool_of_process: dict[str, str] = {}
    collaboration_id = "collaboration"
    message_flows: list[tuple[str, str]] = []
    if collaboration is not None:
        collaboration_id = collaboration.get("id") or collaboration_id
        for node in collaboration:
            local = _local(node.tag)
            if local == "participant":
                ref = node.get("processRef")
                if ref:
                    pool_of_process[ref] = (
                        node.get("name") or node.get("id") or ref
                    )
            elif local == "messageFlow":
                source, target = node.get("sourceRef"), node.get("targetRef")
                if source and target:
                    message_flows.append((source, target))

    process = Process(process_id=collaboration_id, purpose="")
    builder = _Importer(process, messages, message_flows)
    for xml_process in xml_processes:
        ref = xml_process.get("id") or ""
        pool = pool_of_process.get(
            ref, xml_process.get("name") or ref or "Process"
        )
        builder.import_pool(xml_process, pool)
    builder.resolve_messages()

    if len(xml_processes) == 1 and collaboration is None:
        only = xml_processes[0]
        process.process_id = only.get("id") or "process"
        process.purpose = only.get("name") or process.process_id
    if not process.purpose:
        process.purpose = process.process_id
    if validated:
        validate(process)
    return process


class _Importer:
    def __init__(
        self,
        process: Process,
        messages: dict[str, str],
        message_flows: list[tuple[str, str]],
    ):
        self.process = process
        self.messages = messages
        self.message_flows = message_flows
        #: element id -> message name, filled during the pass; elements
        #: whose message is still unknown get one inferred from flows.
        self.pending_message: list[str] = []
        self.boundary_sources: dict[str, str] = {}  # boundary id -> task id
        self.flows_from_boundary: list[tuple[str, str]] = []

    def _add(self, element: Element) -> None:
        if element.element_id in self.process.elements:
            raise ProcessValidationError(
                f"duplicate element id {element.element_id!r}"
            )
        self.process.elements[element.element_id] = element

    def import_pool(self, xml_process: ET.Element, pool: str) -> None:
        inclusive_splits: list[str] = []
        inclusive_joins: list[str] = []
        for node in xml_process:
            local = _local(node.tag)
            eid = node.get("id") or ""
            name = node.get("name") or ""
            if local in _IGNORED_TAGS:
                continue
            if local == "sequenceFlow":
                source, target = node.get("sourceRef"), node.get("targetRef")
                if not source or not target:
                    raise ProcessValidationError(
                        f"sequenceFlow {eid!r} lacks sourceRef/targetRef"
                    )
                self.flows_from_boundary.append((source, target))
                continue
            if not eid:
                raise ProcessValidationError(
                    f"<{local}> element without an id"
                )
            if local in _TASK_TAGS:
                self._add(Element(eid, ElementType.TASK, pool, name))
            elif local == "exclusiveGateway":
                self._add(Element(eid, ElementType.EXCLUSIVE_GATEWAY, pool, name))
            elif local == "parallelGateway":
                self._add(Element(eid, ElementType.PARALLEL_GATEWAY, pool, name))
            elif local == "inclusiveGateway":
                join_of = node.get(f"{{{REPRO_NS}}}joinOf")
                self._add(
                    Element(
                        eid, ElementType.INCLUSIVE_GATEWAY, pool, name,
                        join_of=join_of,
                    )
                )
            elif local in ("startEvent", "endEvent", "intermediateThrowEvent",
                           "intermediateCatchEvent"):
                self._import_event(node, local, eid, pool, name)
            elif local == "boundaryEvent":
                self._import_boundary(node, eid)
            else:
                raise ProcessValidationError(
                    f"unsupported BPMN element <{local}> ({eid!r})"
                )
        del inclusive_splits, inclusive_joins

    def _message_of(self, node: ET.Element) -> Optional[str]:
        for child in node:
            if _local(child.tag) == "messageEventDefinition":
                ref = child.get("messageRef")
                if ref:
                    return self.messages.get(ref, ref)
                return ""  # message-flavoured, name to be inferred
        return None

    def _import_event(
        self, node: ET.Element, local: str, eid: str, pool: str, name: str
    ) -> None:
        message = self._message_of(node)
        plain_types = {
            "startEvent": ElementType.START_EVENT,
            "endEvent": ElementType.END_EVENT,
        }
        message_types = {
            "startEvent": ElementType.MESSAGE_START_EVENT,
            "endEvent": ElementType.MESSAGE_END_EVENT,
            "intermediateThrowEvent": ElementType.MESSAGE_THROW_EVENT,
            "intermediateCatchEvent": ElementType.MESSAGE_CATCH_EVENT,
        }
        if message is None:
            if local not in plain_types:
                raise ProcessValidationError(
                    f"intermediate event {eid!r} needs a "
                    "messageEventDefinition (only message intermediates "
                    "are supported)"
                )
            self._add(Element(eid, plain_types[local], pool, name))
            return
        placeholder = message or f"__pending_{eid}"
        self._add(
            Element(eid, message_types[local], pool, name, message=placeholder)
        )
        if not message:
            self.pending_message.append(eid)

    def _import_boundary(self, node: ET.Element, eid: str) -> None:
        attached = node.get("attachedToRef")
        if not attached:
            raise ProcessValidationError(
                f"boundaryEvent {eid!r} lacks attachedToRef"
            )
        if not any(
            _local(child.tag) == "errorEventDefinition" for child in node
        ):
            raise ProcessValidationError(
                f"boundaryEvent {eid!r}: only error boundary events are "
                "supported"
            )
        self.boundary_sources[eid] = attached

    def resolve_messages(self) -> None:
        # Sequence flows: a flow leaving an error boundary event becomes
        # an error flow of the attached task.
        for source, target in self.flows_from_boundary:
            if source in self.boundary_sources:
                self.process.error_flows.append(
                    ErrorFlow(self.boundary_sources[source], target)
                )
            else:
                self.process.flows.append(SequenceFlow(source, target))

        # Messages without an explicit <message> reference pair up
        # through the collaboration's messageFlows.
        for flow_index, (source, target) in enumerate(self.message_flows):
            inferred = f"message_{flow_index}"
            for eid in (source, target):
                element = self.process.elements.get(eid)
                if element is None or element.message is None:
                    continue
                if element.message.startswith("__pending_"):
                    self.process.elements[eid] = Element(
                        element.element_id,
                        element.element_type,
                        element.pool,
                        element.name,
                        message=inferred,
                        join_of=element.join_of,
                    )
        unresolved = [
            e.element_id
            for e in self.process.elements.values()
            if e.message is not None and e.message.startswith("__pending_")
        ]
        if unresolved:
            raise ProcessValidationError(
                "message events without resolvable message names: "
                f"{unresolved}"
            )

        # Inclusive-join inference when repro:joinOf is absent.
        self._infer_inclusive_pairing()

    def _infer_inclusive_pairing(self) -> None:
        gateways = self.process.elements_of_type(ElementType.INCLUSIVE_GATEWAY)
        joins = [
            g
            for g in gateways
            if len(self.process.incoming(g.element_id)) > 1 and not g.join_of
        ]
        if not joins:
            return
        splits = [
            g
            for g in gateways
            if len(self.process.outgoing(g.element_id)) > 1
        ]
        if len(splits) != 1 or len(joins) != 1:
            raise ProcessValidationError(
                "cannot infer inclusive split/join pairing; annotate the "
                f"join with repro:joinOf (ns {REPRO_NS})"
            )
        join = joins[0]
        self.process.elements[join.element_id] = Element(
            join.element_id,
            join.element_type,
            join.pool,
            join.name,
            join_of=splits[0].element_id,
        )


# ---------------------------------------------------------------------------
# export


def process_to_bpmn_xml(process: Process) -> str:
    """Serialize *process* as a BPMN 2.0 collaboration document."""
    ET.register_namespace("bpmn", BPMN_NS)
    ET.register_namespace("repro", REPRO_NS)
    definitions = ET.Element(
        _q("definitions"),
        {
            "id": f"defs_{process.process_id}",
            "targetNamespace": REPRO_NS,
        },
    )
    collaboration = ET.SubElement(
        definitions, _q("collaboration"), {"id": process.process_id}
    )

    # message declarations
    message_ids: dict[str, str] = {}
    for element in process.elements.values():
        if element.message and element.message not in message_ids:
            message_ids[element.message] = f"msg_{element.message}"
    for message, message_id in message_ids.items():
        ET.SubElement(
            definitions, _q("message"), {"id": message_id, "name": message}
        )

    for pool_index, pool in enumerate(process.pools):
        process_id = f"proc_{pool_index}"
        ET.SubElement(
            collaboration,
            _q("participant"),
            {"id": f"participant_{pool_index}", "name": pool,
             "processRef": process_id},
        )
        xml_process = ET.SubElement(
            definitions,
            _q("process"),
            {"id": process_id, "name": pool, "isExecutable": "false"},
        )
        _export_pool(process, pool, xml_process, message_ids)

    for index, (thrower, catcher) in enumerate(process.message_links()):
        ET.SubElement(
            collaboration,
            _q("messageFlow"),
            {
                "id": f"mf_{index}",
                "sourceRef": thrower.element_id,
                "targetRef": catcher.element_id,
            },
        )
    ET.indent(definitions)
    return ET.tostring(definitions, encoding="unicode", xml_declaration=True)


_EXPORT_TAGS = {
    ElementType.TASK: "task",
    ElementType.EXCLUSIVE_GATEWAY: "exclusiveGateway",
    ElementType.PARALLEL_GATEWAY: "parallelGateway",
    ElementType.INCLUSIVE_GATEWAY: "inclusiveGateway",
    ElementType.START_EVENT: "startEvent",
    ElementType.MESSAGE_START_EVENT: "startEvent",
    ElementType.END_EVENT: "endEvent",
    ElementType.MESSAGE_END_EVENT: "endEvent",
    ElementType.MESSAGE_THROW_EVENT: "intermediateThrowEvent",
    ElementType.MESSAGE_CATCH_EVENT: "intermediateCatchEvent",
}


def _export_pool(
    process: Process,
    pool: str,
    xml_process: ET.Element,
    message_ids: dict[str, str],
) -> None:
    pool_elements = [
        e for e in process.elements.values() if e.pool == pool
    ]
    element_ids = {e.element_id for e in pool_elements}
    for element in pool_elements:
        attributes = {"id": element.element_id}
        if element.name:
            attributes["name"] = element.name
        if element.join_of:
            attributes[f"{{{REPRO_NS}}}joinOf"] = element.join_of
        node = ET.SubElement(
            xml_process, _q(_EXPORT_TAGS[element.element_type]), attributes
        )
        if element.message:
            ET.SubElement(
                node,
                _q("messageEventDefinition"),
                {"messageRef": message_ids[element.message]},
            )
    flow_index = 0
    for flow in process.flows:
        if flow.source in element_ids:
            ET.SubElement(
                xml_process,
                _q("sequenceFlow"),
                {
                    "id": f"sf_{pool}_{flow_index}",
                    "sourceRef": flow.source,
                    "targetRef": flow.target,
                },
            )
            flow_index += 1
    for error_index, error_flow in enumerate(process.error_flows):
        if error_flow.source not in element_ids:
            continue
        boundary_id = f"boundary_{error_flow.source}_{error_index}"
        boundary = ET.SubElement(
            xml_process,
            _q("boundaryEvent"),
            {"id": boundary_id, "attachedToRef": error_flow.source},
        )
        ET.SubElement(boundary, _q("errorEventDefinition"))
        ET.SubElement(
            xml_process,
            _q("sequenceFlow"),
            {
                "id": f"sf_err_{pool}_{error_index}",
                "sourceRef": boundary_id,
                "targetRef": error_flow.target,
            },
        )
