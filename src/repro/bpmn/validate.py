"""Structural validation and the well-foundedness check of Section 5.

:func:`validate` enforces the structural discipline the COWS encoder
relies on; :func:`check_well_founded` implements the diagram-level test
the paper gives for the decidable fragment of Algorithm 1: *a BPMN
process is well-founded if every cycle contains at least one observable
activity* — a task, or an error-handling edge (whose traversal emits the
observable ``sys.Err``).  Processes failing the check would make WeakNext
diverge (a cycle of gateways can spin forever without producing an
observable label), so they are rejected up front, exactly as the paper
suggests ("non well-founded processes can be detected directly on the
diagram describing the process").
"""

from __future__ import annotations

import networkx as nx

from repro.bpmn.model import Element, ElementType, Process
from repro.errors import NotWellFoundedError, ProcessValidationError

#: Inclusive splits fan out to every non-empty subset of their branches;
#: beyond this many branches the encoding would explode combinatorially.
MAX_INCLUSIVE_BRANCHES = 5


def validate(process: Process, well_founded: bool = True) -> None:
    """Validate *process*, raising :class:`ProcessValidationError` on failure.

    With ``well_founded=True`` (the default) the well-foundedness check of
    Section 5 runs as well, raising :class:`NotWellFoundedError` — a
    subclass — when a cycle without observable activity exists.
    """
    problems = structural_problems(process)
    if problems:
        summary = "; ".join(problems[:5])
        raise ProcessValidationError(
            f"process {process.process_id!r} is invalid: {summary}", problems
        )
    if well_founded:
        check_well_founded(process)


def structural_problems(process: Process) -> list[str]:
    """All structural problems of *process* (empty list == structurally valid)."""
    problems: list[str] = []
    if not process.elements:
        return ["process has no elements"]

    for flow in process.flows:
        for endpoint_id in (flow.source, flow.target):
            if endpoint_id not in process.elements:
                problems.append(f"flow references unknown element {endpoint_id!r}")
    for error_flow in process.error_flows:
        if error_flow.source not in process.elements:
            problems.append(
                f"error flow references unknown task {error_flow.source!r}"
            )
        elif (
            process.elements[error_flow.source].element_type is not ElementType.TASK
        ):
            problems.append(
                f"error flow source {error_flow.source!r} is not a task"
            )
        if error_flow.target not in process.elements:
            problems.append(
                f"error flow references unknown target {error_flow.target!r}"
            )
    if problems:
        return problems  # flow endpoints must exist before shape checks

    if not process.start_events:
        problems.append("process has no start event")

    for element in process.elements.values():
        problems.extend(_shape_problems(process, element))

    problems.extend(_message_problems(process))
    problems.extend(_inclusive_problems(process))
    problems.extend(_reachability_problems(process))
    return problems


def _shape_problems(process: Process, element: Element) -> list[str]:
    incoming = process.incoming(element.element_id) + [
        error_flow.source
        for error_flow in process.error_flows
        if error_flow.target == element.element_id
    ]
    outgoing = process.outgoing(element.element_id)
    eid = element.element_id
    etype = element.element_type
    problems: list[str] = []

    if etype.is_start:
        if incoming:
            problems.append(f"start event {eid!r} has incoming flows")
        if len(outgoing) != 1:
            problems.append(f"start event {eid!r} must have exactly one outgoing flow")
    elif etype.is_end:
        if outgoing:
            problems.append(f"end event {eid!r} has outgoing flows")
        if not incoming:
            problems.append(f"end event {eid!r} has no incoming flow")
    elif etype is ElementType.TASK:
        if not incoming:
            problems.append(f"task {eid!r} is not reachable by any flow")
        if len(outgoing) != 1:
            problems.append(
                f"task {eid!r} must have exactly one outgoing flow "
                "(use gateways to split)"
            )
    elif etype in (ElementType.MESSAGE_THROW_EVENT, ElementType.MESSAGE_CATCH_EVENT):
        if not incoming:
            problems.append(f"intermediate event {eid!r} has no incoming flow")
        if len(outgoing) != 1:
            problems.append(
                f"intermediate event {eid!r} must have exactly one outgoing flow"
            )
    elif etype is ElementType.EXCLUSIVE_GATEWAY:
        if not incoming or not outgoing:
            problems.append(f"gateway {eid!r} must have incoming and outgoing flows")
    elif etype in (ElementType.PARALLEL_GATEWAY, ElementType.INCLUSIVE_GATEWAY):
        if not incoming or not outgoing:
            problems.append(f"gateway {eid!r} must have incoming and outgoing flows")
        elif len(incoming) > 1 and len(outgoing) > 1:
            problems.append(
                f"gateway {eid!r} mixes split and join; model them separately"
            )
    return problems


def _message_problems(process: Process) -> list[str]:
    problems: list[str] = []
    thrown = {
        e.message: e
        for e in process.elements_of_type(
            ElementType.MESSAGE_END_EVENT, ElementType.MESSAGE_THROW_EVENT
        )
    }
    caught = {
        e.message: e
        for e in process.elements_of_type(
            ElementType.MESSAGE_START_EVENT, ElementType.MESSAGE_CATCH_EVENT
        )
    }
    for message, thrower in thrown.items():
        if message not in caught:
            problems.append(
                f"message {message!r} thrown by {thrower.element_id!r} "
                "has no catching event"
            )
    for message, catcher in caught.items():
        if message not in thrown:
            problems.append(
                f"message {message!r} awaited by {catcher.element_id!r} "
                "is never thrown"
            )
    messages = [
        e.message
        for e in process.elements.values()
        if e.message is not None
        and e.element_type
        in (ElementType.MESSAGE_END_EVENT, ElementType.MESSAGE_THROW_EVENT)
    ]
    if len(messages) != len(set(messages)):
        problems.append("a message name is thrown by more than one event")
    return problems


def _inclusive_problems(process: Process) -> list[str]:
    problems: list[str] = []
    for gateway in process.elements_of_type(ElementType.INCLUSIVE_GATEWAY):
        gid = gateway.element_id
        outgoing = process.outgoing(gid)
        incoming = process.incoming(gid)
        if len(outgoing) > 1:  # a split
            if len(outgoing) > MAX_INCLUSIVE_BRANCHES:
                problems.append(
                    f"inclusive split {gid!r} has {len(outgoing)} branches; "
                    f"at most {MAX_INCLUSIVE_BRANCHES} are supported"
                )
        if len(incoming) > 1:  # a join
            if not gateway.join_of:
                problems.append(
                    f"inclusive join {gid!r} must declare join_of=<split id>"
                )
            elif gateway.join_of not in process.elements:
                problems.append(
                    f"inclusive join {gid!r} pairs unknown split "
                    f"{gateway.join_of!r}"
                )
            elif (
                process.elements[gateway.join_of].element_type
                is not ElementType.INCLUSIVE_GATEWAY
            ):
                problems.append(
                    f"inclusive join {gid!r} pairs {gateway.join_of!r}, "
                    "which is not an inclusive gateway"
                )
    return problems


def _reachability_problems(process: Process) -> list[str]:
    graph = flow_graph(process)
    reachable: set[str] = set()
    for start in process.start_events:
        reachable.add(start.element_id)
        reachable.update(nx.descendants(graph, start.element_id))
    unreachable = sorted(set(process.elements) - reachable)
    return [f"element {eid!r} is unreachable from any start event" for eid in unreachable]


def flow_graph(process: Process) -> "nx.DiGraph":
    """The directed graph of token movement: sequence, error and message links."""
    graph = nx.DiGraph()
    graph.add_nodes_from(process.elements)
    for flow in process.flows:
        graph.add_edge(flow.source, flow.target, kind="sequence")
    for error_flow in process.error_flows:
        graph.add_edge(error_flow.source, error_flow.target, kind="error")
    for thrower, catcher in process.message_links():
        graph.add_edge(thrower.element_id, catcher.element_id, kind="message")
    return graph


def check_well_founded(process: Process) -> None:
    """Raise :class:`NotWellFoundedError` if some cycle has no observable activity.

    Observable activity on a cycle means: a task node, or an error edge
    (error handling emits ``sys.Err``, which is in the observable set L of
    Section 3.5).
    """
    offending = non_well_founded_cycles(process)
    if offending:
        example = " -> ".join(offending[0])
        raise NotWellFoundedError(
            f"process {process.process_id!r} is not well-founded: the cycle "
            f"[{example}] contains no task or error handler, so WeakNext "
            "would not terminate on it",
            [f"cycle without observable activity: {cycle}" for cycle in offending],
        )


def non_well_founded_cycles(process: Process) -> list[list[str]]:
    """The elementary cycles of *process* that contain no observable activity.

    A qualifying cycle visits no task node and traverses no error edge,
    so it lives entirely inside the *silent subgraph* — the flow graph
    with task nodes and error edges removed.  Enumerating cycles there
    (and only inside its non-trivial strongly connected components)
    is behavior-identical to scanning every simple cycle of the full
    graph, but skips the combinatorial cycle families that run through
    tasks — the common case in loop-heavy processes, where full
    enumeration is exponential.
    """
    graph = flow_graph(process)
    silent = nx.DiGraph()
    silent.add_nodes_from(
        eid
        for eid in graph.nodes
        if process.elements[eid].element_type is not ElementType.TASK
    )
    for source, target, data in graph.edges(data=True):
        if data.get("kind") == "error":
            continue
        if silent.has_node(source) and silent.has_node(target):
            silent.add_edge(source, target)
    offending: list[list[str]] = []
    for component in nx.strongly_connected_components(silent):
        if len(component) == 1:
            node = next(iter(component))
            if not silent.has_edge(node, node):
                continue
        for cycle in nx.simple_cycles(silent.subgraph(component)):
            offending.append(list(cycle))
    return offending


def is_well_founded(process: Process) -> bool:
    """Whether *process* is well-founded (no silent cycles)."""
    return not non_well_founded_cycles(process)
