"""Structural metrics of BPMN processes.

Quantifies the shape factors that drive Algorithm 1's cost (discussed
qualitatively in Section 7 of the paper): size, branching, cycles, and
the *observable density* that well-foundedness is about — how much of
the process's control flow is visible in audit trails.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice

import networkx as nx

from repro.bpmn.model import ElementType, Process
from repro.bpmn.validate import flow_graph

#: Cycle enumeration is exponential in the worst case; past this many
#: cycles :func:`measure` stops counting and reports ``>= MAX_CYCLES``.
MAX_CYCLES = 1000


@dataclass(frozen=True)
class ProcessMetrics:
    """A structural profile of one process."""

    process_id: str
    elements: int
    tasks: int
    pools: int
    gateways: int
    exclusive_gateways: int
    parallel_gateways: int
    inclusive_gateways: int
    sequence_flows: int
    message_links: int
    error_flows: int
    cycles: int
    max_split_fanout: int
    observable_density: float  # tasks / elements
    depth: int  # longest acyclic path from a start event
    cycles_capped: bool = False  # enumeration stopped at the cap

    def as_rows(self) -> list[tuple[str, object]]:
        """(name, value) rows for table rendering."""
        return [
            ("elements", self.elements),
            ("tasks", self.tasks),
            ("pools", self.pools),
            ("gateways", self.gateways),
            ("  exclusive", self.exclusive_gateways),
            ("  parallel", self.parallel_gateways),
            ("  inclusive", self.inclusive_gateways),
            ("sequence flows", self.sequence_flows),
            ("message links", self.message_links),
            ("error flows", self.error_flows),
            ("cycles", f">= {self.cycles}" if self.cycles_capped else self.cycles),
            ("max split fan-out", self.max_split_fanout),
            ("observable density", round(self.observable_density, 3)),
            ("depth", self.depth),
        ]


def measure(process: Process, max_cycles: int = MAX_CYCLES) -> ProcessMetrics:
    """Compute the structural metrics of *process*.

    Cycle counting stops after *max_cycles* (the count is then a lower
    bound, flagged by ``cycles_capped``) so metrics never hang on
    cycle-dense graphs.
    """
    graph = flow_graph(process)
    gateways = process.elements_of_type(
        ElementType.EXCLUSIVE_GATEWAY,
        ElementType.PARALLEL_GATEWAY,
        ElementType.INCLUSIVE_GATEWAY,
    )
    cycle_count = sum(1 for _ in islice(nx.simple_cycles(graph), max_cycles))
    cycles_capped = cycle_count >= max_cycles
    fanout = max(
        (len(process.outgoing(e.element_id)) for e in process.elements.values()),
        default=0,
    )
    return ProcessMetrics(
        process_id=process.process_id,
        elements=len(process),
        tasks=len(process.task_ids),
        pools=len(process.pools),
        gateways=len(gateways),
        exclusive_gateways=len(
            process.elements_of_type(ElementType.EXCLUSIVE_GATEWAY)
        ),
        parallel_gateways=len(
            process.elements_of_type(ElementType.PARALLEL_GATEWAY)
        ),
        inclusive_gateways=len(
            process.elements_of_type(ElementType.INCLUSIVE_GATEWAY)
        ),
        sequence_flows=len(process.flows),
        message_links=sum(1 for _ in process.message_links()),
        error_flows=len(process.error_flows),
        cycles=cycle_count,
        cycles_capped=cycles_capped,
        max_split_fanout=fanout,
        observable_density=(
            len(process.task_ids) / len(process) if len(process) else 0.0
        ),
        depth=_depth(process, graph),
    )


def _depth(process: Process, graph: "nx.DiGraph") -> int:
    """Longest acyclic path (in edges) from any start event."""
    condensed = nx.condensation(graph)
    member_of = condensed.graph["mapping"]
    weights: dict[int, int] = {
        node: len(condensed.nodes[node]["members"])
        for node in condensed.nodes
    }
    best = 0
    starts = {member_of[s.element_id] for s in process.start_events}
    memo: dict[int, int] = {}

    def longest_from(node: int) -> int:
        if node in memo:
            return memo[node]
        result = weights[node]
        for successor in condensed.successors(node):
            result = max(result, weights[node] + longest_from(successor))
        memo[node] = result
        return result

    for start in starts:
        best = max(best, longest_from(start))
    return max(best - 1, 0)  # edges, not nodes
