"""JSON (de)serialization of BPMN processes.

The format is a stable, human-editable dictionary layout::

    {
      "process_id": "treatment",
      "purpose": "treatment",
      "elements": [
        {"id": "S1", "type": "startEvent", "pool": "GP", "name": ""},
        {"id": "T01", "type": "task", "pool": "GP", "name": "Examine"},
        ...
      ],
      "flows": [["S1", "T01"], ...],
      "error_flows": [["T02", "T01"], ...]
    }

Deserialization validates by default, so a JSON file cannot smuggle in a
structurally broken or non-well-founded process.
"""

from __future__ import annotations

import json
from typing import Any

from repro.bpmn.model import Element, ElementType, ErrorFlow, Process, SequenceFlow
from repro.bpmn.validate import validate
from repro.errors import ProcessValidationError


def process_to_dict(process: Process) -> dict[str, Any]:
    """A JSON-compatible dictionary representation of *process*."""
    elements = []
    for element in process.elements.values():
        item: dict[str, Any] = {
            "id": element.element_id,
            "type": element.element_type.value,
            "pool": element.pool,
        }
        if element.name:
            item["name"] = element.name
        if element.message:
            item["message"] = element.message
        if element.join_of:
            item["join_of"] = element.join_of
        elements.append(item)
    return {
        "process_id": process.process_id,
        "purpose": process.purpose,
        "elements": elements,
        "flows": [[f.source, f.target] for f in process.flows],
        "error_flows": [[f.source, f.target] for f in process.error_flows],
    }


def process_from_dict(data: dict[str, Any], validated: bool = True) -> Process:
    """Rebuild a process from :func:`process_to_dict` output."""
    try:
        process = Process(
            process_id=data["process_id"],
            purpose=data.get("purpose", ""),
        )
        for item in data["elements"]:
            element = Element(
                element_id=item["id"],
                element_type=ElementType(item["type"]),
                pool=item["pool"],
                name=item.get("name", ""),
                message=item.get("message"),
                join_of=item.get("join_of"),
            )
            process.elements[element.element_id] = element
        for source, target in data.get("flows", []):
            process.flows.append(SequenceFlow(source, target))
        for source, target in data.get("error_flows", []):
            process.error_flows.append(ErrorFlow(source, target))
    except (KeyError, ValueError, TypeError) as error:
        raise ProcessValidationError(
            f"malformed process document: {error}"
        ) from error
    if validated:
        validate(process)
    return process


def dumps(process: Process, indent: int | None = 2) -> str:
    """Serialize *process* to a JSON string."""
    return json.dumps(process_to_dict(process), indent=indent)


def loads(text: str, validated: bool = True) -> Process:
    """Parse a process from a JSON string."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise ProcessValidationError(f"invalid JSON: {error}") from error
    return process_from_dict(data, validated=validated)
