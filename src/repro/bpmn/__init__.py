"""BPMN substrate: process model, builder, validation, COWS encoding.

The paper uses BPMN as the organizational-process notation (Section 3.3)
and encodes it into COWS for analysis.  This package provides the subset
of BPMN the paper relies on and the encoding of Appendix A.
"""

from repro.bpmn.builder import PoolBuilder, ProcessBuilder
from repro.bpmn.dot import lts_to_dot, process_to_dot
from repro.bpmn.encode import (
    ERROR_OPERATION,
    SYS,
    EncodedProcess,
    encode,
    trigger_endpoint,
)
from repro.bpmn.metrics import ProcessMetrics, measure
from repro.bpmn.model import (
    Element,
    ElementType,
    ErrorFlow,
    Process,
    SequenceFlow,
)
from repro.bpmn.serialize import (
    dumps,
    loads,
    process_from_dict,
    process_to_dict,
)
from repro.bpmn.xml import process_from_bpmn_xml, process_to_bpmn_xml
from repro.bpmn.validate import (
    check_well_founded,
    flow_graph,
    is_well_founded,
    non_well_founded_cycles,
    structural_problems,
    validate,
)

__all__ = [
    "ERROR_OPERATION",
    "SYS",
    "Element",
    "ElementType",
    "EncodedProcess",
    "ErrorFlow",
    "PoolBuilder",
    "Process",
    "ProcessBuilder",
    "ProcessMetrics",
    "measure",
    "SequenceFlow",
    "check_well_founded",
    "dumps",
    "encode",
    "flow_graph",
    "is_well_founded",
    "loads",
    "lts_to_dot",
    "non_well_founded_cycles",
    "process_from_bpmn_xml",
    "process_from_dict",
    "process_to_bpmn_xml",
    "process_to_dict",
    "process_to_dot",
    "structural_problems",
    "trigger_endpoint",
    "validate",
]
