"""A tamper-evident, SQLite-backed audit-log store.

Section 3.4 of the paper assumes logs "are collected from all
applications in a single database" and protected against integrity
breaches, citing secure-logging schemes [18, 19].  This store provides
both halves:

* a single SQLite table holding Definition-4 entries, queryable by case,
  user, object subtree and time range;
* a SHA-256 **hash chain**: every row stores
  ``hash = sha256(prev_hash || canonical-serialization)``, so any
  after-the-fact modification, deletion or reordering is detected by
  :meth:`AuditStore.verify_integrity`.

The store is a context manager and safe to use on ``":memory:"`` for
tests or on a file path for persistence.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
from contextlib import contextmanager
from datetime import datetime, timezone
from typing import TYPE_CHECKING, Iterable, Optional

from repro.audit.model import AuditTrail, LogEntry, Status
from repro.errors import AuditError, IntegrityError, MalformedEntryError
from repro.policy.model import ObjectRef

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.resilience import Quarantine

_SCHEMA = """
CREATE TABLE IF NOT EXISTS audit_log (
    seq        INTEGER PRIMARY KEY AUTOINCREMENT,
    user       TEXT NOT NULL,
    role       TEXT NOT NULL,
    action     TEXT NOT NULL,
    obj        TEXT,
    task       TEXT NOT NULL,
    case_id    TEXT NOT NULL,
    ts         TEXT NOT NULL,
    status     TEXT NOT NULL,
    prev_hash  TEXT NOT NULL,
    hash       TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_audit_case ON audit_log (case_id);
CREATE INDEX IF NOT EXISTS idx_audit_user ON audit_log (user);
CREATE INDEX IF NOT EXISTS idx_audit_ts   ON audit_log (ts);
CREATE TABLE IF NOT EXISTS audit_anchor (
    id          INTEGER PRIMARY KEY CHECK (id = 1),
    anchor_hash TEXT NOT NULL,
    purged_upto TEXT,
    purge_count INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS control_log (
    seq       INTEGER PRIMARY KEY AUTOINCREMENT,
    action    TEXT NOT NULL,
    case_id   TEXT,
    actor     TEXT NOT NULL,
    reason    TEXT NOT NULL DEFAULT '',
    ts        TEXT NOT NULL,
    prev_hash TEXT NOT NULL,
    hash      TEXT NOT NULL
);
"""

#: The chain anchor for the first entry.
GENESIS = "0" * 64


class AuditStore:
    """Append-only audit log with hash-chain integrity."""

    def __init__(self, path: str = ":memory:"):
        self._connection = sqlite3.connect(path)
        self._connection.executescript(_SCHEMA)
        self._connection.commit()
        self._writing = False

    @contextmanager
    def _write_transaction(self):
        """One write transaction; **rejects reentrant writes**.

        ``sqlite3`` connection context managers do not nest: an inner
        ``with connection:`` block *commits* the outer transaction on
        exit.  A batch iterable with a side effect that writes to the
        same store mid-``append_many`` would therefore (a) commit a
        partial prefix of the batch behind the caller's back and (b)
        fork the hash chain — the precomputed ``prev_hash`` sequence no
        longer matches the rows actually on disk, so two rows end up
        chaining off the same predecessor.  Refusing the inner write
        keeps the outer batch atomic and the chain linear.
        """
        if self._writing:
            raise AuditError(
                "reentrant write: the store is already inside a write "
                "transaction (did a batch iterable append to the same "
                "store?)"
            )
        self._writing = True
        try:
            with self._connection:
                yield
        finally:
            self._writing = False

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "AuditStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- writing ---------------------------------------------------------
    def append(self, entry: LogEntry) -> int:
        """Append one entry; returns its sequence number."""
        with self._write_transaction():  # one transaction per append
            prev_hash = self._last_hash()
            cursor, _ = self._insert_entry(entry, prev_hash, position=0)
        return int(cursor.lastrowid or 0)

    def append_many(self, entries: Iterable[LogEntry]) -> int:
        """Append entries in order, atomically; returns how many were written.

        The whole batch is **one transaction**: if any entry fails
        validation (raising :class:`repro.errors.MalformedEntryError`
        with its batch offset), nothing is written — no partial prefix
        is left behind to anchor a hash chain against garbage.
        """
        count = 0
        with self._write_transaction():  # one transaction for the whole batch
            prev_hash = self._last_hash()
            for position, entry in enumerate(entries):
                _, prev_hash = self._insert_entry(entry, prev_hash, position)
                count += 1
        return count

    def _insert_entry(
        self, entry: LogEntry, prev_hash: str, position: int
    ) -> tuple[sqlite3.Cursor, str]:
        """Insert one row inside the caller's transaction.

        Returns ``(cursor, hash)`` so batch appends can chain without
        re-reading the table.  Serialization failures are wrapped as
        :class:`MalformedEntryError` — inside a ``with connection:``
        block the raise rolls the whole transaction back.
        """
        try:
            entry = _normalize_entry(entry)
            digest = _entry_hash(prev_hash, entry)
            row = (
                entry.user,
                entry.role,
                entry.action,
                str(entry.obj) if entry.obj is not None else None,
                entry.task,
                entry.case,
                entry.timestamp.isoformat(),
                entry.status.value,
                prev_hash,
                digest,
            )
        except MalformedEntryError:
            raise
        except Exception as error:
            raise MalformedEntryError(
                f"entry at batch offset {position} cannot be serialized: {error}",
                position=position,
            ) from error
        cursor = self._connection.execute(
            "INSERT INTO audit_log "
            "(user, role, action, obj, task, case_id, ts, status, prev_hash, hash) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            row,
        )
        return cursor, digest

    def _anchor(self) -> tuple[str, Optional[str], int]:
        """(anchor hash, purged-up-to timestamp, purged count)."""
        row = self._connection.execute(
            "SELECT anchor_hash, purged_upto, purge_count FROM audit_anchor "
            "WHERE id = 1"
        ).fetchone()
        if row is None:
            return GENESIS, None, 0
        return row[0], row[1], int(row[2])

    def _last_hash(self) -> str:
        row = self._connection.execute(
            "SELECT hash FROM audit_log ORDER BY seq DESC LIMIT 1"
        ).fetchone()
        if row:
            return row[0]
        return self._anchor()[0]

    # -- reading ---------------------------------------------------------
    def _select_rows(
        self,
        case: Optional[str] = None,
        user: Optional[str] = None,
        since: Optional[datetime] = None,
        until: Optional[datetime] = None,
        after_seq: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> list[tuple]:
        """The shared filtered SELECT behind every trail reader."""
        clauses: list[str] = []
        params: list[object] = []
        if case is not None:
            clauses.append("case_id = ?")
            params.append(case)
        if user is not None:
            clauses.append("user = ?")
            params.append(user)
        if since is not None:
            clauses.append("ts >= ?")
            params.append(_normalize_ts(since).isoformat())
        if until is not None:
            clauses.append("ts <= ?")
            params.append(_normalize_ts(until).isoformat())
        if after_seq is not None:
            clauses.append("seq > ?")
            params.append(int(after_seq))
        sql = (
            "SELECT seq, user, role, action, obj, task, case_id, ts, status "
            "FROM audit_log"
        )
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY seq"
        if limit is not None:
            if limit < 0:
                raise AuditError("limit must be non-negative")
            sql += " LIMIT ?"
            params.append(int(limit))
        return self._connection.execute(sql, params).fetchall()

    def query(
        self,
        case: Optional[str] = None,
        user: Optional[str] = None,
        obj: Optional[ObjectRef] = None,
        since: Optional[datetime] = None,
        until: Optional[datetime] = None,
        quarantine: "Quarantine | None" = None,
        after_seq: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> AuditTrail:
        """Entries matching every given filter, as an ordered trail.

        The object filter matches the *subtree* of ``obj`` — querying for
        ``[Jane]EPR`` returns accesses to any of its sections.
        Timezone-aware ``since``/``until`` bounds are normalized to naive
        UTC, the representation entries are stored in.

        ``after_seq``/``limit`` give keyset pagination over the log's
        sequence numbers: only rows with ``seq > after_seq`` are read,
        at most ``limit`` of them.  A million-entry trail is then walked
        page by page instead of materialized at once (the control-plane
        drill-down endpoints rely on this); note the ``limit`` is applied
        *before* the Python-side object-subtree filter.

        Rows that no longer decode into a valid
        :class:`~repro.audit.model.LogEntry` (e.g. after tampering)
        raise :class:`repro.errors.MalformedEntryError` — unless a
        *quarantine* is given, in which case they are diverted to the
        dead-letter collection and the healthy rows are returned.
        """
        rows = self._select_rows(
            case=case,
            user=user,
            since=since,
            until=until,
            after_seq=after_seq,
            limit=limit,
        )
        entries = []
        for row in rows:
            try:
                entries.append(_entry_from_row(row[1:], position=int(row[0])))
            except MalformedEntryError as error:
                if quarantine is None:
                    raise
                quarantine.add(
                    source="store",
                    position=int(row[0]),
                    reason=str(error),
                    raw=repr(tuple(row[1:])),
                )
        if obj is not None:
            entries = [
                e for e in entries if e.obj is not None and obj.covers(e.obj)
            ]
        return AuditTrail(entries)

    def entries_with_seq(
        self,
        case: Optional[str] = None,
        after_seq: int = 0,
        limit: Optional[int] = None,
    ) -> list[tuple[int, LogEntry]]:
        """A page of ``(seq, entry)`` pairs for cursor-driven readers.

        The returned sequence numbers are the keyset cursor: pass the
        last one back as ``after_seq`` to fetch the next page.  Used by
        the control-plane trail endpoints and the incremental re-audit
        replay loop, which must never hold a full store in memory.
        """
        rows = self._select_rows(case=case, after_seq=after_seq, limit=limit)
        return [
            (int(row[0]), _entry_from_row(row[1:], position=int(row[0])))
            for row in rows
        ]

    def cases(self, prefix: Optional[str] = None) -> list[str]:
        """Distinct case ids in first-seen order.

        ``prefix`` filters to one purpose's cases by their case-id prefix
        (the ``HT`` of ``HT-1``); the match is exact on the segment
        before the ``-`` separator, not a pattern, so a prefix that is
        itself a prefix of another (``HT`` vs ``HTX``) never
        over-matches.
        """
        if prefix is None:
            rows = self._connection.execute(
                "SELECT case_id FROM audit_log "
                "GROUP BY case_id ORDER BY MIN(seq)"
            ).fetchall()
        else:
            marker = prefix + "-"
            rows = self._connection.execute(
                "SELECT case_id FROM audit_log "
                "WHERE substr(case_id, 1, ?) = ? "
                "GROUP BY case_id ORDER BY MIN(seq)",
                (len(marker), marker),
            ).fetchall()
        return [row[0] for row in rows]

    def cases_touching(self, obj: ObjectRef) -> list[str]:
        """The cases in which *obj* or a descendant was accessed."""
        return self.query(obj=obj).cases()

    # -- control log -----------------------------------------------------
    def record_control(
        self,
        action: str,
        case: Optional[str] = None,
        actor: str = "operator",
        reason: str = "",
        timestamp: Optional[datetime] = None,
    ) -> int:
        """Append an operator action (requeue/dismiss/re-audit) for posterity.

        Control records live in their **own** hash chain, separate from
        ``audit_log``: interleaving them into the case trail would fork
        the trail chain every time an operator acted, and the trail chain
        is what anchors the paper's Definition-4 entries.  Returns the
        record's sequence number.
        """
        if not action:
            raise AuditError("control action must be non-empty")
        when = _normalize_ts(timestamp or datetime.now(timezone.utc))
        with self._write_transaction():
            prev_hash = self._last_control_hash()
            payload = {
                "action": action,
                "case": case,
                "actor": actor,
                "reason": reason,
                "ts": when.isoformat(),
            }
            digest = _control_hash(prev_hash, payload)
            cursor = self._connection.execute(
                "INSERT INTO control_log "
                "(action, case_id, actor, reason, ts, prev_hash, hash) "
                "VALUES (?, ?, ?, ?, ?, ?, ?)",
                (action, case, actor, reason, when.isoformat(), prev_hash, digest),
            )
        return int(cursor.lastrowid or 0)

    def control_records(self, case: Optional[str] = None) -> list[dict[str, object]]:
        """Operator actions, oldest first, optionally for one case."""
        sql = "SELECT seq, action, case_id, actor, reason, ts FROM control_log"
        params: list[object] = []
        if case is not None:
            sql += " WHERE case_id = ?"
            params.append(case)
        sql += " ORDER BY seq"
        rows = self._connection.execute(sql, params).fetchall()
        return [
            {
                "seq": int(row[0]),
                "action": row[1],
                "case": row[2],
                "actor": row[3],
                "reason": row[4],
                "ts": row[5],
            }
            for row in rows
        ]

    def _last_control_hash(self) -> str:
        row = self._connection.execute(
            "SELECT hash FROM control_log ORDER BY seq DESC LIMIT 1"
        ).fetchone()
        return row[0] if row else GENESIS

    def __len__(self) -> int:
        row = self._connection.execute("SELECT COUNT(*) FROM audit_log").fetchone()
        return int(row[0])

    # -- integrity --------------------------------------------------------
    def verify_integrity(self) -> None:
        """Re-derive the hash chain; raise :class:`IntegrityError` on breakage."""
        rows = self._connection.execute(
            "SELECT seq, user, role, action, obj, task, case_id, ts, status, "
            "prev_hash, hash FROM audit_log ORDER BY seq"
        ).fetchall()
        expected_prev = self._anchor()[0]
        for row in rows:
            seq = int(row[0])
            try:
                entry = _entry_from_row(row[1:9], position=seq)
            except MalformedEntryError as error:
                # A row that no longer decodes cannot hash to what was
                # logged — it was modified after the fact.
                raise IntegrityError(
                    f"entry {seq} was modified after being logged "
                    f"(no longer decodes: {error})",
                    first_bad_seq=seq,
                ) from error
            stored_prev, stored_hash = row[9], row[10]
            if stored_prev != expected_prev:
                raise IntegrityError(
                    f"hash chain broken before entry {seq} "
                    "(an entry was removed or reordered)",
                    first_bad_seq=seq,
                )
            recomputed = _entry_hash(stored_prev, entry)
            if recomputed != stored_hash:
                raise IntegrityError(
                    f"entry {seq} was modified after being logged",
                    first_bad_seq=seq,
                )
            expected_prev = stored_hash
        self._verify_control_chain()

    def _verify_control_chain(self) -> None:
        """Walk the operator-action chain (a no-op when no one has acted)."""
        rows = self._connection.execute(
            "SELECT seq, action, case_id, actor, reason, ts, prev_hash, hash "
            "FROM control_log ORDER BY seq"
        ).fetchall()
        expected_prev = GENESIS
        for row in rows:
            seq = int(row[0])
            payload = {
                "action": row[1],
                "case": row[2],
                "actor": row[3],
                "reason": row[4],
                "ts": row[5],
            }
            stored_prev, stored_hash = row[6], row[7]
            if stored_prev != expected_prev:
                raise IntegrityError(
                    f"control chain broken before record {seq} "
                    "(a record was removed or reordered)",
                    first_bad_seq=seq,
                )
            if _control_hash(stored_prev, payload) != stored_hash:
                raise IntegrityError(
                    f"control record {seq} was modified after being logged",
                    first_bad_seq=seq,
                )
            expected_prev = stored_hash

    def is_intact(self) -> bool:
        try:
            self.verify_integrity()
        except IntegrityError:
            return False
        return True

    # -- retention ---------------------------------------------------------
    def purge_before(self, cutoff: datetime) -> int:
        """Erase the oldest entries (storage-limitation / GDPR retention).

        Deletes the maximal *prefix* of the log whose entries are all
        older than *cutoff* and re-anchors the hash chain at the last
        deleted entry, so :meth:`verify_integrity` keeps working for
        everything retained.  Prefix-based deletion is what keeps the
        chain meaningful: an entry younger than the cutoff blocks
        deletion of anything logged after it.

        Returns the number of entries erased.
        """
        cutoff = _normalize_ts(cutoff)
        rows = self._connection.execute(
            "SELECT seq, ts, hash FROM audit_log ORDER BY seq"
        ).fetchall()
        boundary: Optional[tuple[int, str]] = None
        count = 0
        for seq, ts, digest in rows:
            if datetime.fromisoformat(ts) < cutoff:
                boundary = (int(seq), digest)
                count += 1
            else:
                break
        if boundary is None:
            return 0
        _, purged_upto, purged_so_far = self._anchor()
        del purged_upto
        with self._write_transaction():
            self._connection.execute(
                "DELETE FROM audit_log WHERE seq <= ?", (boundary[0],)
            )
            self._connection.execute(
                "INSERT INTO audit_anchor (id, anchor_hash, purged_upto, purge_count) "
                "VALUES (1, ?, ?, ?) "
                "ON CONFLICT (id) DO UPDATE SET anchor_hash = excluded.anchor_hash, "
                "purged_upto = excluded.purged_upto, "
                "purge_count = excluded.purge_count",
                (boundary[1], cutoff.isoformat(), purged_so_far + count),
            )
        return count

    def retention_info(self) -> dict[str, object]:
        """How much has been purged and where the chain is anchored."""
        anchor_hash, purged_upto, purge_count = self._anchor()
        return {
            "anchored": anchor_hash != GENESIS,
            "anchor_hash": anchor_hash,
            "purged_upto": purged_upto,
            "purged_entries": purge_count,
            "retained_entries": len(self),
        }

    # -- test support ------------------------------------------------------
    def tamper(self, seq: int, **fields: str) -> None:
        """Modify a stored row *without* fixing the chain (for tests/demos)."""
        allowed = {"user", "role", "action", "obj", "task", "case_id", "status"}
        unknown = set(fields) - allowed
        if unknown:
            raise ValueError(f"cannot tamper with columns {sorted(unknown)}")
        assignments = ", ".join(f"{column} = ?" for column in fields)
        with self._write_transaction():
            self._connection.execute(
                f"UPDATE audit_log SET {assignments} WHERE seq = ?",
                [*fields.values(), seq],
            )


def _normalize_ts(when: datetime) -> datetime:
    """Naive-UTC canonical form: the store's single timestamp dialect.

    Entries, query bounds and purge cutoffs may arrive timezone-aware or
    naive; mixing the two makes lexicographic ISO comparison (what the
    SQL filters do) meaningless, so everything is normalized on the way
    in.  Naive inputs are taken at face value (the paper's ``YYYYMMDDHHMM``
    timestamps carry no zone).
    """
    if when.tzinfo is None:
        return when
    return when.astimezone(timezone.utc).replace(tzinfo=None)


def _normalize_entry(entry: LogEntry) -> LogEntry:
    if entry.timestamp.tzinfo is None:
        return entry
    from dataclasses import replace

    return replace(entry, timestamp=_normalize_ts(entry.timestamp))


def _control_hash(prev_hash: str, payload: dict[str, object]) -> str:
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.sha256((prev_hash + canonical).encode("utf-8")).hexdigest()


def _entry_hash(prev_hash: str, entry: LogEntry) -> str:
    payload = json.dumps(
        {
            "user": entry.user,
            "role": entry.role,
            "action": entry.action,
            "obj": str(entry.obj) if entry.obj is not None else None,
            "task": entry.task,
            "case": entry.case,
            "ts": entry.timestamp.isoformat(),
            "status": entry.status.value,
        },
        sort_keys=True,
    )
    return hashlib.sha256((prev_hash + payload).encode("utf-8")).hexdigest()


def _entry_from_row(row: tuple, position: Optional[int] = None) -> LogEntry:
    user, role, action, obj, task, case_id, ts, status = row
    try:
        return LogEntry(
            user=user,
            role=role,
            action=action,
            obj=ObjectRef.parse(obj) if obj else None,
            task=task,
            case=case_id,
            timestamp=datetime.fromisoformat(ts),
            status=Status(status),
        )
    except Exception as error:
        where = f"row {position}" if position is not None else "row"
        raise MalformedEntryError(
            f"{where} does not decode into a valid log entry: {error}",
            position=position,
        ) from error
