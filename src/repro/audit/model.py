"""Audit trails — Definitions 4 and 5 of the paper.

A :class:`LogEntry` is the 8-tuple ``(u, r, a, o, q, c, t, s)``: user,
role held at action time, action, object, task, case, timestamp and task
status indicator.  An :class:`AuditTrail` is a chronologically ordered
sequence of entries.

Timestamps follow the paper's Fig. 4 format — ``YYYYMMDDHHMM`` — parsed
into :class:`datetime.datetime` for real arithmetic; helpers convert both
ways.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from datetime import datetime, timedelta
from enum import Enum
from typing import Callable, Iterable, Iterator, Optional

from repro.errors import TrailOrderError
from repro.policy.model import AccessRequest, ObjectRef

_PAPER_FORMAT = "%Y%m%d%H%M"


class Status(Enum):
    """The task status indicator of Definition 4."""

    SUCCESS = "success"
    FAILURE = "failure"

    def __str__(self) -> str:
        return self.value


def parse_timestamp(text: str) -> datetime:
    """Parse the paper's ``YYYYMMDDHHMM`` timestamp format."""
    return datetime.strptime(text, _PAPER_FORMAT)


def format_timestamp(when: datetime) -> str:
    """Render a timestamp in the paper's ``YYYYMMDDHHMM`` format."""
    return when.strftime(_PAPER_FORMAT)


@dataclass(frozen=True, slots=True)
class LogEntry:
    """One audited event: ``(u, r, a, o, q, c, t, s)`` (Definition 4).

    ``obj`` may be ``None`` for object-less actions (the paper's Fig. 4
    records the failing ``cancel`` with object N/A).
    """

    user: str
    role: str
    action: str
    obj: Optional[ObjectRef]
    task: str
    case: str
    timestamp: datetime
    status: Status = Status.SUCCESS

    @classmethod
    def at(
        cls,
        user: str,
        role: str,
        action: str,
        obj: Optional[str],
        task: str,
        case: str,
        timestamp: str,
        status: Status = Status.SUCCESS,
    ) -> "LogEntry":
        """Convenience constructor taking paper-format strings."""
        return cls(
            user=user,
            role=role,
            action=action,
            obj=ObjectRef.parse(obj) if obj else None,
            task=task,
            case=case,
            timestamp=parse_timestamp(timestamp),
            status=status,
        )

    @property
    def succeeded(self) -> bool:
        return self.status is Status.SUCCESS

    @property
    def failed(self) -> bool:
        return self.status is Status.FAILURE

    def as_access_request(self) -> Optional[AccessRequest]:
        """The access request this entry answered (None for object-less events)."""
        if self.obj is None:
            return None
        return AccessRequest(
            user=self.user,
            action=self.action,
            obj=self.obj,
            task=self.task,
            case=self.case,
        )

    def shifted(self, delta: timedelta) -> "LogEntry":
        """A copy of the entry moved in time by *delta*."""
        return replace(self, timestamp=self.timestamp + delta)

    def __str__(self) -> str:
        obj = str(self.obj) if self.obj is not None else "N/A"
        return (
            f"{self.user} {self.role} {self.action} {obj} {self.task} "
            f"{self.case} {format_timestamp(self.timestamp)} {self.status}"
        )


class AuditTrail:
    """A chronologically ordered sequence of log entries (Definition 5).

    The constructor sorts entries by timestamp (ties keep input order,
    matching how a log table with a sequence column behaves).  ``strict``
    construction instead *rejects* out-of-order input — useful to assert
    that a store returned what it promised.
    """

    def __init__(self, entries: Iterable[LogEntry] = (), strict: bool = False):
        items = list(entries)
        if strict:
            for earlier, later in zip(items, items[1:]):
                if earlier.timestamp > later.timestamp:
                    raise TrailOrderError(
                        f"entries out of order: {earlier} after {later}"
                    )
            self._entries = items
        else:
            self._entries = sorted(items, key=lambda e: e.timestamp)

    # -- sequence protocol -------------------------------------------------
    def __iter__(self) -> Iterator[LogEntry]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __getitem__(self, index: int) -> LogEntry:
        return self._entries[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AuditTrail):
            return NotImplemented
        return self._entries == other._entries

    @property
    def entries(self) -> list[LogEntry]:
        return list(self._entries)

    # -- projections --------------------------------------------------------
    def for_case(self, case: str) -> "AuditTrail":
        """The sub-trail of one process instance — what Algorithm 1 replays."""
        return AuditTrail(e for e in self._entries if e.case == case)

    def for_user(self, user: str) -> "AuditTrail":
        return AuditTrail(e for e in self._entries if e.user == user)

    def touching(self, obj: ObjectRef) -> "AuditTrail":
        """Entries whose object lies in the subtree of *obj*."""
        return AuditTrail(
            e for e in self._entries if e.obj is not None and obj.covers(e.obj)
        )

    def filtered(self, predicate: Callable[[LogEntry], bool]) -> "AuditTrail":
        return AuditTrail(e for e in self._entries if predicate(e))

    def cases(self) -> list[str]:
        """The distinct cases, in first-appearance order."""
        seen: dict[str, None] = {}
        for entry in self._entries:
            seen.setdefault(entry.case, None)
        return list(seen)

    def cases_touching(self, obj: ObjectRef) -> list[str]:
        """The cases in which *obj* (or a descendant) was accessed."""
        return self.touching(obj).cases()

    def task_sequence(self) -> list[tuple[str, str, Status]]:
        """The (role, task, status) sequence — the observable skeleton."""
        return [(e.role, e.task, e.status) for e in self._entries]

    def merged_with(self, other: "AuditTrail") -> "AuditTrail":
        return AuditTrail([*self._entries, *other.entries])

    def span(self) -> Optional[tuple[datetime, datetime]]:
        if not self._entries:
            return None
        return self._entries[0].timestamp, self._entries[-1].timestamp
