"""Statistical triage of audit trails.

Section 6 situates the paper's method among anomaly-detection
techniques.  This module supplies the lightweight statistical companion
a deployment pairs with the exact replay: a :class:`BehaviourModel` fit
on historical (trusted) logs scores new activity by *surprise*
(negative log2 likelihood under smoothed frequency models), giving
auditors a ranking of what to look at first — cheaply, before any
process replay runs, and without requiring a process model at all.

Two granularities:

* **entry surprise** — how unusual is this (role, task, action, object
  root) for this user, backing off to the population profile for users
  with thin history;
* **case surprise** — how unusual is the *shape* of a case: its opening
  task and its length bucket.  The paper's harvesting attack (fresh
  cases opening mid-process with a single entry) lights up on both
  features.

Scores are in bits; `rank_cases` orders cases most-suspicious first.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.audit.model import AuditTrail, LogEntry

#: Feature of one entry: who-context it is scored against.
EntryKey = tuple[str, str, str, str]  # role, task, action, object root


def entry_key(entry: LogEntry) -> EntryKey:
    root = entry.obj.path[0] if entry.obj is not None else "-"
    return (entry.role, entry.task, entry.action, root)


def _length_bucket(length: int) -> str:
    """Coarse case-length buckets (1, 2-3, 4-7, 8-15, 16+)."""
    if length <= 1:
        return "1"
    if length <= 3:
        return "2-3"
    if length <= 7:
        return "4-7"
    if length <= 15:
        return "8-15"
    return "16+"


@dataclass
class _Frequencies:
    counts: Counter = field(default_factory=Counter)
    total: int = 0

    def observe(self, key: object) -> None:
        self.counts[key] += 1
        self.total += 1

    def probability(self, key: object, alpha: float, support: int) -> float:
        """Laplace-smoothed probability; *support* is the category count."""
        return (self.counts[key] + alpha) / (self.total + alpha * max(support, 1))


class BehaviourModel:
    """Frequency profiles of users and case shapes, with surprise scoring."""

    def __init__(self, alpha: float = 1.0):
        if alpha <= 0:
            raise ValueError("the smoothing parameter alpha must be positive")
        self._alpha = alpha
        self._per_user: dict[str, _Frequencies] = {}
        self._population = _Frequencies()
        self._first_tasks = _Frequencies()
        self._lengths = _Frequencies()
        self._keys: set[EntryKey] = set()
        self._fitted = False

    # -- fitting ---------------------------------------------------------
    def fit(self, trail: AuditTrail) -> "BehaviourModel":
        """Learn profiles from a (trusted) historical trail."""
        for entry in trail:
            key = entry_key(entry)
            self._keys.add(key)
            self._population.observe(key)
            self._per_user.setdefault(entry.user, _Frequencies()).observe(key)
        for case in trail.cases():
            case_trail = trail.for_case(case)
            self._first_tasks.observe(case_trail[0].task)
            self._lengths.observe(_length_bucket(len(case_trail)))
        self._fitted = True
        return self

    @property
    def fitted(self) -> bool:
        return self._fitted

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise ValueError("fit() the model before scoring")

    # -- scoring -------------------------------------------------------------
    def entry_surprise(self, entry: LogEntry) -> float:
        """Bits of surprise of *entry* under its user's profile.

        Users without history are scored against the population profile;
        thin user histories are blended with it through the smoothing
        mass.
        """
        self._require_fitted()
        key = entry_key(entry)
        support = max(len(self._keys), 1)
        population_p = self._population.probability(key, self._alpha, support)
        user_frequencies = self._per_user.get(entry.user)
        if user_frequencies is None:
            return -math.log2(population_p)
        user_p = user_frequencies.probability(key, self._alpha, support)
        return -math.log2(max(user_p, population_p * 1e-6))

    def case_surprise(self, case_trail: AuditTrail) -> float:
        """Bits of surprise of a case's shape (opening task + length)."""
        self._require_fitted()
        if len(case_trail) == 0:
            return 0.0
        first_support = max(len(self._first_tasks.counts), 1)
        first_p = self._first_tasks.probability(
            case_trail[0].task, self._alpha, first_support
        )
        length_p = self._lengths.probability(
            _length_bucket(len(case_trail)), self._alpha, 5
        )
        return -math.log2(first_p) - math.log2(length_p)

    def rank_cases(
        self, trail: AuditTrail, include_entries: bool = True
    ) -> list[tuple[str, float]]:
        """Cases ordered most-suspicious first.

        The score is the case-shape surprise plus (optionally) the mean
        entry surprise of the case's entries.
        """
        self._require_fitted()
        ranking: list[tuple[str, float]] = []
        for case in trail.cases():
            case_trail = trail.for_case(case)
            score = self.case_surprise(case_trail)
            if include_entries and len(case_trail):
                mean_entry = sum(
                    self.entry_surprise(e) for e in case_trail
                ) / len(case_trail)
                score += mean_entry
            ranking.append((case, score))
        ranking.sort(key=lambda pair: pair[1], reverse=True)
        return ranking

    def unusual_entries(
        self, trail: AuditTrail | Iterable[LogEntry], threshold_bits: float
    ) -> list[tuple[LogEntry, float]]:
        """Entries whose surprise exceeds *threshold_bits*, scored."""
        self._require_fitted()
        found = []
        for entry in trail:
            surprise = self.entry_surprise(entry)
            if surprise > threshold_bits:
                found.append((entry, surprise))
        found.sort(key=lambda pair: pair[1], reverse=True)
        return found


def triage_precision_at_k(
    ranking: list[tuple[str, float]],
    actually_bad: set[str],
    k: Optional[int] = None,
) -> float:
    """Of the top-*k* ranked cases, the fraction that are truly infringing.

    ``k`` defaults to the number of truly infringing cases (precision at
    the oracle cut)."""
    if not actually_bad:
        return 1.0
    cut = k if k is not None else len(actually_bad)
    top = [case for case, _ in ranking[:cut]]
    return sum(1 for case in top if case in actually_bad) / max(len(top), 1)
