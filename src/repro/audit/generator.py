"""Synthetic audit-trail generation and violation injection.

No real hospital logs are available offline (the paper's evaluation
setting — DocuLive-style EPR systems, the Geneva workload of 20,000
record opens per day — is proprietary), so this module *simulates* them:

* :class:`TrailGenerator` produces **compliant** trails by randomly
  walking the observable transition system of an encoded process (via
  WeakNext, i.e. exactly the semantics Algorithm 1 replays) and expanding
  every task execution into 1..n logged actions through a
  :class:`TaskProfile` — reproducing the 1-to-n task/entry mapping of
  Section 3.5;
* the ``inject_*`` functions plant the paper's infringement patterns into
  compliant trails: re-purposing (the Fig. 4 clinical-trial attack),
  single-entry mimicry cases, skipped tasks, wrong roles and reordering.

Both halves drive the same code path real logs would (Definition-4
entries fed to Algorithm 1), which is what makes the substitution sound;
see DESIGN.md, Section 3.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from datetime import datetime, timedelta
from typing import Optional, Sequence

from repro.audit.model import AuditTrail, LogEntry, Status
from repro.bpmn.encode import EncodedProcess
from repro.core.configuration import Configuration
from repro.core.observables import ErrorEvent, Observables, TaskEvent
from repro.core.weaknext import WeakNextEngine
from repro.errors import GenerationError
from repro.policy.hierarchy import RoleHierarchy
from repro.policy.model import ObjectRef


@dataclass(frozen=True)
class TaskAction:
    """One loggable action of a task: an action verb plus an object template.

    The template may contain ``{subject}``, replaced by the case's data
    subject (``[{subject}]EPR/Clinical`` -> ``[Jane]EPR/Clinical``), or be
    ``None`` for object-less actions.
    """

    action: str
    object_template: Optional[str]

    def materialize(self, subject: str) -> Optional[ObjectRef]:
        if self.object_template is None:
            return None
        return ObjectRef.parse(self.object_template.format(subject=subject))


@dataclass
class TaskProfile:
    """What users actually do inside each task (task -> possible actions)."""

    actions: dict[str, list[TaskAction]] = field(default_factory=dict)
    default: TaskAction = TaskAction("read", "[{subject}]EPR/Clinical")

    def define(self, task: str, *actions: TaskAction) -> "TaskProfile":
        self.actions.setdefault(task, []).extend(actions)
        return self

    def actions_for(self, task: str) -> list[TaskAction]:
        return self.actions.get(task, [self.default])


@dataclass(frozen=True)
class GeneratedCase:
    """A generated case: its trail plus bookkeeping for experiments."""

    case: str
    subject: str
    trail: AuditTrail
    observable_steps: int


class TrailGenerator:
    """Generates compliant trails by random observable walks of a process."""

    def __init__(
        self,
        encoded: EncodedProcess,
        users_by_role: dict[str, Sequence[tuple[str, str]]],
        profile: TaskProfile | None = None,
        hierarchy: RoleHierarchy | None = None,
        seed: int | None = None,
        start_time: datetime | None = None,
        max_steps: int = 60,
        max_entries_per_task: int = 3,
    ):
        """``users_by_role`` maps each *pool* role to ``(user, logged role)``
        pairs — e.g. the Physician pool of the clinical-trial process may
        be staffed by ``("Bob", "Cardiologist")``."""
        self._encoded = encoded
        self._observables = Observables.from_encoded(encoded, hierarchy)
        self._engine = WeakNextEngine(self._observables)
        self._initial = Configuration.initial(self._engine, encoded.term)
        self._users_by_role = {
            role: list(users) for role, users in users_by_role.items()
        }
        self._profile = profile or TaskProfile()
        self._rng = random.Random(seed)
        self._clock = start_time or datetime(2010, 3, 1, 8, 0)
        self._max_steps = max_steps
        self._max_entries_per_task = max_entries_per_task
        for role in encoded.roles:
            if role not in self._users_by_role:
                raise GenerationError(
                    f"no users assigned to pool role {role!r}"
                )

    def _tick(self, minutes_max: int = 30) -> datetime:
        self._clock += timedelta(minutes=self._rng.randint(1, minutes_max))
        return self._clock

    def generate_case(
        self,
        case: str,
        subject: str,
        min_steps: int = 1,
        stop_probability: float = 0.15,
    ) -> GeneratedCase:
        """One compliant case: a random run of the process.

        The walk may stop early once *min_steps* observable steps were
        taken (any prefix of a valid execution is compliant), and always
        stops at deadlock or after ``max_steps``.
        """
        entries: list[LogEntry] = []
        conf = self._initial
        last_task: Optional[tuple[str, str]] = None
        steps = 0
        while steps < self._max_steps and conf.next:
            if steps >= min_steps and self._rng.random() < stop_probability:
                break
            successor = self._rng.choice(list(conf.next))
            event = successor[0]
            if isinstance(event, TaskEvent):
                last_task = (event.role, event.task)
                entries.extend(self._task_entries(event, case, subject))
            elif isinstance(event, ErrorEvent):
                entries.append(self._failure_entry(last_task, case))
            conf = Configuration.reached(self._engine, successor)
            steps += 1
        return GeneratedCase(
            case=case,
            subject=subject,
            trail=AuditTrail(entries),
            observable_steps=steps,
        )

    def _pick_user(self, pool_role: str) -> tuple[str, str]:
        candidates = self._users_by_role[pool_role]
        return self._rng.choice(candidates)

    def _task_entries(
        self, event: TaskEvent, case: str, subject: str
    ) -> list[LogEntry]:
        user, logged_role = self._pick_user(event.role)
        count = self._rng.randint(1, self._max_entries_per_task)
        actions = self._profile.actions_for(event.task)
        entries = []
        for _ in range(count):
            action = self._rng.choice(actions)
            entries.append(
                LogEntry(
                    user=user,
                    role=logged_role,
                    action=action.action,
                    obj=action.materialize(subject),
                    task=event.task,
                    case=case,
                    timestamp=self._tick(),
                    status=Status.SUCCESS,
                )
            )
        return entries

    def _failure_entry(
        self, last_task: Optional[tuple[str, str]], case: str
    ) -> LogEntry:
        if last_task is None:
            raise GenerationError(
                "the process produced an error before any task ran"
            )
        pool_role, task = last_task
        user, logged_role = self._pick_user(pool_role)
        return LogEntry(
            user=user,
            role=logged_role,
            action="cancel",
            obj=None,
            task=task,
            case=case,
            timestamp=self._tick(),
            status=Status.FAILURE,
        )


# ---------------------------------------------------------------------------
# violation injection


def inject_wrong_role(
    trail: AuditTrail, index: int, role: str
) -> AuditTrail:
    """Replace the role of entry *index* (an unauthorized-actor violation)."""
    entries = trail.entries
    target = entries[index]
    entries[index] = LogEntry(
        user=target.user,
        role=role,
        action=target.action,
        obj=target.obj,
        task=target.task,
        case=target.case,
        timestamp=target.timestamp,
        status=target.status,
    )
    return AuditTrail(entries)


def inject_task_skip(trail: AuditTrail, task: str) -> AuditTrail:
    """Drop every entry of one task (a skipped-step violation)."""
    remaining = [e for e in trail if e.task != task]
    if len(remaining) == len(trail):
        raise GenerationError(f"trail has no entries for task {task!r}")
    return AuditTrail(remaining)


def inject_swap(trail: AuditTrail, index: int) -> AuditTrail:
    """Swap the timestamps of entries *index* and *index + 1* (reordering)."""
    entries = trail.entries
    if index + 1 >= len(entries):
        raise GenerationError("cannot swap past the end of the trail")
    first, second = entries[index], entries[index + 1]
    entries[index] = second.shifted(first.timestamp - second.timestamp)
    entries[index + 1] = first.shifted(second.timestamp - first.timestamp)
    return AuditTrail(entries)


def inject_mimicry_case(
    trail: AuditTrail,
    case: str,
    user: str,
    role: str,
    task: str,
    obj: str,
    when: datetime,
    action: str = "read",
) -> AuditTrail:
    """Append a single-entry fake case — the HT-11 pattern of Fig. 4.

    A user opens a record under a freshly minted case of a legitimate
    purpose without ever executing the purpose's process.
    """
    entry = LogEntry(
        user=user,
        role=role,
        action=action,
        obj=ObjectRef.parse(obj),
        task=task,
        case=case,
        timestamp=when,
        status=Status.SUCCESS,
    )
    return trail.merged_with(AuditTrail([entry]))


def inject_repurposed_tail(
    trail: AuditTrail, source_case: str, target_case: str, count: int
) -> AuditTrail:
    """Relabel the last *count* entries of *source_case* as *target_case*.

    Models processing that drifts into another purpose's instance while
    keeping the original access claims.
    """
    entries = trail.entries
    indices = [i for i, e in enumerate(entries) if e.case == source_case]
    if len(indices) < count:
        raise GenerationError(
            f"case {source_case!r} has only {len(indices)} entries"
        )
    for i in indices[-count:]:
        source = entries[i]
        entries[i] = LogEntry(
            user=source.user,
            role=source.role,
            action=source.action,
            obj=source.obj,
            task=source.task,
            case=target_case,
            timestamp=source.timestamp,
            status=source.status,
        )
    return AuditTrail(entries)
