"""XES import/export for audit trails.

XES (eXtensible Event Stream, IEEE 1849) is the interchange format of
the process-mining world — the community whose conformance-checking
techniques Section 6 compares against.  Supporting it means real logs
exported from WFM/ERP systems (the systems Section 3.5 says "are able to
record the task and the instance of the process") can be audited
directly, and trails generated here can be inspected in any
process-mining toolkit.

Mapping:

=====================  =========================================
XES attribute           Definition-4 field
=====================  =========================================
trace concept:name      case
event concept:name      task
event org:resource      user
event org:role          role
event time:timestamp    timestamp
event purpose:action    action          (this library's extension)
event purpose:object    object          (this library's extension)
event purpose:status    status          (this library's extension)
=====================  =========================================

Events missing the purpose-control extension import with defaults
(action ``"execute"``, no object, success) so plain task-level XES logs
remain replayable by Algorithm 1.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from datetime import datetime
from typing import TYPE_CHECKING

from repro.audit.model import AuditTrail, LogEntry, Status
from repro.errors import AuditError
from repro.policy.model import ObjectRef

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.resilience import Quarantine


class XesError(AuditError):
    """An XES document could not be parsed into an audit trail."""


def _string(parent: ET.Element, key: str, value: str) -> None:
    ET.SubElement(parent, "string", {"key": key, "value": value})


def _date(parent: ET.Element, key: str, value: datetime) -> None:
    ET.SubElement(parent, "date", {"key": key, "value": value.isoformat()})


def export_xes(trail: AuditTrail, log_name: str = "audit-trail") -> str:
    """Serialize *trail* as an XES document (one trace per case)."""
    log = ET.Element(
        "log",
        {"xes.version": "1.0", "xes.features": "nested-attributes"},
    )
    _string(log, "concept:name", log_name)
    for case in trail.cases():
        trace = ET.SubElement(log, "trace")
        _string(trace, "concept:name", case)
        for entry in trail.for_case(case):
            event = ET.SubElement(trace, "event")
            _string(event, "concept:name", entry.task)
            _string(event, "org:resource", entry.user)
            _string(event, "org:role", entry.role)
            _date(event, "time:timestamp", entry.timestamp)
            _string(event, "lifecycle:transition", "complete")
            _string(event, "purpose:action", entry.action)
            if entry.obj is not None:
                _string(event, "purpose:object", str(entry.obj))
            _string(event, "purpose:status", entry.status.value)
    ET.indent(log)
    return ET.tostring(log, encoding="unicode", xml_declaration=True)


def _attributes(element: ET.Element) -> dict[str, str]:
    found: dict[str, str] = {}
    for child in element:
        key = child.get("key")
        value = child.get("value")
        if key is not None and value is not None:
            found[key] = value
    return found


def _event_entry(case: str, attributes: dict[str, str]) -> LogEntry:
    """Decode one event's attribute map; raises :class:`XesError`."""
    task = attributes.get("concept:name")
    raw_timestamp = attributes.get("time:timestamp")
    if task is None or raw_timestamp is None:
        raise XesError(
            f"event in trace {case!r} lacks concept:name or time:timestamp"
        )
    try:
        timestamp = datetime.fromisoformat(raw_timestamp)
    except ValueError as error:
        raise XesError(
            f"bad timestamp {raw_timestamp!r} in trace {case!r}"
        ) from error
    if timestamp.tzinfo is not None:
        timestamp = timestamp.replace(tzinfo=None)
    raw_object = attributes.get("purpose:object")
    try:
        obj = ObjectRef.parse(raw_object) if raw_object else None
        status = Status(attributes.get("purpose:status", "success"))
    except ValueError as error:
        raise XesError(
            f"bad purpose-extension attribute in trace {case!r}: {error}"
        ) from error
    return LogEntry(
        user=attributes.get("org:resource", "unknown"),
        role=attributes.get("org:role", "unknown"),
        action=attributes.get("purpose:action", "execute"),
        obj=obj,
        task=task,
        case=case,
        timestamp=timestamp,
        status=status,
    )


def import_xes(
    document: str, quarantine: "Quarantine | None" = None
) -> AuditTrail:
    """Parse an XES document into an :class:`AuditTrail`.

    Raises :class:`XesError` for malformed documents or events missing
    the mandatory attributes (task name, timestamp) or carrying invalid
    purpose-extension values.  With a *quarantine*, per-event failures
    are diverted to the dead-letter collection instead (one corrupt
    event costs one event, not the import); only document-level errors
    (broken XML, wrong root) still raise.
    """
    try:
        root = ET.fromstring(document)
    except ET.ParseError as error:
        raise XesError(f"invalid XML: {error}") from error
    if root.tag != "log":
        raise XesError(f"expected a <log> root element, found <{root.tag}>")

    entries: list[LogEntry] = []
    event_index = 0
    for trace_index, trace in enumerate(root.iter("trace")):
        trace_attributes = _attributes(trace)
        case = trace_attributes.get("concept:name", f"trace-{trace_index}")
        for event in trace.iter("event"):
            attributes = _attributes(event)
            try:
                entries.append(_event_entry(case, attributes))
            except XesError as error:
                if quarantine is None:
                    raise
                quarantine.add(
                    source="xes",
                    position=event_index,
                    reason=str(error),
                    raw=repr(attributes),
                )
            event_index += 1
    return AuditTrail(entries)
