"""Audit trails (Definitions 4-5): entries, trails, a tamper-evident
SQLite store, and synthetic generation with violation injection."""

from repro.audit.generator import (
    GeneratedCase,
    TaskAction,
    TaskProfile,
    TrailGenerator,
    inject_mimicry_case,
    inject_repurposed_tail,
    inject_swap,
    inject_task_skip,
    inject_wrong_role,
)
from repro.audit.model import (
    AuditTrail,
    LogEntry,
    Status,
    format_timestamp,
    parse_timestamp,
)
from repro.audit.stats import BehaviourModel, entry_key, triage_precision_at_k
from repro.audit.store import GENESIS, AuditStore
from repro.audit.xes import XesError, export_xes, import_xes

__all__ = [
    "GENESIS",
    "AuditStore",
    "AuditTrail",
    "BehaviourModel",
    "entry_key",
    "triage_precision_at_k",
    "GeneratedCase",
    "LogEntry",
    "Status",
    "TaskAction",
    "TaskProfile",
    "TrailGenerator",
    "XesError",
    "export_xes",
    "format_timestamp",
    "import_xes",
    "inject_mimicry_case",
    "inject_repurposed_tail",
    "inject_swap",
    "inject_task_skip",
    "inject_wrong_role",
    "parse_timestamp",
]
