"""Distributed span tracing for replay forensics.

``span("replay", case="HT-1")`` opens a timed span; spans nest via a
per-thread stack, producing a timing *tree* per top-level operation —
e.g. one ``audit`` span containing one ``replay`` span per case, each
containing ``weaknext`` spans for the frontiers it had to compute.  The
tree answers "where did the audit spend its time" without attaching a
profiler to a production auditor.

Beyond process-local trees, spans carry **distributed trace context**:

* every span has a 128-bit ``trace_id`` and 64-bit ``span_id`` (hex, as
  in W3C Trace Context / OpenTelemetry), inherited from the enclosing
  span or minted fresh for roots;
* a remote parent is adopted by passing ``parent=TraceContext(...)`` —
  e.g. parsed from an incoming ``traceparent`` header/field with
  :func:`parse_traceparent` — so one streamed case is one trace across
  client, service loop, shard threads, and the store writer;
* the tracer records a **wall-clock epoch anchor**
  (:attr:`Tracer.epoch_unix_s`) next to its ``perf_counter`` epoch, so
  spans from different processes land on one absolute timeline;
* :meth:`Tracer.record_span` adopts externally timed work (e.g. a
  worker process that only hands back plain numbers) as a completed
  span of an existing trace.

Exports:

* :meth:`Tracer.to_json` — the nested tree, JSON-serializable;
* :meth:`Tracer.to_chrome_trace` — a flat list of complete ("ph": "X")
  events loadable in ``chrome://tracing`` / Perfetto;
* :func:`repro.obs.export.spans_to_otlp` — OTLP/JSON ``resourceSpans``.

As everywhere in :mod:`repro.obs`, the disabled default is a shared
no-op (:data:`NULL_TRACER`): its ``span()`` returns a reusable null
context manager and never reads the clock or mints ids.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from dataclasses import dataclass, field
from typing import Iterator, Optional


def new_trace_id() -> str:
    """A fresh random 128-bit trace id (32 lowercase hex chars)."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh random 64-bit span id (16 lowercase hex chars)."""
    return os.urandom(8).hex()


@dataclass(frozen=True)
class TraceContext:
    """The propagatable identity of one span: ``(trace_id, span_id)``.

    This is what crosses process and wire boundaries — a child span
    opened under it joins ``trace_id`` with ``span_id`` as its parent.
    """

    trace_id: str
    span_id: str

    @classmethod
    def new(cls) -> "TraceContext":
        return cls(new_trace_id(), new_span_id())

    def to_traceparent(self) -> str:
        """The W3C ``traceparent`` header value (version 00, sampled)."""
        return f"00-{self.trace_id}-{self.span_id}-01"


_TRACEPARENT = re.compile(
    r"^[0-9a-f]{2}-([0-9a-f]{32})-([0-9a-f]{16})-[0-9a-f]{2}$"
)


def parse_traceparent(text: object) -> Optional[TraceContext]:
    """Parse a W3C ``traceparent`` value; None on anything malformed.

    Tolerant by design: trace propagation is best-effort, and a log
    shipper sending a broken header must not lose its entry over it.
    """
    if not isinstance(text, str):
        return None
    match = _TRACEPARENT.match(text.strip().lower())
    if match is None:
        return None
    trace_id, span_id = match.groups()
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    return TraceContext(trace_id, span_id)


@dataclass
class Span:
    """One timed operation; ``children`` are the spans opened inside it."""

    name: str
    attrs: dict = field(default_factory=dict)
    start: float = 0.0  # perf_counter seconds, tracer-relative
    duration: float = 0.0
    children: list["Span"] = field(default_factory=list)
    trace_id: str = ""
    span_id: str = ""
    parent_id: str = ""
    #: Cross-trace references (OTel span links) — e.g. a store flush
    #: batching entries of several cases links each case's trace.
    links: tuple[TraceContext, ...] = ()

    @property
    def context(self) -> TraceContext:
        """This span's propagatable identity."""
        return TraceContext(self.trace_id, self.span_id)

    def to_dict(self) -> dict:
        payload: dict = {
            "name": self.name,
            "start_s": round(self.start, 6),
            "duration_s": round(self.duration, 6),
        }
        if self.trace_id:
            payload["trace_id"] = self.trace_id
            payload["span_id"] = self.span_id
            if self.parent_id:
                payload["parent_span_id"] = self.parent_id
        if self.links:
            payload["links"] = [
                {"trace_id": link.trace_id, "span_id": link.span_id}
                for link in self.links
            ]
        if self.attrs:
            payload["attrs"] = self.attrs
        if self.children:
            payload["children"] = [c.to_dict() for c in self.children]
        return payload

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()


class _SpanContext:
    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, *exc) -> bool:
        self._tracer._pop(self._span)
        return False


class Tracer:
    """Collects span trees; thread-safe via per-thread span stacks."""

    enabled = True

    def __init__(self) -> None:
        # Two epochs, read back to back: perf_counter for monotonic
        # durations, wall clock to anchor spans on an absolute timeline
        # other processes share (cross-process correlation).
        self._epoch = time.perf_counter()
        self._epoch_unix = time.time()
        self._local = threading.local()
        self._roots: list[Span] = []
        self._lock = threading.Lock()

    @property
    def epoch_unix_s(self) -> float:
        """Wall-clock seconds-since-epoch of this tracer's time zero."""
        return self._epoch_unix

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(
        self,
        name: str,
        parent: Optional[TraceContext] = None,
        links: tuple[TraceContext, ...] = (),
        **attrs,
    ) -> _SpanContext:
        """Open a span: ``with tracer.span("replay", case=case):``.

        ``parent`` adopts a remote trace context (the span becomes a
        child of that — possibly other-process — span); without it the
        span joins the enclosing span on this thread, or starts a new
        trace at the root.  ``links`` attach cross-trace references.
        """
        span = Span(name=name, attrs=attrs, links=tuple(links))
        span.span_id = new_span_id()
        if parent is not None:
            span.trace_id = parent.trace_id
            span.parent_id = parent.span_id
        return _SpanContext(self, span)

    def current_context(self) -> Optional[TraceContext]:
        """The innermost open span's context on this thread (or None)."""
        stack = self._stack()
        return stack[-1].context if stack else None

    def record_span(
        self,
        name: str,
        start_unix_s: float,
        duration_s: float,
        parent: Optional[TraceContext] = None,
        context: Optional[TraceContext] = None,
        links: tuple[TraceContext, ...] = (),
        **attrs,
    ) -> Span:
        """Adopt externally timed work as a completed span.

        For work measured elsewhere — a worker process handing back
        ``(wall start, duration)`` as plain data, or an instant event
        (``duration_s=0``).  ``context`` pins the span's own identity
        (so children recorded earlier can already reference it);
        ``parent`` attaches it to an existing trace.
        """
        span = Span(name=name, attrs=attrs, links=tuple(links))
        if context is not None:
            span.trace_id = context.trace_id
            span.span_id = context.span_id
        else:
            span.span_id = new_span_id()
        if parent is not None:
            span.trace_id = span.trace_id or parent.trace_id
            span.parent_id = parent.span_id
        if not span.trace_id:
            span.trace_id = new_trace_id()
        span.start = start_unix_s - self._epoch_unix
        span.duration = max(0.0, duration_s)
        with self._lock:
            self._roots.append(span)
        return span

    def _push(self, span: Span) -> None:
        stack = self._stack()
        if not span.trace_id:
            if stack:
                top = stack[-1]
                span.trace_id = top.trace_id
                span.parent_id = top.span_id
            else:
                span.trace_id = new_trace_id()
        span.start = time.perf_counter() - self._epoch
        stack.append(span)

    def _pop(self, span: Span) -> None:
        span.duration = (time.perf_counter() - self._epoch) - span.start
        stack = self._stack()
        assert stack and stack[-1] is span, "unbalanced span nesting"
        stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self._roots.append(span)

    # -- export ------------------------------------------------------------
    @property
    def roots(self) -> list[Span]:
        with self._lock:
            return list(self._roots)

    def to_json(self) -> list[dict]:
        """The finished span trees as nested dictionaries."""
        return [root.to_dict() for root in self.roots]

    def to_chrome_trace(self) -> list[dict]:
        """Flat Chrome-trace ("ph": "X") events; microsecond timestamps."""
        events: list[dict] = []
        pid = os.getpid()
        for root in self.roots:
            for span in root.walk():
                events.append(
                    {
                        "name": span.name,
                        "ph": "X",
                        "ts": round(span.start * 1e6, 1),
                        "dur": round(span.duration * 1e6, 1),
                        "pid": pid,
                        "tid": 0,
                        "args": span.attrs,
                    }
                )
        return events

    def dumps(self, format: str = "json") -> str:
        if format == "chrome":
            return json.dumps(self.to_chrome_trace(), default=str)
        return json.dumps(self.to_json(), default=str, indent=2)


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer:
    """The disabled default: spans cost one method call, no clock reads,
    no id generation."""

    enabled = False
    epoch_unix_s = 0.0

    def span(self, name: str, parent=None, links=(), **attrs) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def current_context(self) -> None:
        return None

    def record_span(
        self, name, start_unix_s, duration_s, parent=None, context=None,
        links=(), **attrs,
    ) -> None:
        return None

    @property
    def roots(self) -> list:
        return []

    def to_json(self) -> list:
        return []

    def to_chrome_trace(self) -> list:
        return []

    def dumps(self, format: str = "json") -> str:
        return "[]"


NULL_TRACER = NullTracer()
