"""Lightweight span tracing for replay forensics.

``span("replay", case="HT-1")`` opens a timed span; spans nest via a
per-thread stack, producing a timing *tree* per top-level operation —
e.g. one ``audit`` span containing one ``replay`` span per case, each
containing ``weaknext`` spans for the frontiers it had to compute.  The
tree answers "where did the audit spend its time" without attaching a
profiler to a production auditor.

Exports:

* :meth:`Tracer.to_json` — the nested tree, JSON-serializable;
* :meth:`Tracer.to_chrome_trace` — a flat list of complete ("ph": "X")
  events loadable in ``chrome://tracing`` / Perfetto.

As everywhere in :mod:`repro.obs`, the disabled default is a shared
no-op (:data:`NULL_TRACER`): its ``span()`` returns a reusable null
context manager and never reads the clock.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class Span:
    """One timed operation; ``children`` are the spans opened inside it."""

    name: str
    attrs: dict = field(default_factory=dict)
    start: float = 0.0  # perf_counter seconds, tracer-relative
    duration: float = 0.0
    children: list["Span"] = field(default_factory=list)

    def to_dict(self) -> dict:
        payload: dict = {
            "name": self.name,
            "start_s": round(self.start, 6),
            "duration_s": round(self.duration, 6),
        }
        if self.attrs:
            payload["attrs"] = self.attrs
        if self.children:
            payload["children"] = [c.to_dict() for c in self.children]
        return payload

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()


class _SpanContext:
    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, *exc) -> bool:
        self._tracer._pop(self._span)
        return False


class Tracer:
    """Collects span trees; thread-safe via per-thread span stacks."""

    enabled = True

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self._local = threading.local()
        self._roots: list[Span] = []
        self._lock = threading.Lock()

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str, **attrs) -> _SpanContext:
        """Open a span: ``with tracer.span("replay", case=case):``."""
        return _SpanContext(self, Span(name=name, attrs=attrs))

    def _push(self, span: Span) -> None:
        span.start = time.perf_counter() - self._epoch
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        span.duration = (time.perf_counter() - self._epoch) - span.start
        stack = self._stack()
        assert stack and stack[-1] is span, "unbalanced span nesting"
        stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self._roots.append(span)

    # -- export ------------------------------------------------------------
    @property
    def roots(self) -> list[Span]:
        with self._lock:
            return list(self._roots)

    def to_json(self) -> list[dict]:
        """The finished span trees as nested dictionaries."""
        return [root.to_dict() for root in self.roots]

    def to_chrome_trace(self) -> list[dict]:
        """Flat Chrome-trace ("ph": "X") events; microsecond timestamps."""
        events: list[dict] = []
        pid = os.getpid()
        for root in self.roots:
            for span in root.walk():
                events.append(
                    {
                        "name": span.name,
                        "ph": "X",
                        "ts": round(span.start * 1e6, 1),
                        "dur": round(span.duration * 1e6, 1),
                        "pid": pid,
                        "tid": 0,
                        "args": span.attrs,
                    }
                )
        return events

    def dumps(self, format: str = "json") -> str:
        if format == "chrome":
            return json.dumps(self.to_chrome_trace(), default=str)
        return json.dumps(self.to_json(), default=str, indent=2)


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer:
    """The disabled default: spans cost one method call, no clock reads."""

    enabled = False

    def span(self, name: str, **attrs) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    @property
    def roots(self) -> list:
        return []

    def to_json(self) -> list:
        return []

    def to_chrome_trace(self) -> list:
        return []

    def dumps(self, format: str = "json") -> str:
        return "[]"


NULL_TRACER = NullTracer()
