"""Exporters for the metrics registry and span tracer.

* :func:`to_prometheus` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, cumulative ``_bucket`` series with
  ``le`` labels, ``_sum``/``_count`` for histograms);
* :func:`to_json` — a snapshot dictionary (stable shape, documented in
  ``docs/observability.md``) for ``repro ... --metrics``;
* :func:`format_summary` — the human-readable table behind
  ``repro stats``;
* :func:`spans_to_otlp` / :func:`metrics_to_otlp` — OTLP/JSON
  (``resourceSpans`` / ``resourceMetrics``, the OpenTelemetry protocol's
  JSON encoding: hex trace/span ids, stringified uint64 nanos), built
  with the standard library only;
* :class:`OtlpExporter` — the ``--otlp DEST`` sink: JSON-lines file, or
  HTTP POST to a collector's ``/v1/traces`` + ``/v1/metrics``.
"""

from __future__ import annotations

import json
import time
from typing import TYPE_CHECKING, Optional

from repro.obs.metrics import Counter, Gauge, Histogram, LabelKey

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import Tracer


def _prom_labels(key: LabelKey, extra: str = "") -> str:
    parts = [f'{name}="{_escape(value)}"' for name, value in key]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def _escape(value: str) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def to_prometheus(registry: "MetricsRegistry") -> str:
    """The registry in Prometheus text exposition format."""
    lines: list[str] = []
    for instrument in registry.collect():
        name = instrument.name
        if instrument.help:
            lines.append(f"# HELP {name} {instrument.help}")
        lines.append(f"# TYPE {name} {instrument.kind}")
        if isinstance(instrument, (Counter, Gauge)):
            samples = instrument.samples() or {(): 0.0}
            for key, value in sorted(samples.items()):
                lines.append(f"{name}{_prom_labels(key)} {_format_value(value)}")
        elif isinstance(instrument, Histogram):
            for key, data in sorted(instrument.samples().items()):
                cumulative = 0
                for bound, count in zip(
                    instrument.buckets, data["buckets"]
                ):
                    cumulative += count
                    label = _prom_labels(key, f'le="{_format_value(bound)}"')
                    lines.append(f"{name}_bucket{label} {cumulative}")
                cumulative += data["buckets"][-1]
                label = _prom_labels(key, 'le="+Inf"')
                lines.append(f"{name}_bucket{label} {cumulative}")
                lines.append(
                    f"{name}_sum{_prom_labels(key)} {repr(data['sum'])}"
                )
                lines.append(
                    f"{name}_count{_prom_labels(key)} {data['count']}"
                )
    return "\n".join(lines) + "\n"


def to_json(registry: "MetricsRegistry") -> dict:
    """A JSON-serializable snapshot of every instrument.

    Shape::

        {"metric_name": {
            "type": "counter" | "gauge" | "histogram",
            "help": "...",
            "values": [{"labels": {...}, "value": 3}, ...]          # counter/gauge
            "series": [{"labels": {...}, "count": n, "sum": s,      # histogram
                        "p50": ..., "p95": ..., "max": ...,
                        "buckets": {"0.001": 2, ..., "+Inf": 0}}, ...]
        }}
    """
    snapshot: dict = {}
    for instrument in registry.collect():
        entry: dict = {"type": instrument.kind, "help": instrument.help}
        if isinstance(instrument, (Counter, Gauge)):
            entry["values"] = [
                {"labels": dict(key), "value": value}
                for key, value in sorted(instrument.samples().items())
            ]
        elif isinstance(instrument, Histogram):
            series = []
            for key, data in sorted(instrument.samples().items()):
                labels = dict(key)
                summary = instrument.summary(**labels)
                buckets = {
                    _format_value(bound): count
                    for bound, count in zip(instrument.buckets, data["buckets"])
                }
                buckets["+Inf"] = data["buckets"][-1]
                series.append(
                    {
                        "labels": labels,
                        "count": data["count"],
                        "sum": round(data["sum"], 9),
                        "p50": round(summary["p50"], 9),
                        "p95": round(summary["p95"], 9),
                        "p99": round(summary["p99"], 9),
                        "max": round(data["max"], 9),
                        "buckets": buckets,
                    }
                )
            entry["series"] = series
        snapshot[instrument.name] = entry
    return snapshot


def dumps_json(registry: "MetricsRegistry", indent: int = 2) -> str:
    return json.dumps(to_json(registry), indent=indent, sort_keys=True)


def format_summary(registry: "MetricsRegistry") -> str:
    """A human-readable telemetry digest (the body of ``repro stats``)."""
    lines: list[str] = ["telemetry summary:"]
    instruments = registry.collect()
    if not instruments:
        return "telemetry summary: (no metrics recorded)"
    for instrument in instruments:
        if isinstance(instrument, (Counter, Gauge)):
            samples = instrument.samples()
            if not samples:
                continue
            if list(samples) == [()]:
                lines.append(
                    f"  {instrument.name:<34} {_format_value(samples[()])}"
                )
            else:
                lines.append(f"  {instrument.name}")
                for key, value in sorted(samples.items()):
                    label = ", ".join(f"{k}={v}" for k, v in key) or "(all)"
                    lines.append(f"    {label:<32} {_format_value(value)}")
        elif isinstance(instrument, Histogram):
            for key, _data in sorted(instrument.samples().items()):
                labels = dict(key)
                s = instrument.summary(**labels)
                label = ", ".join(f"{k}={v}" for k, v in key)
                suffix = f"{{{label}}}" if label else ""
                lines.append(
                    f"  {instrument.name + suffix:<34} "
                    f"count={s['count']} sum={s['sum']:.4f} "
                    f"p50={s['p50']:.4f} p95={s['p95']:.4f} max={s['max']:.4f}"
                )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# OTLP/JSON (OpenTelemetry protocol, JSON encoding) — stdlib only.
#
# The shapes follow opentelemetry-proto's JSON mapping: trace/span ids
# are lowercase hex strings, uint64 nanosecond timestamps are encoded as
# strings, attributes are ``{"key": ..., "value": {"stringValue": ...}}``
# lists.  ``aggregationTemporality: 2`` is CUMULATIVE — what a scraped
# registry holds.

_OTLP_SCOPE = {"name": "repro.obs", "version": "1"}


def _otlp_value(value: object) -> dict:
    if isinstance(value, bool):
        return {"boolValue": value}
    if isinstance(value, int):
        return {"intValue": str(value)}
    if isinstance(value, float):
        return {"doubleValue": value}
    return {"stringValue": str(value)}


def _otlp_attributes(attrs: dict) -> list[dict]:
    return [
        {"key": str(key), "value": _otlp_value(value)}
        for key, value in attrs.items()
    ]


def _otlp_resource(service_name: str) -> dict:
    return {
        "attributes": [
            {"key": "service.name", "value": {"stringValue": service_name}}
        ]
    }


def _nanos(seconds: float) -> str:
    return str(max(0, int(seconds * 1e9)))


def spans_to_otlp(tracer: "Tracer", service_name: str = "repro") -> dict:
    """The tracer's finished spans as an OTLP/JSON ``resourceSpans`` doc.

    Span times are absolute (wall clock), anchored on the tracer's
    :attr:`~repro.obs.trace.Tracer.epoch_unix_s` — which is what lets a
    collector line up spans from the service loop, shard threads, and
    worker processes on one timeline.
    """
    epoch = getattr(tracer, "epoch_unix_s", 0.0)
    spans: list[dict] = []
    for root in tracer.roots:
        for span in root.walk():
            start_s = epoch + span.start
            record: dict = {
                "traceId": span.trace_id,
                "spanId": span.span_id,
                "name": span.name,
                "kind": 1,  # SPAN_KIND_INTERNAL
                "startTimeUnixNano": _nanos(start_s),
                "endTimeUnixNano": _nanos(start_s + span.duration),
            }
            if span.parent_id:
                record["parentSpanId"] = span.parent_id
            if span.attrs:
                record["attributes"] = _otlp_attributes(span.attrs)
            if span.links:
                record["links"] = [
                    {"traceId": link.trace_id, "spanId": link.span_id}
                    for link in span.links
                ]
            spans.append(record)
    return {
        "resourceSpans": [
            {
                "resource": _otlp_resource(service_name),
                "scopeSpans": [{"scope": _OTLP_SCOPE, "spans": spans}],
            }
        ]
    }


def _otlp_exemplars(data: dict, buckets: tuple) -> list[dict]:
    exemplars = []
    for index, exemplar in sorted((data.get("exemplars") or {}).items()):
        record = {
            "timeUnixNano": _nanos(exemplar.get("ts", 0.0)),
            "asDouble": exemplar["value"],
        }
        if exemplar.get("trace_id"):
            record["traceId"] = exemplar["trace_id"]
        if exemplar.get("span_id"):
            record["spanId"] = exemplar["span_id"]
        exemplars.append(record)
    return exemplars


def metrics_to_otlp(
    registry: "MetricsRegistry",
    service_name: str = "repro",
    now_unix_s: Optional[float] = None,
) -> dict:
    """The registry as an OTLP/JSON ``resourceMetrics`` document.

    Counters become monotonic cumulative sums, gauges become gauges,
    histograms become cumulative histogram data points — with any
    trace-id **exemplars** recorded on their buckets attached, so a
    latency bucket points at the concrete trace that landed in it.
    """
    now = time.time() if now_unix_s is None else now_unix_s
    stamp = _nanos(now)
    metrics: list[dict] = []
    for instrument in registry.collect():
        entry: dict = {
            "name": instrument.name,
            "description": instrument.help,
        }
        if isinstance(instrument, (Counter, Gauge)):
            points = [
                {
                    "attributes": _otlp_attributes(dict(key)),
                    "timeUnixNano": stamp,
                    "asDouble": value,
                }
                for key, value in sorted(instrument.samples().items())
            ]
            if isinstance(instrument, Counter):
                entry["sum"] = {
                    "dataPoints": points,
                    "aggregationTemporality": 2,
                    "isMonotonic": True,
                }
            else:
                entry["gauge"] = {"dataPoints": points}
        elif isinstance(instrument, Histogram):
            points = []
            for key, data in sorted(instrument.samples().items()):
                point = {
                    "attributes": _otlp_attributes(dict(key)),
                    "timeUnixNano": stamp,
                    "count": str(data["count"]),
                    "sum": data["sum"],
                    "bucketCounts": [str(n) for n in data["buckets"]],
                    "explicitBounds": list(instrument.buckets),
                    "max": data["max"],
                }
                exemplars = _otlp_exemplars(data, instrument.buckets)
                if exemplars:
                    point["exemplars"] = exemplars
                points.append(point)
            entry["histogram"] = {
                "dataPoints": points,
                "aggregationTemporality": 2,
            }
        metrics.append(entry)
    return {
        "resourceMetrics": [
            {
                "resource": _otlp_resource(service_name),
                "scopeMetrics": [{"scope": _OTLP_SCOPE, "metrics": metrics}],
            }
        ]
    }


class OtlpExporter:
    """The ``--otlp DEST`` sink for spans and metrics.

    ``DEST`` is either a file path — each export appends one OTLP/JSON
    document per line (``resourceSpans`` and ``resourceMetrics`` lines
    interleave; :func:`repro.obs.console.load_otlp_spans` reads them
    back) — or an ``http(s)://`` collector base URL, POSTed to the
    standard ``/v1/traces`` and ``/v1/metrics`` endpoints.
    """

    def __init__(self, destination: str, service_name: str = "repro"):
        self.destination = destination
        self.service_name = service_name
        self._is_http = destination.startswith(("http://", "https://"))

    def export(
        self,
        tracer: "Tracer | None" = None,
        registry: "MetricsRegistry | None" = None,
    ) -> int:
        """Export whatever was handed in; returns documents written."""
        written = 0
        if tracer is not None and getattr(tracer, "enabled", False):
            document = spans_to_otlp(tracer, self.service_name)
            if document["resourceSpans"][0]["scopeSpans"][0]["spans"]:
                self._emit(document, "/v1/traces")
                written += 1
        if registry is not None and getattr(registry, "enabled", False):
            document = metrics_to_otlp(registry, self.service_name)
            if document["resourceMetrics"][0]["scopeMetrics"][0]["metrics"]:
                self._emit(document, "/v1/metrics")
                written += 1
        return written

    def _emit(self, document: dict, endpoint: str) -> None:
        body = json.dumps(document, separators=(",", ":"), default=str)
        if self._is_http:
            self._post(endpoint, body)
        else:
            with open(self.destination, "a", encoding="utf-8") as sink:
                sink.write(body + "\n")

    def _post(self, endpoint: str, body: str) -> None:
        import urllib.request

        request = urllib.request.Request(
            self.destination.rstrip("/") + endpoint,
            data=body.encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            response.read()
