"""Exporters for the metrics registry.

* :func:`to_prometheus` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, cumulative ``_bucket`` series with
  ``le`` labels, ``_sum``/``_count`` for histograms);
* :func:`to_json` — a snapshot dictionary (stable shape, documented in
  ``docs/observability.md``) for ``repro ... --metrics``;
* :func:`format_summary` — the human-readable table behind
  ``repro stats``.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from repro.obs.metrics import Counter, Gauge, Histogram, LabelKey

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry


def _prom_labels(key: LabelKey, extra: str = "") -> str:
    parts = [f'{name}="{_escape(value)}"' for name, value in key]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def _escape(value: str) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def to_prometheus(registry: "MetricsRegistry") -> str:
    """The registry in Prometheus text exposition format."""
    lines: list[str] = []
    for instrument in registry.collect():
        name = instrument.name
        if instrument.help:
            lines.append(f"# HELP {name} {instrument.help}")
        lines.append(f"# TYPE {name} {instrument.kind}")
        if isinstance(instrument, (Counter, Gauge)):
            samples = instrument.samples() or {(): 0.0}
            for key, value in sorted(samples.items()):
                lines.append(f"{name}{_prom_labels(key)} {_format_value(value)}")
        elif isinstance(instrument, Histogram):
            for key, data in sorted(instrument.samples().items()):
                cumulative = 0
                for bound, count in zip(
                    instrument.buckets, data["buckets"]
                ):
                    cumulative += count
                    label = _prom_labels(key, f'le="{_format_value(bound)}"')
                    lines.append(f"{name}_bucket{label} {cumulative}")
                cumulative += data["buckets"][-1]
                label = _prom_labels(key, 'le="+Inf"')
                lines.append(f"{name}_bucket{label} {cumulative}")
                lines.append(
                    f"{name}_sum{_prom_labels(key)} {repr(data['sum'])}"
                )
                lines.append(
                    f"{name}_count{_prom_labels(key)} {data['count']}"
                )
    return "\n".join(lines) + "\n"


def to_json(registry: "MetricsRegistry") -> dict:
    """A JSON-serializable snapshot of every instrument.

    Shape::

        {"metric_name": {
            "type": "counter" | "gauge" | "histogram",
            "help": "...",
            "values": [{"labels": {...}, "value": 3}, ...]          # counter/gauge
            "series": [{"labels": {...}, "count": n, "sum": s,      # histogram
                        "p50": ..., "p95": ..., "max": ...,
                        "buckets": {"0.001": 2, ..., "+Inf": 0}}, ...]
        }}
    """
    snapshot: dict = {}
    for instrument in registry.collect():
        entry: dict = {"type": instrument.kind, "help": instrument.help}
        if isinstance(instrument, (Counter, Gauge)):
            entry["values"] = [
                {"labels": dict(key), "value": value}
                for key, value in sorted(instrument.samples().items())
            ]
        elif isinstance(instrument, Histogram):
            series = []
            for key, data in sorted(instrument.samples().items()):
                labels = dict(key)
                summary = instrument.summary(**labels)
                buckets = {
                    _format_value(bound): count
                    for bound, count in zip(instrument.buckets, data["buckets"])
                }
                buckets["+Inf"] = data["buckets"][-1]
                series.append(
                    {
                        "labels": labels,
                        "count": data["count"],
                        "sum": round(data["sum"], 9),
                        "p50": round(summary["p50"], 9),
                        "p95": round(summary["p95"], 9),
                        "max": round(data["max"], 9),
                        "buckets": buckets,
                    }
                )
            entry["series"] = series
        snapshot[instrument.name] = entry
    return snapshot


def dumps_json(registry: "MetricsRegistry", indent: int = 2) -> str:
    return json.dumps(to_json(registry), indent=indent, sort_keys=True)


def format_summary(registry: "MetricsRegistry") -> str:
    """A human-readable telemetry digest (the body of ``repro stats``)."""
    lines: list[str] = ["telemetry summary:"]
    instruments = registry.collect()
    if not instruments:
        return "telemetry summary: (no metrics recorded)"
    for instrument in instruments:
        if isinstance(instrument, (Counter, Gauge)):
            samples = instrument.samples()
            if not samples:
                continue
            if list(samples) == [()]:
                lines.append(
                    f"  {instrument.name:<34} {_format_value(samples[()])}"
                )
            else:
                lines.append(f"  {instrument.name}")
                for key, value in sorted(samples.items()):
                    label = ", ".join(f"{k}={v}" for k, v in key) or "(all)"
                    lines.append(f"    {label:<32} {_format_value(value)}")
        elif isinstance(instrument, Histogram):
            for key, _data in sorted(instrument.samples().items()):
                labels = dict(key)
                s = instrument.summary(**labels)
                label = ", ".join(f"{k}={v}" for k, v in key)
                suffix = f"{{{label}}}" if label else ""
                lines.append(
                    f"  {instrument.name + suffix:<34} "
                    f"count={s['count']} sum={s['sum']:.4f} "
                    f"p50={s['p50']:.4f} p95={s['p95']:.4f} max={s['max']:.4f}"
                )
    return "\n".join(lines)
