"""A dependency-free metrics registry: counters, gauges, histograms.

The instruments follow the Prometheus data model (monotonic counters,
settable gauges, fixed-bucket histograms with cumulative buckets) but
depend only on the standard library, because the audit pipeline must run
in air-gapped compliance environments.  Three design rules keep the hot
paths honest:

* **zero-cost when disabled** — :data:`NULL_REGISTRY` hands out shared
  no-op instruments whose methods do nothing; library callers that never
  ask for telemetry pay only an attribute load and an empty call;
* **label sets are kwargs** — ``counter.inc(kind="invalid-execution")``
  keeps one time series per distinct label set, like
  ``infringements_total{kind="invalid-execution"}``;
* **mergeable** — :meth:`MetricsRegistry.merge` folds a snapshot from a
  worker process back into the parent registry, which is how
  :mod:`repro.core.parallel` reports per-worker counters.

Quantiles (p50/p95) are estimated from the histogram buckets the way
Prometheus' ``histogram_quantile`` does — linear interpolation inside
the bucket holding the quantile — so they are approximations bounded by
the bucket resolution; ``max`` is tracked exactly.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from contextlib import contextmanager
from typing import Iterator, Optional, Sequence

#: The canonical key of one label set: sorted (name, value) pairs.
LabelKey = tuple[tuple[str, str], ...]

#: Default latency buckets (seconds): 100us .. ~100s, roughly x4 steps.
DEFAULT_TIME_BUCKETS = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0
)

#: Default size buckets (counts): frontier sizes, silent states, etc.
DEFAULT_SIZE_BUCKETS = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 5000.0, 25000.0, 100000.0,
)


def _label_key(labels: dict[str, str]) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _CounterSeries:
    """One pre-bound label set of a :class:`Counter`.

    Hot paths that increment the same series per event (per replayed
    entry, per ingest) bind once and skip the per-call label-key build;
    the increment itself stays under the parent counter's lock, so
    bound and kwargs-style updates interleave safely.
    """

    __slots__ = ("_counter", "_key")

    def __init__(self, counter: "Counter", key: LabelKey):
        self._counter = counter
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        counter = self._counter
        with counter._lock:
            counter._values[self._key] = (
                counter._values.get(self._key, 0.0) + amount
            )


class Counter:
    """A monotonically increasing value, optionally split by labels."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._values: dict[LabelKey, float] = {}
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def series(self, **labels: str) -> _CounterSeries:
        """A pre-bound handle for per-event increments of one label set."""
        return _CounterSeries(self, _label_key(labels))

    def value(self, **labels: str) -> float:
        return self._values.get(_label_key(labels), 0.0)

    @property
    def total(self) -> float:
        """The sum over every label set."""
        return sum(self._values.values())

    def samples(self) -> dict[LabelKey, float]:
        with self._lock:
            return dict(self._values)

    def _merge(self, samples: dict[LabelKey, float]) -> None:
        with self._lock:
            for key, value in samples.items():
                self._values[key] = self._values.get(key, 0.0) + value


class Gauge:
    """A value that can go up and down (e.g. currently open cases)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._values: dict[LabelKey, float] = {}
        self._lock = threading.Lock()

    def set(self, value: float, **labels: str) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> dict[LabelKey, float]:
        with self._lock:
            return dict(self._values)

    def _merge(self, samples: dict[LabelKey, float]) -> None:
        # Gauges from workers are point-in-time; last write wins.
        with self._lock:
            self._values.update(samples)


class _HistogramSeries:
    """The accumulators of one label set of a histogram."""

    __slots__ = ("bucket_counts", "count", "sum", "max", "exemplars")

    def __init__(self, n_buckets: int):
        self.bucket_counts = [0] * n_buckets  # non-cumulative, +Inf last
        self.count = 0
        self.sum = 0.0
        self.max = 0.0
        # bucket index -> the latest exemplar that landed there:
        # {"value", "trace_id", "span_id", "ts"} (OTel-style exemplars;
        # only populated via observe_with_exemplar, i.e. when tracing
        # is on — the plain observe() path never pays for them).
        self.exemplars: dict[int, dict] = {}


class Histogram:
    """A fixed-bucket histogram with p50/p95/max summaries.

    *buckets* are the finite upper bounds, in increasing order; a final
    +Inf bucket is implicit.  Values land in the first bucket whose
    bound is >= the value (cumulative semantics at export time).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(
                f"histogram {name} needs increasing, non-empty buckets"
            )
        self.name = name
        self.help = help
        self.buckets = tuple(float(b) for b in buckets)
        self._series: dict[LabelKey, _HistogramSeries] = {}
        self._lock = threading.Lock()

    def _series_for(self, key: LabelKey) -> _HistogramSeries:
        series = self._series.get(key)
        if series is None:
            series = _HistogramSeries(len(self.buckets) + 1)
            self._series[key] = series
        return series

    def observe(self, value: float, **labels: str) -> None:
        # bisect_left finds the first bound >= value (+Inf past the end),
        # matching the linear scan it replaced.
        index = bisect_left(self.buckets, value)
        with self._lock:
            series = self._series_for(_label_key(labels))
            series.bucket_counts[index] += 1
            series.count += 1
            series.sum += value
            if value > series.max:
                series.max = value

    def series(self, **labels: str) -> "_BoundHistogram":
        """A pre-bound handle for per-event observations of one label set."""
        return _BoundHistogram(self, _label_key(labels))

    def observe_with_exemplar(
        self,
        value: float,
        trace_id: str,
        span_id: str = "",
        **labels: str,
    ) -> None:
        """Observe *value* and attach a trace-id exemplar to its bucket.

        The exemplar (latest per bucket) ties a latency bucket back to a
        concrete trace — "p99 got slower, *this* case is why".  Callers
        use it only when tracing is enabled, so the plain hot path never
        reads the wall clock for exemplar timestamps.
        """
        key = _label_key(labels)
        index = bisect_left(self.buckets, value)
        now = time.time()
        with self._lock:
            series = self._series_for(key)
            series.bucket_counts[index] += 1
            series.count += 1
            series.sum += value
            if value > series.max:
                series.max = value
            series.exemplars[index] = {
                "value": value,
                "trace_id": trace_id,
                "span_id": span_id,
                "ts": now,
            }

    @contextmanager
    def time(self, **labels: str) -> Iterator[None]:
        """Observe the wall-clock duration of the ``with`` body (seconds)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - start, **labels)

    # -- summaries ---------------------------------------------------------
    def count(self, **labels: str) -> int:
        series = self._series.get(_label_key(labels))
        return series.count if series else 0

    def sum(self, **labels: str) -> float:
        series = self._series.get(_label_key(labels))
        return series.sum if series else 0.0

    def quantile(self, q: float, **labels: str) -> float:
        """Bucket-interpolated quantile estimate (Prometheus-style)."""
        series = self._series.get(_label_key(labels))
        if series is None or series.count == 0:
            return 0.0
        rank = q * series.count
        cumulative = 0
        lower = 0.0
        for i, bound in enumerate(self.buckets):
            in_bucket = series.bucket_counts[i]
            if cumulative + in_bucket >= rank:
                if in_bucket == 0:
                    return bound
                fraction = (rank - cumulative) / in_bucket
                return lower + (bound - lower) * fraction
            cumulative += in_bucket
            lower = bound
        return series.max  # quantile fell in the +Inf bucket

    def summary(self, **labels: str) -> dict[str, float]:
        series = self._series.get(_label_key(labels))
        if series is None:
            return {
                "count": 0, "sum": 0.0,
                "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0,
            }
        return {
            "count": series.count,
            "sum": series.sum,
            "p50": self.quantile(0.50, **labels),
            "p95": self.quantile(0.95, **labels),
            "p99": self.quantile(0.99, **labels),
            "max": series.max,
        }

    def samples(self) -> dict[LabelKey, dict]:
        with self._lock:
            return {
                key: {
                    "buckets": list(series.bucket_counts),
                    "count": series.count,
                    "sum": series.sum,
                    "max": series.max,
                    "exemplars": {
                        index: dict(exemplar)
                        for index, exemplar in series.exemplars.items()
                    },
                }
                for key, series in self._series.items()
            }

    def _merge(self, samples: dict[LabelKey, dict]) -> None:
        with self._lock:
            for key, data in samples.items():
                series = self._series_for(key)
                incoming = data["buckets"]
                if len(incoming) != len(series.bucket_counts):
                    raise ValueError(
                        f"histogram {self.name}: bucket layout mismatch on merge"
                    )
                for i, n in enumerate(incoming):
                    series.bucket_counts[i] += n
                series.count += data["count"]
                series.sum += data["sum"]
                if data["max"] > series.max:
                    series.max = data["max"]
                for index, exemplar in (data.get("exemplars") or {}).items():
                    index = int(index)
                    held = series.exemplars.get(index)
                    if held is None or exemplar.get("ts", 0) >= held.get("ts", 0):
                        series.exemplars[index] = dict(exemplar)


class _BoundHistogram:
    """One pre-bound label set of a :class:`Histogram` (see
    :class:`_CounterSeries` for the rationale)."""

    __slots__ = ("_histogram", "_series")

    def __init__(self, histogram: Histogram, key: LabelKey):
        self._histogram = histogram
        with histogram._lock:
            self._series = histogram._series_for(key)

    def observe(self, value: float) -> None:
        histogram = self._histogram
        index = bisect_left(histogram.buckets, value)
        series = self._series
        with histogram._lock:
            series.bucket_counts[index] += 1
            series.count += 1
            series.sum += value
            if value > series.max:
                series.max = value


@contextmanager
def timed(histogram: "Histogram | NullHistogram", **labels: str) -> Iterator[None]:
    """``with timed(h):`` — observe the body's duration into *histogram*.

    With a :class:`NullHistogram` the clock is never read, so the
    disabled path stays free of syscalls.
    """
    if isinstance(histogram, NullHistogram):
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        histogram.observe(time.perf_counter() - start, **labels)


class MetricsRegistry:
    """Get-or-create home of every instrument of one process/component."""

    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, factory, kind: str):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory()
                self._instruments[name] = instrument
            elif instrument.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {instrument.kind}, "
                    f"not {kind}"
                )
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, lambda: Counter(name, help), "counter")

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name, help), "gauge")

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, help, buckets), "histogram"
        )

    def collect(self) -> list[Counter | Gauge | Histogram]:
        """Every registered instrument, in registration order."""
        with self._lock:
            return list(self._instruments.values())

    def get(self, name: str) -> Optional[Counter | Gauge | Histogram]:
        return self._instruments.get(name)

    # -- worker merging ----------------------------------------------------
    def snapshot(self) -> dict:
        """A picklable dump of every instrument (for worker hand-back)."""
        dump: dict = {}
        for instrument in self.collect():
            entry: dict = {
                "kind": instrument.kind,
                "help": instrument.help,
                "samples": {
                    "|".join(f"{k}={v}" for k, v in key): value
                    for key, value in instrument.samples().items()
                },
            }
            if isinstance(instrument, Histogram):
                entry["buckets"] = list(instrument.buckets)
            dump[instrument.name] = entry
        return dump

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) into this
        registry: counters and histograms add, gauges take the last value."""
        for name, entry in snapshot.items():
            samples = {
                _parse_label_key(text): value
                for text, value in entry["samples"].items()
            }
            kind = entry["kind"]
            if kind == "counter":
                self.counter(name, entry.get("help", ""))._merge(samples)
            elif kind == "gauge":
                self.gauge(name, entry.get("help", ""))._merge(samples)
            elif kind == "histogram":
                self.histogram(
                    name,
                    entry.get("help", ""),
                    buckets=entry.get("buckets", DEFAULT_TIME_BUCKETS),
                )._merge(samples)
            else:  # pragma: no cover - future-proofing
                raise ValueError(f"unknown instrument kind {kind!r}")


def _parse_label_key(text: str) -> LabelKey:
    if not text:
        return ()
    pairs = []
    for part in text.split("|"):
        name, _, value = part.partition("=")
        pairs.append((name, value))
    return tuple(sorted(pairs))


# ---------------------------------------------------------------------------
# The disabled path: shared no-op instruments.


class NullCounter:
    kind = "counter"
    name = "<null>"
    help = ""

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        pass

    def value(self, **labels: str) -> float:
        return 0.0

    total = 0.0

    def series(self, **labels: str) -> "NullCounter":
        return self

    def samples(self) -> dict:
        return {}


class NullGauge:
    kind = "gauge"
    name = "<null>"
    help = ""

    def set(self, value: float, **labels: str) -> None:
        pass

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        pass

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        pass

    def value(self, **labels: str) -> float:
        return 0.0

    def samples(self) -> dict:
        return {}


class _NullTimer:
    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_TIMER = _NullTimer()


class NullHistogram:
    kind = "histogram"
    name = "<null>"
    help = ""
    buckets = ()

    def observe(self, value: float, **labels: str) -> None:
        pass

    def observe_with_exemplar(
        self, value: float, trace_id: str, span_id: str = "", **labels: str
    ) -> None:
        pass

    def series(self, **labels: str) -> "NullHistogram":
        return self

    def time(self, **labels: str) -> _NullTimer:
        return _NULL_TIMER

    def count(self, **labels: str) -> int:
        return 0

    def sum(self, **labels: str) -> float:
        return 0.0

    def quantile(self, q: float, **labels: str) -> float:
        return 0.0

    def summary(self, **labels: str) -> dict[str, float]:
        return {
            "count": 0, "sum": 0.0,
            "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0,
        }

    def samples(self) -> dict:
        return {}


_NULL_COUNTER = NullCounter()
_NULL_GAUGE = NullGauge()
_NULL_HISTOGRAM = NullHistogram()


class NullRegistry:
    """The no-op registry: every request returns a shared null instrument.

    This is what library callers get when they do not ask for telemetry;
    instrument method calls are empty-bodied, no lock is taken, no clock
    is read.
    """

    enabled = False

    def counter(self, name: str, help: str = "") -> NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, help: str = "") -> NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, help: str = "", buckets=()) -> NullHistogram:
        return _NULL_HISTOGRAM

    def collect(self) -> list:
        return []

    def get(self, name: str) -> None:
        return None

    def snapshot(self) -> dict:
        return {}

    def merge(self, snapshot: dict) -> None:
        pass


NULL_REGISTRY = NullRegistry()

# ---------------------------------------------------------------------------
# Process-wide default registry (for applications; the library default
# remains NULL_REGISTRY via Telemetry.disabled()).

_default_registry = MetricsRegistry()
_default_lock = threading.Lock()


def default_registry() -> MetricsRegistry:
    """The process-wide shared registry for application callers."""
    return _default_registry


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-wide registry (e.g. in tests); returns the old."""
    global _default_registry
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
        return previous
