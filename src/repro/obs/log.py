"""Structured audit logging: JSON-lines events over stdlib ``logging``.

Every telemetry event of the purpose-control pipeline is one JSON object
per line, with a **stable vocabulary** so downstream collectors (and the
regulator-facing transparency tooling Kiesel & Grünewald call for) can
key on event names without parsing prose:

==================  =====================================================
event               emitted when
==================  =====================================================
``case.audited``    the auditor finished one case (fields: case, purpose,
                    outcome, entries, infringements, duration_s)
``entry.replayed``  Algorithm 1 replayed one log entry (fields: index,
                    role, task, status, outcome, frontier, duration_s)
``weaknext.computed``  the WeakNext engine computed (not cache-hit) one
                    frontier (fields: silent_states, results, duration_s)
``frontier.grown``  a replay step increased the configuration frontier
                    (fields: index, size, previous)
``infringement.raised``  any infringement was recorded (fields: case,
                    kind, detail)
``monitor.sweep``   the online monitor swept temporal constraints
                    (fields: checked, violations, duration_s)
``worker.init``     a parallel-audit worker initialized its checkers
                    (fields: pid, purposes)
``case.failed``     a case's replay was contained instead of aborting the
                    run (fields: case, kind, error, error_type, retries)
``worker.lost``     a worker process died and its in-flight jobs were
                    requeued (fields: lost_jobs, attempt)
``entry.quarantined``  a raw record failed validation at ingestion and
                    went to the dead-letter collection (fields: source,
                    position, reason)
``automaton.compiled``  a purpose automaton was (re)compiled (fields:
                    purpose, states, transitions, duration_s)
``automaton.checkpoint``  newly materialized automaton states were
                    persisted mid-audit (fields: purpose, states,
                    transitions, path)
``automaton.table_compiled``  an automaton was flattened into a dense
                    transition table (fields: purpose, states, symbols,
                    pool, duration_s)
``compile.artifact_invalid``  a persisted automaton artifact was
                    rejected (version/fingerprint mismatch, truncation)
                    and will be recompiled transparently (fields: path,
                    reason, detail)
``lint.run``        the static verifier linted a set of processes
                    (fields: processes, errors, warnings, infos,
                    duration_s)
``lint.preflight_unsound``  the auditor's preflight found a purpose
                    statically unsound and quarantined its cases
                    (fields: purpose, process, codes)
``serve.started``   the streaming audit service began accepting entry
                    streams (fields: host, port, http_port, shards)
``serve.client``    a client connected to or disconnected from the
                    streaming service (fields: peer, phase, entries)
``serve.flush``     buffered entries were flushed to the audit store in
                    one batch (fields: entries, duration_s)
``serve.drained``   the service drained: shards idle, store flushed,
                    automata checkpointed (fields: entries, cases)
``case.quarantined``  the streaming service took one case out of
                    rotation (fields: case, kind, detail)
``serve.wal_commit``  buffered write-ahead-log records were fsynced — the
                    durability barrier behind the ``sync`` op (fields:
                    records)
``serve.wal_retired``  WAL segments wholly covered by a committed store
                    flush were deleted (fields: shard, upto, segments)
``serve.recovered``  a restarted service rebuilt in-flight state from the
                    store + WAL delta (fields: store_entries, wal_records,
                    replayed, duplicates, cases, torn_segments,
                    duration_s)
``serve.shard_restarted``  the supervisor replaced a crashed or hung
                    shard, replaying its cases from durable history
                    (fields: shard, reason, victim, cases, entries)
``serve.shard_reassigned``  a shard exhausted its restart budget and its
                    cases were re-homed through the consistent-hash ring
                    (fields: shard, reason, cases)
``serve.overload``  a shard's admission level changed (ok/busy/shed);
                    emitted on transitions only (fields: shard, level,
                    previous, queue_depth)
==================  =====================================================

The logger is plain :mod:`logging` under the hood (logger name
``repro.obs``), so applications can route events through their existing
handler tree; :func:`json_lines_logger` is the batteries-included
constructor writing straight to a stream or file.  Like the metrics
registry, the disabled default (:data:`NULL_EVENTS`) is a shared no-op.
"""

from __future__ import annotations

import io
import itertools
import json
import logging
import time
from pathlib import Path
from typing import Optional, TextIO

# -- the event vocabulary ----------------------------------------------------
CASE_AUDITED = "case.audited"
ENTRY_REPLAYED = "entry.replayed"
WEAKNEXT_COMPUTED = "weaknext.computed"
FRONTIER_GROWN = "frontier.grown"
INFRINGEMENT_RAISED = "infringement.raised"
MONITOR_SWEEP = "monitor.sweep"
WORKER_INIT = "worker.init"
CASE_FAILED = "case.failed"
WORKER_LOST = "worker.lost"
ENTRY_QUARANTINED = "entry.quarantined"
AUTOMATON_COMPILED = "automaton.compiled"
AUTOMATON_CHECKPOINT = "automaton.checkpoint"
AUTOMATON_TABLE_COMPILED = "automaton.table_compiled"
ARTIFACT_INVALID = "compile.artifact_invalid"
LINT_RUN = "lint.run"
PREFLIGHT_UNSOUND = "lint.preflight_unsound"
SERVE_STARTED = "serve.started"
SERVE_DRAINED = "serve.drained"
SERVE_FLUSH = "serve.flush"
SERVE_CLIENT = "serve.client"
CASE_QUARANTINED = "case.quarantined"
SERVE_WAL_COMMIT = "serve.wal_commit"
SERVE_WAL_RETIRED = "serve.wal_retired"
SERVE_RECOVERED = "serve.recovered"
SERVE_SHARD_RESTARTED = "serve.shard_restarted"
SERVE_SHARD_REASSIGNED = "serve.shard_reassigned"
SERVE_OVERLOAD = "serve.overload"
CONTROL_CONFIG_LOADED = "control.config_loaded"
CONTROL_REQUEUE = "control.requeue"
CONTROL_DISMISS = "control.dismiss"
CONTROL_REAUDIT = "control.reaudit"

EVENT_VOCABULARY = frozenset(
    {
        CASE_AUDITED,
        ENTRY_REPLAYED,
        WEAKNEXT_COMPUTED,
        FRONTIER_GROWN,
        INFRINGEMENT_RAISED,
        MONITOR_SWEEP,
        WORKER_INIT,
        CASE_FAILED,
        WORKER_LOST,
        ENTRY_QUARANTINED,
        AUTOMATON_COMPILED,
        AUTOMATON_CHECKPOINT,
        AUTOMATON_TABLE_COMPILED,
        ARTIFACT_INVALID,
        LINT_RUN,
        PREFLIGHT_UNSOUND,
        SERVE_STARTED,
        SERVE_DRAINED,
        SERVE_FLUSH,
        SERVE_CLIENT,
        CASE_QUARANTINED,
        SERVE_WAL_COMMIT,
        SERVE_WAL_RETIRED,
        SERVE_RECOVERED,
        SERVE_SHARD_RESTARTED,
        SERVE_SHARD_REASSIGNED,
        SERVE_OVERLOAD,
        CONTROL_CONFIG_LOADED,
        CONTROL_REQUEUE,
        CONTROL_DISMISS,
        CONTROL_REAUDIT,
    }
)

LOGGER_NAME = "repro.obs"


class JsonLinesFormatter(logging.Formatter):
    """Formats a record carrying ``record.event``/``record.fields`` as JSON."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict = {
            "ts": round(record.created, 6),
            "event": getattr(record, "event", record.getMessage()),
        }
        payload.update(getattr(record, "fields", {}))
        return json.dumps(payload, default=str, separators=(",", ":"))


class EventLogger:
    """Emits vocabulary events as structured records on a stdlib logger."""

    enabled = True

    def __init__(self, logger: Optional[logging.Logger] = None):
        self._logger = logger or logging.getLogger(LOGGER_NAME)

    @property
    def logger(self) -> logging.Logger:
        return self._logger

    def emit(self, event: str, **fields) -> None:
        """Log one structured event (unknown names are allowed but the
        stable vocabulary above is what collectors should rely on)."""
        self._logger.info(
            event, extra={"event": event, "fields": fields}
        )


class NullEventLogger:
    """The disabled default: ``emit`` is an empty method."""

    enabled = False
    logger = None

    def emit(self, event: str, **fields) -> None:
        pass


NULL_EVENTS = NullEventLogger()


def json_lines_logger(
    destination: "TextIO | str | Path",
    *,
    name: str = LOGGER_NAME,
) -> EventLogger:
    """An :class:`EventLogger` writing JSON lines to a stream or file path.

    The underlying stdlib logger is configured with exactly one handler
    for *destination* (propagation is disabled so events do not leak into
    the application's root handlers twice).
    """
    if isinstance(destination, (str, Path)):
        handler: logging.Handler = logging.FileHandler(
            str(destination), encoding="utf-8"
        )
    else:
        handler = logging.StreamHandler(destination)
    handler.setFormatter(JsonLinesFormatter())
    logger = logging.getLogger(name)
    logger.setLevel(logging.INFO)
    logger.propagate = False
    for existing in list(logger.handlers):
        logger.removeHandler(existing)
        existing.close()
    logger.addHandler(handler)
    return EventLogger(logger)


class MemoryEventLog:
    """An in-memory JSONL sink, mainly for tests and ``repro stats``."""

    _instances = itertools.count()

    def __init__(self, name: Optional[str] = None):
        # Unique logger name per instance: stdlib loggers are process-wide
        # singletons, and two sinks sharing one would steal each other's
        # handler.
        if name is None:
            name = f"{LOGGER_NAME}.memory{next(self._instances)}"
        self._buffer = io.StringIO()
        self.events = json_lines_logger(self._buffer, name=name)

    def records(self) -> list[dict]:
        """Every emitted event, parsed back from its JSON line."""
        return [
            json.loads(line)
            for line in self._buffer.getvalue().splitlines()
            if line.strip()
        ]

    def named(self, event: str) -> list[dict]:
        return [r for r in self.records() if r.get("event") == event]


def utcnow_s() -> float:
    """Seconds since the epoch (separated out for test monkeypatching)."""
    return time.time()
