"""Operator rendering for the observability CLI.

Two consumers live here, both pure functions over plain data so they
test without a terminal or a socket:

* ``repro trace <case-id>`` — :func:`load_otlp_spans` reads the
  JSON-lines file an :class:`~repro.obs.export.OtlpExporter` wrote,
  :func:`case_trace_ids` finds the case's trace, and
  :func:`render_trace` draws the span tree with per-span offsets and
  durations;
* ``repro top`` — :class:`TopSampler` polls a running service's
  ``/healthz`` + ``/metrics.json`` (the fetcher is injected: the CLI
  passes urllib, tests pass a dict lookup) and renders per-shard
  throughput, queue depth, in-flight cases, and p50/p99 ingest latency.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Iterable, Optional


# -- OTLP span loading -------------------------------------------------------
def _attr_value(value: dict) -> object:
    """Invert :func:`repro.obs.export._otlp_value`."""
    if "stringValue" in value:
        return value["stringValue"]
    if "intValue" in value:
        return int(value["intValue"])
    if "doubleValue" in value:
        return value["doubleValue"]
    if "boolValue" in value:
        return value["boolValue"]
    return None


def _normalize_span(record: dict) -> dict:
    start = int(record.get("startTimeUnixNano", "0")) / 1e9
    end = int(record.get("endTimeUnixNano", "0")) / 1e9
    return {
        "trace_id": record.get("traceId", ""),
        "span_id": record.get("spanId", ""),
        "parent_id": record.get("parentSpanId", ""),
        "name": record.get("name", ""),
        "start_unix_s": start,
        "duration_s": max(0.0, end - start),
        "attrs": {
            item["key"]: _attr_value(item.get("value", {}))
            for item in record.get("attributes", [])
        },
        "links": [
            {
                "trace_id": link.get("traceId", ""),
                "span_id": link.get("spanId", ""),
            }
            for link in record.get("links", [])
        ],
    }


def spans_from_otlp(document: dict) -> list[dict]:
    """Normalized span dicts from one OTLP ``resourceSpans`` document."""
    spans: list[dict] = []
    for resource in document.get("resourceSpans", []):
        for scope in resource.get("scopeSpans", []):
            for record in scope.get("spans", []):
                spans.append(_normalize_span(record))
    return spans


def load_otlp_spans(path: str) -> list[dict]:
    """Every span in a JSON-lines OTLP export file.

    ``resourceMetrics`` lines (the exporter interleaves them) and blank
    lines are skipped; a malformed line raises — an export file that
    does not parse should fail loudly, not render a partial trace.
    """
    spans: list[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            document = json.loads(line)
            if "resourceSpans" in document:
                spans.extend(spans_from_otlp(document))
    return spans


def case_trace_ids(spans: Iterable[dict], case: str) -> list[str]:
    """Trace ids that carry spans of *case* (ingest order preserved)."""
    seen: dict[str, None] = {}
    for span in spans:
        if span["attrs"].get("case") == case and span["trace_id"]:
            seen.setdefault(span["trace_id"], None)
    return list(seen)


# -- span-tree rendering -----------------------------------------------------
def _format_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.2f}ms"


def _format_attrs(attrs: dict, skip: tuple[str, ...] = ()) -> str:
    parts = [
        f"{key}={value}" for key, value in attrs.items() if key not in skip
    ]
    return "  " + " ".join(parts) if parts else ""


def render_trace(spans: Iterable[dict], trace_id: str) -> str:
    """The trace's span tree, one line per span, ASCII branches.

    Spans reference parents by id (they may have been recorded on
    different threads or processes), so the tree is rebuilt here; a
    span whose parent is absent from the export (e.g. the client-side
    remote parent) becomes a root annotated with ``remote parent``.
    """
    members = [s for s in spans if s["trace_id"] == trace_id]
    if not members:
        return f"trace {trace_id}: no spans found"
    members.sort(key=lambda s: (s["start_unix_s"], s["name"]))
    by_id = {s["span_id"]: s for s in members}
    children: dict[str, list[dict]] = {}
    roots: list[dict] = []
    for span in members:
        parent = span["parent_id"]
        if parent and parent in by_id:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)
    t0 = min(s["start_unix_s"] for s in members)
    end = max(s["start_unix_s"] + s["duration_s"] for s in members)
    cases = sorted(
        {
            str(s["attrs"]["case"])
            for s in members
            if s["attrs"].get("case") is not None
        }
    )
    header = f"trace {trace_id}"
    if cases:
        header += f" · case {', '.join(cases)}"
    header += f" · {len(members)} spans · {_format_ms(end - t0)}"
    lines = [header]

    def emit(span: dict, prefix: str, branch: str, last: bool) -> None:
        offset = _format_ms(span["start_unix_s"] - t0)
        note = ""
        if span["parent_id"] and span["parent_id"] not in by_id:
            note = "  (remote parent)"
        links = span.get("links") or []
        if links:
            note += f"  (+{len(links)} linked traces)"
        lines.append(
            f"{prefix}{branch}{span['name']}  @{offset} "
            f"+{_format_ms(span['duration_s'])}"
            f"{_format_attrs(span['attrs'])}{note}"
        )
        kids = children.get(span["span_id"], [])
        child_prefix = prefix + ("   " if last else "|  ")
        if branch == "":
            child_prefix = prefix
        for index, kid in enumerate(kids):
            kid_last = index == len(kids) - 1
            emit(kid, child_prefix, "`- " if kid_last else "|- ", kid_last)

    for index, root in enumerate(roots):
        emit(root, "", "", index == len(roots) - 1)
    return "\n".join(lines)


def render_case(spans: list[dict], case: str) -> str:
    """Every trace that touched *case*, rendered (the ``repro trace`` body)."""
    trace_ids = case_trace_ids(spans, case)
    if not trace_ids:
        return f"case {case!r}: no trace found in the export"
    return "\n\n".join(render_trace(spans, tid) for tid in trace_ids)


# -- live service sampling (`repro top`) -------------------------------------
#: ``fetch(path) -> parsed JSON`` against the service's HTTP endpoint.
Fetcher = Callable[[str], dict]


class TopSampler:
    """Samples a running service and renders throughput deltas.

    Rates are computed between consecutive :meth:`sample` calls; the
    first render shows absolute numbers only.  The fetcher (and the
    clock, for tests) are injected.
    """

    def __init__(self, fetch: Fetcher):
        self._fetch = fetch
        self._prev: Optional[dict] = None

    def sample(self, now: Optional[float] = None) -> dict:
        health = self._fetch("/healthz")
        metrics = self._fetch("/metrics.json")
        ingest = metrics.get("serve_ingest_seconds", {}).get("series") or []
        latency = ingest[0] if ingest else {}
        # Daemons predating the control plane have no /api/ mount; the
        # per-tenant section simply disappears rather than erroring.
        try:
            tenants = self._fetch("/api/v1/tenants").get("tenants")
        except Exception:
            tenants = None
        return {
            "t": time.monotonic() if now is None else now,
            "entries_received": health.get("entries_received", 0),
            "quarantined": health.get("quarantined_cases", 0),
            "draining": health.get("draining", False),
            "shards": health.get("shard_detail", {}),
            "tenants": tenants,
            "p50_s": latency.get("p50", 0.0),
            "p99_s": latency.get("p99", 0.0),
        }

    @staticmethod
    def _rate(delta: float, seconds: float) -> str:
        if seconds <= 0:
            return "-"
        return f"{delta / seconds:.1f}/s"

    def render(self, now: Optional[float] = None) -> str:
        current = self.sample(now=now)
        previous, self._prev = self._prev, current
        elapsed = current["t"] - previous["t"] if previous else 0.0
        total_rate = (
            self._rate(
                current["entries_received"] - previous["entries_received"],
                elapsed,
            )
            if previous
            else "-"
        )
        state = "draining" if current["draining"] else "serving"
        lines = [
            f"repro top — {state} · entries {current['entries_received']} "
            f"({total_rate}) · quarantined {current['quarantined']} · "
            f"ingest p50 {_format_ms(current['p50_s'])} "
            f"p99 {_format_ms(current['p99_s'])}",
            f"{'shard':<12}{'queue':>7}{'inflight':>10}"
            f"{'entries':>10}{'rate':>10}",
        ]
        for name in sorted(current["shards"]):
            shard = current["shards"][name]
            rate = "-"
            if previous and name in previous["shards"]:
                rate = self._rate(
                    shard["entries_observed"]
                    - previous["shards"][name]["entries_observed"],
                    elapsed,
                )
            lines.append(
                f"{name:<12}{shard['queue_depth']:>7}"
                f"{shard['inflight_cases']:>10}"
                f"{shard['entries_observed']:>10}{rate:>10}"
            )
        if current.get("tenants"):
            lines.append(
                f"{'tenant':<16}{'prefix':>7}{'cases':>7}"
                f"{'infringing':>12}{'quarantined':>13}"
            )
            for tenant in current["tenants"]:
                states = tenant.get("states", {})
                lines.append(
                    f"{tenant.get('purpose', '?'):<16}"
                    f"{tenant.get('prefix', '-'):>7}"
                    f"{tenant.get('cases', 0):>7}"
                    f"{states.get('infringing', 0):>12}"
                    f"{tenant.get('quarantined', 0):>13}"
                )
        return "\n".join(lines)
