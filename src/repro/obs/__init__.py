"""Telemetry for the purpose-control pipeline (observability subsystem).

The paper's scalability story (Section 7) rests on two measurable
claims — WeakNext explores the LTS lazily (and memoizes), and cases
audit independently.  This package makes both observable in a running
audit without sacrificing the library's performance when nobody is
watching:

* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms
  in a mergeable registry (no third-party dependencies);
* :mod:`repro.obs.log` — structured JSON-lines events with a stable
  vocabulary (``case.audited``, ``entry.replayed``, ...);
* :mod:`repro.obs.trace` — nested span timing trees with W3C-style
  distributed trace context, exportable as JSON or Chrome-trace;
* :mod:`repro.obs.export` — Prometheus text format, JSON snapshots,
  OTLP/JSON (spans + metrics, file or HTTP collector), and the
  human-readable ``repro stats`` summary;
* :mod:`repro.obs.console` — operator rendering: ``repro trace``'s span
  trees and ``repro top``'s live per-shard service sampler.

The handle instrumented classes accept is a :class:`Telemetry` bundle.
The library default is :meth:`Telemetry.disabled` — a shared bundle of
no-op registry/logger/tracer, so un-instrumented callers pay only empty
method calls (never a lock, clock read, or allocation).  Enable it at
the edge::

    from repro.obs import Telemetry

    telemetry = Telemetry.create()          # fresh registry + tracer
    auditor = PurposeControlAuditor(registry, telemetry=telemetry)
    auditor.audit(trail)
    print(telemetry.registry.counter("cases_audited_total").total)

Metric names, labels, the event vocabulary, and the CLI flags are
documented in ``docs/observability.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.obs.export import (
    OtlpExporter,
    dumps_json,
    format_summary,
    metrics_to_otlp,
    spans_to_otlp,
    to_json,
    to_prometheus,
)
from repro.obs.log import (
    ARTIFACT_INVALID,
    AUTOMATON_CHECKPOINT,
    AUTOMATON_COMPILED,
    AUTOMATON_TABLE_COMPILED,
    CASE_AUDITED,
    CASE_FAILED,
    CASE_QUARANTINED,
    CONTROL_CONFIG_LOADED,
    CONTROL_DISMISS,
    CONTROL_REAUDIT,
    CONTROL_REQUEUE,
    ENTRY_QUARANTINED,
    ENTRY_REPLAYED,
    EVENT_VOCABULARY,
    FRONTIER_GROWN,
    INFRINGEMENT_RAISED,
    LINT_RUN,
    MONITOR_SWEEP,
    NULL_EVENTS,
    PREFLIGHT_UNSOUND,
    SERVE_CLIENT,
    SERVE_DRAINED,
    SERVE_FLUSH,
    SERVE_OVERLOAD,
    SERVE_RECOVERED,
    SERVE_SHARD_REASSIGNED,
    SERVE_SHARD_RESTARTED,
    SERVE_STARTED,
    SERVE_WAL_COMMIT,
    SERVE_WAL_RETIRED,
    WEAKNEXT_COMPUTED,
    WORKER_INIT,
    WORKER_LOST,
    EventLogger,
    JsonLinesFormatter,
    MemoryEventLog,
    NullEventLogger,
    json_lines_logger,
)
from repro.obs.metrics import (
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    default_registry,
    set_default_registry,
    timed,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceContext,
    Tracer,
    new_span_id,
    new_trace_id,
    parse_traceparent,
)


@dataclass(frozen=True)
class Telemetry:
    """The bundle instrumented pipeline classes consume.

    ``enabled`` is the single flag hot paths may branch on to skip
    clock reads; the three components are always safe to call either
    way (disabled components are no-ops).
    """

    registry: Union[MetricsRegistry, NullRegistry]
    events: Union[EventLogger, NullEventLogger]
    tracer: Union[Tracer, NullTracer]
    enabled: bool = True

    @classmethod
    def disabled(cls) -> "Telemetry":
        """The shared no-op bundle (the library default)."""
        return NULL_TELEMETRY

    @classmethod
    def create(
        cls,
        registry: Optional[MetricsRegistry] = None,
        events: Optional[EventLogger] = None,
        tracer: Optional[Tracer] = None,
    ) -> "Telemetry":
        """An enabled bundle; omitted components get fresh/no-op ones.

        Events default to the no-op logger (metrics are cheap and always
        wanted once telemetry is on; per-entry event emission is opt-in).
        """
        return cls(
            registry=registry if registry is not None else MetricsRegistry(),
            events=events if events is not None else NULL_EVENTS,
            tracer=tracer if tracer is not None else NULL_TRACER,
            enabled=True,
        )


NULL_TELEMETRY = Telemetry(
    registry=NULL_REGISTRY,
    events=NULL_EVENTS,
    tracer=NULL_TRACER,
    enabled=False,
)

__all__ = [
    "ARTIFACT_INVALID",
    "AUTOMATON_CHECKPOINT",
    "AUTOMATON_COMPILED",
    "AUTOMATON_TABLE_COMPILED",
    "CASE_AUDITED",
    "CASE_FAILED",
    "CASE_QUARANTINED",
    "CONTROL_CONFIG_LOADED",
    "CONTROL_DISMISS",
    "CONTROL_REAUDIT",
    "CONTROL_REQUEUE",
    "DEFAULT_SIZE_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "ENTRY_QUARANTINED",
    "ENTRY_REPLAYED",
    "EVENT_VOCABULARY",
    "FRONTIER_GROWN",
    "INFRINGEMENT_RAISED",
    "LINT_RUN",
    "MONITOR_SWEEP",
    "NULL_EVENTS",
    "NULL_REGISTRY",
    "NULL_TELEMETRY",
    "NULL_TRACER",
    "PREFLIGHT_UNSOUND",
    "SERVE_CLIENT",
    "SERVE_DRAINED",
    "SERVE_FLUSH",
    "SERVE_OVERLOAD",
    "SERVE_RECOVERED",
    "SERVE_SHARD_REASSIGNED",
    "SERVE_SHARD_RESTARTED",
    "SERVE_STARTED",
    "SERVE_WAL_COMMIT",
    "SERVE_WAL_RETIRED",
    "WEAKNEXT_COMPUTED",
    "WORKER_INIT",
    "WORKER_LOST",
    "Counter",
    "EventLogger",
    "Gauge",
    "Histogram",
    "JsonLinesFormatter",
    "MemoryEventLog",
    "MetricsRegistry",
    "NullEventLogger",
    "NullRegistry",
    "NullTracer",
    "OtlpExporter",
    "Span",
    "Telemetry",
    "TraceContext",
    "Tracer",
    "default_registry",
    "dumps_json",
    "format_summary",
    "json_lines_logger",
    "metrics_to_otlp",
    "new_span_id",
    "new_trace_id",
    "parse_traceparent",
    "set_default_registry",
    "spans_to_otlp",
    "timed",
    "to_json",
    "to_prometheus",
]
