"""Identifiers of the COWS calculus: names, variables, killer labels, endpoints.

COWS (Calculus of Orchestration of Web Services, Lapadula et al. [10])
relies on three countable and pairwise disjoint sets:

* **names** — partners, operations and data values (e.g. ``GP``, ``T01``,
  ``msg1``);
* **variables** — placeholders bound by a scope delimiter ``[x]s`` and
  instantiated by communication (e.g. the ``z`` of Fig. 10 in the paper);
* **killer labels** — the targets of ``kill(k)`` activities, bound by
  ``[k]s``.

Basic activities take place at *endpoints* ``p . o`` identified by a
partner name ``p`` and an operation name ``o``.

All identifier classes are immutable, hashable value objects so that COWS
terms built from them can themselves be immutable and hashable — the LTS
machinery dedupes states by term identity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True, slots=True)
class Name:
    """A COWS name: a partner, an operation, or a ground data value."""

    value: str

    def __post_init__(self) -> None:
        if not self.value:
            raise ValueError("a Name must be a non-empty string")

    def __str__(self) -> str:
        return self.value

    def __repr__(self) -> str:
        return f"Name({self.value!r})"


@dataclass(frozen=True, slots=True)
class Variable:
    """A COWS variable, bound by a scope delimiter and filled in by matching.

    The textual syntax writes variables with a leading question mark
    (``?x``) to keep them visually distinct from names.
    """

    value: str

    def __post_init__(self) -> None:
        if not self.value:
            raise ValueError("a Variable must be a non-empty string")

    def __str__(self) -> str:
        return f"?{self.value}"

    def __repr__(self) -> str:
        return f"Variable({self.value!r})"


@dataclass(frozen=True, slots=True)
class KillerLabel:
    """A COWS killer label, the target of ``kill(k)`` and bound by ``[k]s``."""

    value: str

    def __post_init__(self) -> None:
        if not self.value:
            raise ValueError("a KillerLabel must be a non-empty string")

    def __str__(self) -> str:
        return f"+{self.value}"

    def __repr__(self) -> str:
        return f"KillerLabel({self.value!r})"


#: Anything a scope delimiter ``[d]s`` may bind.
Binder = Union[Name, Variable, KillerLabel]

#: Anything that may appear as a communication parameter.
Parameter = Union[Name, Variable]


@dataclass(frozen=True, slots=True)
class Endpoint:
    """An endpoint ``partner . operation`` at which activities take place."""

    partner: Name
    operation: Name

    def __str__(self) -> str:
        return f"{self.partner}.{self.operation}"

    def __repr__(self) -> str:
        return f"Endpoint({self.partner.value!r}, {self.operation.value!r})"

    def mentions(self, name: Name) -> bool:
        """Return whether *name* occurs as this endpoint's partner or operation."""
        return self.partner == name or self.operation == name


def name(value: str) -> Name:
    """Shorthand constructor for :class:`Name`."""
    return Name(value)


def var(value: str) -> Variable:
    """Shorthand constructor for :class:`Variable`."""
    return Variable(value)


def killer(value: str) -> KillerLabel:
    """Shorthand constructor for :class:`KillerLabel`."""
    return KillerLabel(value)


def endpoint(partner: str | Name, operation: str | Name) -> Endpoint:
    """Build an :class:`Endpoint` from strings or :class:`Name` objects."""
    if isinstance(partner, str):
        partner = Name(partner)
    if isinstance(operation, str):
        operation = Name(operation)
    return Endpoint(partner, operation)
