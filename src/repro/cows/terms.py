"""Abstract syntax of COWS services (the minimal fragment of the paper).

The grammar, from Section 3.3 of the paper::

    s ::= p.o!<w>  |  [d]s  |  g  |  s | s  |  {|s|}  |  kill(k)  |  *s
    g ::= 0  |  p.o?<w>.s  |  g + g

Terms are immutable, hashable dataclasses.  The module also provides the
two syntactic operations the semantics needs:

* :func:`free_identifiers` — the free names / variables / killer labels of
  a term (used by scope delimiters and garbage collection);
* :func:`substitute` — capture-avoiding application of a variable
  substitution (used when a communication instantiates a pattern).

One extension beyond the paper's grammar is :class:`TaskMarker`, a wrapper
that is *transparent* to the operational semantics: it marks the body of a
triggered BPMN task so that the set of active tasks of a state
(Definition 6) can be read off the term.  The marker evaporates as soon as
the wrapped continuation performs its first activity — i.e. when the
process token moves past the task.  See DESIGN.md, Section 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce
from typing import Iterable, Mapping, Union

from repro.errors import SubstitutionError
from repro.cows.names import Binder, Endpoint, KillerLabel, Name, Parameter, Variable

Term = Union[
    "Nil",
    "Invoke",
    "Request",
    "Choice",
    "Parallel",
    "Scope",
    "Protect",
    "Kill",
    "Replicate",
    "TaskMarker",
]


@dataclass(frozen=True)
class Nil:
    """The empty activity ``0``."""

    def __str__(self) -> str:
        return "0"


@dataclass(frozen=True)
class Invoke:
    """An invoke (send) activity ``p.o!<w1, ..., wn>``.

    Parameters must be ground (names) for the activity to be executable;
    an invoke whose parameters still contain variables is stuck until the
    enclosing scopes instantiate them.
    """

    endpoint: Endpoint
    params: tuple[Parameter, ...] = ()

    def __str__(self) -> str:
        args = ", ".join(str(p) for p in self.params)
        return f"{self.endpoint}!<{args}>"

    @property
    def is_ground(self) -> bool:
        """Whether every parameter is a name (no free variables left)."""
        return all(isinstance(p, Name) for p in self.params)


@dataclass(frozen=True)
class Request:
    """A request (receive) prefix ``p.o?<w1, ..., wn>. s``.

    Parameters that are variables act as a pattern: communication binds
    them to the corresponding values of a matching invoke.
    """

    endpoint: Endpoint
    params: tuple[Parameter, ...]
    continuation: Term

    def __str__(self) -> str:
        args = ", ".join(str(p) for p in self.params)
        if isinstance(self.continuation, Nil):
            return f"{self.endpoint}?<{args}>"
        if isinstance(self.continuation, (Choice, Parallel)):
            # Parenthesize so the textual form parses back unambiguously.
            return f"{self.endpoint}?<{args}>.({self.continuation})"
        return f"{self.endpoint}?<{args}>.{self.continuation}"


@dataclass(frozen=True)
class Choice:
    """A guarded choice ``g1 + g2 + ... + gn`` between request prefixes.

    The empty choice is ``0``; prefer :class:`Nil` for that.  A choice of
    one branch behaves exactly like that branch.
    """

    branches: tuple[Request, ...]

    def __post_init__(self) -> None:
        for branch in self.branches:
            if not isinstance(branch, Request):
                raise TypeError(
                    "choice branches must be request prefixes, "
                    f"got {type(branch).__name__}"
                )

    def __str__(self) -> str:
        return " + ".join(f"({b})" for b in self.branches)


@dataclass(frozen=True)
class Parallel:
    """Parallel composition ``s1 | s2 | ... | sn``."""

    components: tuple[Term, ...]

    def __str__(self) -> str:
        return " | ".join(f"({c})" for c in self.components)


@dataclass(frozen=True)
class Scope:
    """A scope delimiter ``[d]s`` binding a name, variable or killer label."""

    binder: Binder
    body: Term

    def __str__(self) -> str:
        return f"[{self.binder}]({self.body})"


@dataclass(frozen=True)
class Protect:
    """The protection block ``{|s|}``: *s* survives kill signals."""

    body: Term

    def __str__(self) -> str:
        return f"{{|{self.body}|}}"


@dataclass(frozen=True)
class Kill:
    """The kill activity ``kill(k)``."""

    label: KillerLabel

    def __str__(self) -> str:
        return f"kill({self.label.value})"


@dataclass(frozen=True)
class Replicate:
    """Replication ``*s``: spawns as many copies of *s* as needed."""

    body: Term

    def __str__(self) -> str:
        return f"*({self.body})"


@dataclass(frozen=True)
class TaskMarker:
    """Transparent wrapper marking an *active* BPMN task (see module docs).

    ``role`` and ``task`` identify the task in the sense of the paper's
    observable labels ``r . q``.  The marker contributes the pair
    ``(role, task)`` to the active-task set of every state whose term
    contains it at an active position.
    """

    role: Name
    task: Name
    body: Term

    def __str__(self) -> str:
        return f"<{self.role}.{self.task}>({self.body})"


def parallel(*components: Term) -> Term:
    """Build a parallel composition, flattening trivial cases."""
    flat: list[Term] = []
    for component in components:
        if isinstance(component, Parallel):
            flat.extend(component.components)
        elif not isinstance(component, Nil):
            flat.append(component)
    if not flat:
        return Nil()
    if len(flat) == 1:
        return flat[0]
    return Parallel(tuple(flat))


def choice(*branches: Request) -> Term:
    """Build a guarded choice, flattening trivial cases."""
    if not branches:
        return Nil()
    if len(branches) == 1:
        return branches[0]
    return Choice(tuple(branches))


def scope(binders: Iterable[Binder] | Binder, body: Term) -> Term:
    """Wrap *body* in one scope delimiter per binder (left to right)."""
    if isinstance(binders, (Name, Variable, KillerLabel)):
        binders = [binders]
    return reduce(lambda acc, d: Scope(d, acc), reversed(list(binders)), body)


_FREE_CACHE: dict[Term, frozenset[Binder]] = {}


def free_identifiers(term: Term) -> frozenset[Binder]:
    """The free names, variables and killer labels of *term*.

    Names occurring as endpoint partners/operations, as parameters or as
    kill targets are all collected; scope delimiters remove their binder
    from the set of the body.  Results are memoized: scope garbage
    collection asks this question about the same subterms constantly.
    """
    cached = _FREE_CACHE.get(term)
    if cached is not None:
        return cached
    result = _free_identifiers(term)
    _FREE_CACHE[term] = result
    return result


def _free_identifiers(term: Term) -> frozenset[Binder]:
    if isinstance(term, Nil):
        return frozenset()
    if isinstance(term, Invoke):
        return frozenset(
            {term.endpoint.partner, term.endpoint.operation, *term.params}
        )
    if isinstance(term, Request):
        own = frozenset(
            {term.endpoint.partner, term.endpoint.operation, *term.params}
        )
        return own | free_identifiers(term.continuation)
    if isinstance(term, Choice):
        return frozenset().union(*(free_identifiers(b) for b in term.branches))
    if isinstance(term, Parallel):
        return frozenset().union(*(free_identifiers(c) for c in term.components))
    if isinstance(term, Scope):
        return free_identifiers(term.body) - {term.binder}
    if isinstance(term, (Protect, Replicate)):
        return free_identifiers(term.body)
    if isinstance(term, Kill):
        return frozenset({term.label})
    if isinstance(term, TaskMarker):
        return free_identifiers(term.body) | {term.role, term.task}
    raise TypeError(f"not a COWS term: {type(term).__name__}")


def substitute(term: Term, mapping: Mapping[Variable, Name]) -> Term:
    """Apply the variable substitution *mapping* to *term*.

    The substitution maps variables to ground names — exactly what a
    communication produces when a request pattern matches an invoke.
    Substitution stops at scope delimiters that rebind one of the mapped
    variables (shadowing), which keeps it capture-avoiding for the terms
    the BPMN encoding produces (each variable has a single binding scope).
    """
    if not mapping:
        return term
    return _substitute(term, dict(mapping))


def _substitute(term: Term, mapping: dict[Variable, Name]) -> Term:
    if isinstance(term, Nil):
        return term
    if isinstance(term, Invoke):
        return Invoke(term.endpoint, _subst_params(term.params, mapping))
    if isinstance(term, Request):
        return Request(
            term.endpoint,
            _subst_params(term.params, mapping),
            _substitute(term.continuation, mapping),
        )
    if isinstance(term, Choice):
        branches = tuple(_substitute(b, mapping) for b in term.branches)
        return Choice(branches)  # type: ignore[arg-type]
    if isinstance(term, Parallel):
        return Parallel(tuple(_substitute(c, mapping) for c in term.components))
    if isinstance(term, Scope):
        if isinstance(term.binder, Variable) and term.binder in mapping:
            narrowed = {v: n for v, n in mapping.items() if v != term.binder}
            if not narrowed:
                return term
            return Scope(term.binder, _substitute(term.body, narrowed))
        if isinstance(term.binder, Name):
            # Only substitutions that actually reach the body matter for
            # capture; a mapped variable that is not free below the scope
            # is harmless.
            free_below = free_identifiers(term.body)
            relevant = {v: n for v, n in mapping.items() if v in free_below}
            if not relevant:
                return term
            if term.binder in relevant.values():
                # The body is about to receive a name the scope would
                # capture.  The BPMN encoding never produces this shape;
                # fail loudly rather than silently change the term.
                raise SubstitutionError(
                    f"substitution would capture private name {term.binder}"
                )
            return Scope(term.binder, _substitute(term.body, relevant))
        return Scope(term.binder, _substitute(term.body, mapping))
    if isinstance(term, Protect):
        return Protect(_substitute(term.body, mapping))
    if isinstance(term, Kill):
        return term
    if isinstance(term, Replicate):
        return Replicate(_substitute(term.body, mapping))
    if isinstance(term, TaskMarker):
        return TaskMarker(term.role, term.task, _substitute(term.body, mapping))
    raise TypeError(f"not a COWS term: {type(term).__name__}")


def _subst_params(
    params: tuple[Parameter, ...], mapping: Mapping[Variable, Name]
) -> tuple[Parameter, ...]:
    return tuple(
        mapping.get(p, p) if isinstance(p, Variable) else p for p in params
    )


def active_tasks(term: Term) -> frozenset[tuple[Name, Name]]:
    """Collect the ``(role, task)`` pairs of the active-position markers.

    A marker is at an *active position* when it is not guarded by a prefix
    and not under a replication (an un-spawned copy is not running).  This
    is the ``active_tasks`` component of a configuration (Definition 6).
    """
    found: set[tuple[Name, Name]] = set()
    _collect_markers(term, found)
    return frozenset(found)


def _collect_markers(term: Term, found: set[tuple[Name, Name]]) -> None:
    if isinstance(term, TaskMarker):
        found.add((term.role, term.task))
        _collect_markers(term.body, found)
    elif isinstance(term, Parallel):
        for component in term.components:
            _collect_markers(component, found)
    elif isinstance(term, (Scope, Protect)):
        _collect_markers(term.body, found)
    # Prefixes (Request/Choice), Replicate, Invoke, Kill, Nil contribute
    # nothing: their bodies are not yet running.


def _cached_hash(field_names: tuple[str, ...]):
    """A structural ``__hash__`` that computes once and caches on the node.

    Terms are deeply nested immutable trees; the LTS machinery hashes the
    same nodes millions of times.  The dataclass-generated hash walks the
    whole tree on every call; caching it is the single largest speedup of
    the whole library (see the ablation notes in DESIGN.md).
    """

    def __hash__(self):  # noqa: N807 - installed as a dunder
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash(
                (type(self).__name__,)
                + tuple(getattr(self, name) for name in field_names)
            )
            object.__setattr__(self, "_hash", cached)
        return cached

    return __hash__


for _cls, _fields in (
    (Nil, ()),
    (Invoke, ("endpoint", "params")),
    (Request, ("endpoint", "params", "continuation")),
    (Choice, ("branches",)),
    (Parallel, ("components",)),
    (Scope, ("binder", "body")),
    (Protect, ("body",)),
    (Kill, ("label",)),
    (Replicate, ("body",)),
    (TaskMarker, ("role", "task", "body")),
):
    _cls.__hash__ = _cached_hash(_fields)  # type: ignore[method-assign]
