"""Labeled transition systems over COWS terms.

An :class:`LTS` wraps a COWS service and exposes its reachable behaviour:
successor computation (with kill priority and canonical state forms),
bounded exhaustive exploration, and bounded trace enumeration.  The trace
enumerator is what the *naive* purpose-control baseline of the paper's
introduction uses — and what Algorithm 1 makes unnecessary.

States handed out by this module are always in canonical form
(:func:`repro.cows.congruence.normalize`), so they can be compared and
hashed directly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.cows.congruence import normalize
from repro.cows.labels import CommLabel, Label, is_kill_label
from repro.cows.semantics import enabled
from repro.cows.terms import Term

#: Successor edge: observable-or-internal label plus canonical target state.
Edge = tuple[Label, Term]


@dataclass(frozen=True)
class ExplorationResult:
    """The reachable fragment of an LTS, as computed by :meth:`LTS.explore`."""

    initial: Term
    states: frozenset[Term]
    edges: tuple[tuple[Term, Label, Term], ...]
    complete: bool

    @property
    def state_count(self) -> int:
        return len(self.states)

    @property
    def edge_count(self) -> int:
        return len(self.edges)

    def labels(self) -> frozenset[Label]:
        """Every distinct label occurring on an edge."""
        return frozenset(label for _, label, _ in self.edges)

    def successors_of(self, state: Term) -> list[tuple[Label, Term]]:
        return [(label, t) for s, label, t in self.edges if s == state]


class LTS:
    """The labeled transition system of a (closed) COWS service.

    Only *completed* transitions are followed by default: communications
    and kill signals.  Partial invoke/request labels describe potential
    interactions with an environment; for the closed systems produced by
    the BPMN encoding they never fire on their own.  Pass
    ``closed=False`` to include them (useful for unit-testing the
    semantics of open terms).
    """

    def __init__(self, initial: Term, closed: bool = True):
        self._initial = normalize(initial)
        self._closed = closed
        self._successor_cache: dict[Term, tuple[Edge, ...]] = {}

    @property
    def initial(self) -> Term:
        return self._initial

    def successors(self, state: Term) -> tuple[Edge, ...]:
        """The (label, canonical successor) pairs enabled in *state*.

        *state* must already be canonical — which holds for the initial
        state and for every state this method returns.
        """
        cached = self._successor_cache.get(state)
        if cached is not None:
            return cached
        edges: list[Edge] = []
        seen: set[Edge] = set()
        for label, target in enabled(state):
            if self._closed and not self._is_complete(label):
                continue
            edge = (label, normalize(target))
            if edge not in seen:
                seen.add(edge)
                edges.append(edge)
        result = tuple(edges)
        self._successor_cache[state] = result
        return result

    @staticmethod
    def _is_complete(label: Label) -> bool:
        return isinstance(label, CommLabel) or is_kill_label(label)

    def explore(self, max_states: int = 100_000) -> ExplorationResult:
        """Breadth-first exploration of the reachable state graph.

        Stops after *max_states* distinct states; ``complete`` is False in
        that case (the process may well be infinite-state).
        """
        states: set[Term] = {self._initial}
        edges: list[tuple[Term, Label, Term]] = []
        queue: deque[Term] = deque([self._initial])
        complete = True
        while queue:
            state = queue.popleft()
            for label, target in self.successors(state):
                edges.append((state, label, target))
                if target not in states:
                    if len(states) >= max_states:
                        complete = False
                        continue
                    states.add(target)
                    queue.append(target)
        return ExplorationResult(
            initial=self._initial,
            states=frozenset(states),
            edges=tuple(edges),
            complete=complete,
        )

    def traces(
        self,
        max_length: int,
        max_traces: int | None = None,
        label_filter: Callable[[Label], bool] | None = None,
    ) -> Iterator[tuple[Label, ...]]:
        """Enumerate maximal label sequences of length up to *max_length*.

        A trace is emitted when it reaches a deadlocked state or the
        length bound.  When *label_filter* is given, filtered-out labels
        are traversed but do not appear in the emitted sequences (this is
        how the naive baseline enumerates *observable* traces).

        The enumeration is depth-first and can be exponential — that
        blow-up is precisely what benchmark E8 measures.
        """
        emitted = 0
        seen: set[tuple[Label, ...]] = set()
        stack: list[tuple[Term, tuple[Label, ...], int]] = [(self._initial, (), 0)]
        while stack:
            state, trace, depth = stack.pop()
            successors = self.successors(state)
            if not successors or depth >= max_length:
                if trace not in seen:
                    seen.add(trace)
                    yield trace
                    emitted += 1
                    if max_traces is not None and emitted >= max_traces:
                        return
                continue
            for label, target in successors:
                if label_filter is None or label_filter(label):
                    extended = trace + (label,)
                else:
                    extended = trace
                stack.append((target, extended, depth + 1))

    def reachable_by(self, labels: list[Label]) -> list[Term]:
        """The states reachable by consuming *labels* in order (exactly)."""
        frontier = [self._initial]
        for wanted in labels:
            next_frontier: list[Term] = []
            seen: set[Term] = set()
            for state in frontier:
                for label, target in self.successors(state):
                    if label == wanted and target not in seen:
                        seen.add(target)
                        next_frontier.append(target)
            frontier = next_frontier
            if not frontier:
                break
        return frontier


@dataclass
class TraceStatistics:
    """Simple accounting for trace enumeration experiments (bench E8)."""

    max_length: int
    trace_count: int = 0
    truncated: bool = False
    states_touched: int = 0
    _states: set[Term] = field(default_factory=set, repr=False)


def count_traces(
    lts: LTS,
    max_length: int,
    max_traces: int = 1_000_000,
    label_filter: Callable[[Label], bool] | None = None,
) -> TraceStatistics:
    """Count the (bounded) traces of *lts*, for the naive-baseline bench."""
    stats = TraceStatistics(max_length=max_length)
    for _ in lts.traces(max_length, max_traces=max_traces, label_filter=label_filter):
        stats.trace_count += 1
    if stats.trace_count >= max_traces:
        stats.truncated = True
    return stats
