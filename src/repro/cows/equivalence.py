"""Behavioural equivalences over finite LTS fragments.

Used to *prove* (on explored, finite fragments) that the library's
BPMN -> COWS encoder agrees with the paper's hand-written appendix
terms, and generally useful when developing encodings:

* :func:`strong_bisimilar` — classical partition-refinement strong
  bisimulation: every label, including silent bookkeeping, must match;
* :func:`weak_trace_equivalent` — equality of the *observable* trace
  languages after hiding silent labels (the equivalence that matters for
  Algorithm 1, which only sees observable labels);
* :func:`observable_determinization` — the determinized observable
  automaton of a fragment, the common object both checks reduce to.

All functions operate on :class:`repro.cows.lts.ExplorationResult`
fragments; exploring with a bound and comparing incomplete fragments
would be unsound, so both entry points insist on ``complete=True``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.cows.labels import Label
from repro.cows.lts import ExplorationResult
from repro.cows.terms import Term
from repro.errors import CowsError


class IncompleteFragmentError(CowsError):
    """Equivalence checking requires fully explored (finite) fragments."""


LabelKey = Callable[[Label], Optional[str]]


def _require_complete(*fragments: ExplorationResult) -> None:
    for fragment in fragments:
        if not fragment.complete:
            raise IncompleteFragmentError(
                "equivalence checking needs a complete exploration; "
                "raise max_states or restrict the process"
            )


# ---------------------------------------------------------------------------
# strong bisimulation


def strong_bisimilar(
    left: ExplorationResult,
    right: ExplorationResult,
    label_key: LabelKey | None = None,
) -> bool:
    """Whether the initial states of two fragments are strongly bisimilar.

    *label_key* maps labels to comparison keys (default: their string
    rendering); labels mapping to ``None`` are treated like any other
    key, not hidden — strong bisimulation sees everything.
    """
    _require_complete(left, right)
    key = label_key or (lambda label: str(label))

    # Work on the disjoint union, then refine partitions.
    states: list[tuple[int, Term]] = [(0, s) for s in left.states] + [
        (1, s) for s in right.states
    ]
    successors: dict[tuple[int, Term], list[tuple[str, tuple[int, Term]]]] = {
        node: [] for node in states
    }
    for side, fragment in ((0, left), (1, right)):
        for source, label, target in fragment.edges:
            successors[(side, source)].append(
                (str(key(label)), (side, target))
            )

    # Initial partition: a single block.
    block_of: dict[tuple[int, Term], int] = {node: 0 for node in states}
    while True:
        signatures: dict[tuple[int, Term], frozenset[tuple[str, int]]] = {}
        for node in states:
            signatures[node] = frozenset(
                (label, block_of[target]) for label, target in successors[node]
            )
        # Re-block by (old block, signature).
        keys: dict[tuple[int, frozenset], int] = {}
        new_block_of: dict[tuple[int, Term], int] = {}
        for node in states:
            block_key = (block_of[node], signatures[node])
            if block_key not in keys:
                keys[block_key] = len(keys)
            new_block_of[node] = keys[block_key]
        if new_block_of == block_of:
            break
        block_of = new_block_of

    return block_of[(0, left.initial)] == block_of[(1, right.initial)]


# ---------------------------------------------------------------------------
# weak (observable) trace equivalence


@dataclass(frozen=True)
class ObservableAutomaton:
    """A determinized automaton over observable label keys."""

    initial: frozenset[Term]
    transitions: dict[frozenset[Term], dict[str, frozenset[Term]]]
    accepting: frozenset[frozenset[Term]]  # macro-states containing a deadlock

    def step(self, macro: frozenset[Term], label: str) -> Optional[frozenset[Term]]:
        return self.transitions.get(macro, {}).get(label)


def observable_determinization(
    fragment: ExplorationResult, classify: LabelKey
) -> ObservableAutomaton:
    """Subset-construct the observable automaton of a fragment.

    *classify* maps a label to its observable key, or ``None`` when the
    label is silent.  Macro-states are silent-closure sets; a macro-state
    is *accepting* when it contains a state with no outgoing edges (the
    process may stop there).
    """
    _require_complete(fragment)
    silent_next: dict[Term, list[Term]] = {}
    observable_next: dict[Term, list[tuple[str, Term]]] = {}
    out_degree: dict[Term, int] = {s: 0 for s in fragment.states}
    for source, label, target in fragment.edges:
        out_degree[source] += 1
        observable = classify(label)
        if observable is None:
            silent_next.setdefault(source, []).append(target)
        else:
            observable_next.setdefault(source, []).append((observable, target))

    def closure(seeds: frozenset[Term]) -> frozenset[Term]:
        seen = set(seeds)
        stack = list(seeds)
        while stack:
            state = stack.pop()
            for target in silent_next.get(state, ()):
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
        return frozenset(seen)

    initial = closure(frozenset({fragment.initial}))
    transitions: dict[frozenset[Term], dict[str, frozenset[Term]]] = {}
    accepting: set[frozenset[Term]] = set()
    pending = [initial]
    visited = {initial}
    while pending:
        macro = pending.pop()
        if any(out_degree[s] == 0 for s in macro):
            accepting.add(macro)
        moves: dict[str, set[Term]] = {}
        for state in macro:
            for label, target in observable_next.get(state, ()):
                moves.setdefault(label, set()).add(target)
        row: dict[str, frozenset[Term]] = {}
        for label, targets in moves.items():
            successor = closure(frozenset(targets))
            row[label] = successor
            if successor not in visited:
                visited.add(successor)
                pending.append(successor)
        transitions[macro] = row
    return ObservableAutomaton(
        initial=initial,
        transitions=transitions,
        accepting=frozenset(accepting),
    )


def weak_trace_equivalent(
    left: ExplorationResult,
    right: ExplorationResult,
    classify: LabelKey,
) -> bool:
    """Whether two fragments have the same observable trace language.

    Compares the determinized observable automata by synchronous
    product search: any reachable pair must offer the same observable
    labels and agree on acceptance (the ability to stop).
    """
    left_auto = observable_determinization(left, classify)
    right_auto = observable_determinization(right, classify)
    pending = [(left_auto.initial, right_auto.initial)]
    seen = {(left_auto.initial, right_auto.initial)}
    while pending:
        l_macro, r_macro = pending.pop()
        l_row = left_auto.transitions.get(l_macro, {})
        r_row = right_auto.transitions.get(r_macro, {})
        if set(l_row) != set(r_row):
            return False
        if (l_macro in left_auto.accepting) != (r_macro in right_auto.accepting):
            return False
        for label, l_target in l_row.items():
            pair = (l_target, r_row[label])
            if pair not in seen:
                seen.add(pair)
                pending.append(pair)
    return True
