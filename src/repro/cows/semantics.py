"""Structural operational semantics of COWS.

:func:`transitions` computes, for a COWS term, every labeled transition
``(l, s')`` the structural rules allow.  The rules implemented are the
minimal-COWS rules of Section 3.3 / Appendix A of the paper:

* an invoke ``p.o!<v>`` whose parameters are ground emits an invoke label;
* a request prefix emits a request label and continues with its body;
* a choice offers the transitions of its branches;
* parallel composition interleaves component transitions and synchronizes
  matching invoke/request pairs into communication labels;
* ``kill(k)`` emits the kill signal ``+k``; a kill signal propagating
  through a parallel composition *halts* the sibling components, except
  protected blocks ``{|s|}``; the scope delimiter ``[k]`` turns ``+k``
  into the executed-kill label ``+``;
* a name delimiter ``[n]`` blocks partial (invoke/request) labels that
  mention the private name, while completed communications pass through;
* a variable delimiter ``[x]`` lets a request pattern containing ``x``
  cross (scope opening); the matching communication then applies the
  substitution produced by :func:`repro.cows.labels.match` to the
  requester's residual;
* replication ``*s`` spawns a copy per transition of ``s`` (including
  synchronizations between two fresh copies).

Kill priority — COWS kill activities are eager — is enforced by
:func:`enabled`, which restricts the transition set to kill transitions
whenever one is possible.  The LTS layer always goes through
:func:`enabled`.

Deviations from full COWS (documented in DESIGN.md §3): substitutions are
applied eagerly at synchronization time instead of at the delimiter, and
the best-match communication rule is not implemented.  Both coincide with
full COWS on the terms the BPMN encoding produces.
"""

from __future__ import annotations

from typing import Iterable

from repro.cows.labels import (
    CommLabel,
    InvokeLabel,
    KillDone,
    KillSignal,
    Label,
    RequestLabel,
    is_kill_label,
    match,
)
from repro.cows.names import KillerLabel, Name, Variable
from repro.cows.terms import (
    Choice,
    Invoke,
    Kill,
    Nil,
    Parallel,
    Protect,
    Replicate,
    Request,
    Scope,
    TaskMarker,
    Term,
    parallel,
    substitute,
)

Transition = tuple[Label, Term]

_NIL = Nil()


def transitions(term: Term) -> tuple[Transition, ...]:
    """All transitions of *term*, without kill priority applied."""
    if isinstance(term, Nil):
        return ()
    if isinstance(term, Invoke):
        if not term.is_ground:
            return ()
        return ((InvokeLabel(term.endpoint, term.params), _NIL),)  # type: ignore[arg-type]
    if isinstance(term, Request):
        return ((RequestLabel(term.endpoint, term.params), term.continuation),)
    if isinstance(term, Choice):
        result: list[Transition] = []
        for branch in term.branches:
            result.extend(transitions(branch))
        return tuple(result)
    if isinstance(term, Kill):
        return ((KillSignal(term.label), _NIL),)
    if isinstance(term, Protect):
        return tuple(
            (label, Protect(target)) for label, target in transitions(term.body)
        )
    if isinstance(term, TaskMarker):
        # Transparent: the marker evaporates on the body's first activity.
        return transitions(term.body)
    if isinstance(term, Scope):
        return _scope_transitions(term)
    if isinstance(term, Parallel):
        return _parallel_transitions(term)
    if isinstance(term, Replicate):
        return _replicate_transitions(term)
    raise TypeError(f"not a COWS term: {type(term).__name__}")


def enabled(term: Term) -> tuple[Transition, ...]:
    """The transitions of *term* with COWS kill priority enforced.

    If any kill transition (``+k`` or ``+``) is enabled, only kill
    transitions are returned: kill activities execute eagerly, before any
    communication can take place.  This is what makes the exclusive
    gateway encoding (Fig. 8) behave exclusively.
    """
    all_transitions = transitions(term)
    kills = tuple(t for t in all_transitions if is_kill_label(t[0]))
    if kills:
        return kills
    return all_transitions


def halt(term: Term) -> Term:
    """The halt function of COWS: kill everything except protected blocks."""
    if isinstance(term, Protect):
        return term
    if isinstance(term, Parallel):
        return parallel(*(halt(component) for component in term.components))
    if isinstance(term, Scope):
        return Scope(term.binder, halt(term.body))
    if isinstance(term, TaskMarker):
        # The task is forcibly terminated: the marker dies with it, but
        # protected content inside the continuation survives.
        return halt(term.body)
    # Invoke, Request, Choice, Kill, Replicate, Nil: all killed.
    return _NIL


def _scope_transitions(term: Scope) -> tuple[Transition, ...]:
    binder = term.binder
    result: list[Transition] = []
    for label, target in transitions(term.body):
        if isinstance(binder, KillerLabel):
            if isinstance(label, KillSignal) and label.label == binder:
                result.append((KillDone(), Scope(binder, target)))
            else:
                result.append((label, Scope(binder, target)))
        elif isinstance(binder, Name):
            if _partial_label_mentions(label, binder):
                continue  # a private name cannot synchronize with the outside
            result.append((label, Scope(binder, target)))
        else:  # Variable binder
            if isinstance(label, RequestLabel) and binder in label.params:
                # Scope opening: the pattern escapes; the communication at
                # the enclosing parallel node will instantiate the binder
                # in the residual, so the delimiter is dropped here.
                result.append((label, target))
            else:
                result.append((label, Scope(binder, target)))
    return tuple(result)


def _partial_label_mentions(label: Label, name: Name) -> bool:
    """Whether an invoke/request label exposes the private name *name*."""
    if isinstance(label, InvokeLabel):
        return label.endpoint.mentions(name) or name in label.values
    if isinstance(label, RequestLabel):
        return label.endpoint.mentions(name) or name in label.params
    return False


def _parallel_transitions(term: Parallel) -> tuple[Transition, ...]:
    components = term.components
    per_component: list[tuple[Transition, ...]] = [
        transitions(component) for component in components
    ]
    result: list[Transition] = []

    # Interleaving: one component moves, the others stand still — unless
    # the label is an ongoing kill signal, which halts the bystanders.
    for index, component_transitions in enumerate(per_component):
        for label, target in component_transitions:
            if isinstance(label, KillSignal):
                rest = [
                    halt(other) if j != index else target
                    for j, other in enumerate(components)
                ]
                rest[index] = target
                result.append((label, parallel(*rest)))
            else:
                rest = list(components)
                rest[index] = target
                result.append((label, parallel(*rest)))

    # Synchronization: an invoke of one component meets a matching request
    # of another.
    for i, transitions_i in enumerate(per_component):
        for j, transitions_j in enumerate(per_component):
            if i == j:
                continue
            for comm in _communications(
                transitions_i, transitions_j, components, i, j
            ):
                result.append(comm)
    return tuple(result)


def _communications(
    invoker_transitions: Iterable[Transition],
    requester_transitions: Iterable[Transition],
    components: tuple[Term, ...],
    invoker_index: int,
    requester_index: int,
) -> list[Transition]:
    result: list[Transition] = []
    for invoke_label, invoke_target in invoker_transitions:
        if not isinstance(invoke_label, InvokeLabel):
            continue
        for request_label, request_target in requester_transitions:
            if not isinstance(request_label, RequestLabel):
                continue
            if request_label.endpoint != invoke_label.endpoint:
                continue
            bindings = match(request_label.params, invoke_label.values)
            if bindings is None:
                continue
            rest = list(components)
            rest[invoker_index] = invoke_target
            rest[requester_index] = substitute(request_target, bindings)
            label = CommLabel(invoke_label.endpoint, invoke_label.values)
            result.append((label, parallel(*rest)))
    return result


def _replicate_transitions(term: Replicate) -> tuple[Transition, ...]:
    body_transitions = transitions(term.body)
    result: list[Transition] = [
        (label, parallel(term, target)) for label, target in body_transitions
    ]
    # Two fresh copies may synchronize with each other in a single step.
    for invoke_label, invoke_target in body_transitions:
        if not isinstance(invoke_label, InvokeLabel):
            continue
        for request_label, request_target in body_transitions:
            if not isinstance(request_label, RequestLabel):
                continue
            if request_label.endpoint != invoke_label.endpoint:
                continue
            bindings = match(request_label.params, invoke_label.values)
            if bindings is None:
                continue
            label = CommLabel(invoke_label.endpoint, invoke_label.values)
            residual = parallel(
                term, invoke_target, substitute(request_target, bindings)
            )
            result.append((label, residual))
    return tuple(result)
