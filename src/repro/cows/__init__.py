"""COWS — the Calculus of Orchestration of Web Services (minimal fragment).

This package is the formal substrate of the purpose-control framework: it
provides the term language of Section 3.3 of the paper, its structural
operational semantics, and labeled-transition-system exploration.  The
BPMN encoder (:mod:`repro.bpmn.encode`) produces terms in this language;
WeakNext and Algorithm 1 (:mod:`repro.core`) run over its transitions.
"""

from repro.cows.congruence import canonical_key, normalize
from repro.cows.equivalence import (
    IncompleteFragmentError,
    ObservableAutomaton,
    observable_determinization,
    strong_bisimilar,
    weak_trace_equivalent,
)
from repro.cows.labels import (
    CommLabel,
    InvokeLabel,
    KillDone,
    KillSignal,
    Label,
    RequestLabel,
    is_kill_label,
    match,
)
from repro.cows.lts import LTS, ExplorationResult, TraceStatistics, count_traces
from repro.cows.names import (
    Binder,
    Endpoint,
    KillerLabel,
    Name,
    Parameter,
    Variable,
    endpoint,
    killer,
    name,
    var,
)
from repro.cows.parser import parse
from repro.cows.pretty import format_label, pretty
from repro.cows.semantics import enabled, halt, transitions
from repro.cows.terms import (
    Choice,
    Invoke,
    Kill,
    Nil,
    Parallel,
    Protect,
    Replicate,
    Request,
    Scope,
    TaskMarker,
    Term,
    active_tasks,
    choice,
    free_identifiers,
    parallel,
    scope,
    substitute,
)

__all__ = [
    "LTS",
    "Binder",
    "IncompleteFragmentError",
    "ObservableAutomaton",
    "observable_determinization",
    "strong_bisimilar",
    "weak_trace_equivalent",
    "Choice",
    "CommLabel",
    "Endpoint",
    "ExplorationResult",
    "Invoke",
    "InvokeLabel",
    "Kill",
    "KillDone",
    "KillSignal",
    "KillerLabel",
    "Label",
    "Name",
    "Nil",
    "Parallel",
    "Parameter",
    "Protect",
    "Replicate",
    "Request",
    "RequestLabel",
    "Scope",
    "TaskMarker",
    "Term",
    "TraceStatistics",
    "Variable",
    "active_tasks",
    "canonical_key",
    "choice",
    "count_traces",
    "enabled",
    "endpoint",
    "format_label",
    "free_identifiers",
    "halt",
    "is_kill_label",
    "killer",
    "match",
    "name",
    "normalize",
    "parallel",
    "parse",
    "pretty",
    "scope",
    "substitute",
    "transitions",
    "var",
]
