"""Structural normalization of COWS terms.

The LTS machinery identifies states up to a *canonical form* that mirrors
the structural congruence of process calculi:

* parallel composition is flattened, ``0`` components are dropped, and
  components are sorted under a deterministic key (commutativity and
  associativity of ``|``);
* scope delimiters whose binder no longer occurs free in the body are
  garbage-collected;
* ``{|0|}``, ``*0`` and nested protections collapse;
* duplicate branches of a choice are removed and branches are sorted.

Normalizing after every transition keeps the explored state space small
(loops return to literally equal states) and makes state identity a plain
hash/equality check.  DESIGN.md lists this as design decision D3; the
ablation bench measures its effect.
"""

from __future__ import annotations

from repro.cows.terms import (
    Choice,
    Invoke,
    Kill,
    Nil,
    Parallel,
    Protect,
    Replicate,
    Request,
    Scope,
    TaskMarker,
    Term,
    free_identifiers,
)

_NIL = Nil()


def normalize(term: Term) -> Term:
    """Return the canonical form of *term* (idempotent)."""
    if isinstance(term, (Nil, Invoke, Kill)):
        return term
    if isinstance(term, Request):
        return Request(term.endpoint, term.params, normalize(term.continuation))
    if isinstance(term, Choice):
        branches = sorted(
            {normalize(b) for b in term.branches}, key=canonical_key
        )
        if not branches:
            return _NIL
        if len(branches) == 1:
            return branches[0]
        return Choice(tuple(branches))  # type: ignore[arg-type]
    if isinstance(term, Parallel):
        flat: list[Term] = []
        for component in term.components:
            normal = normalize(component)
            if isinstance(normal, Parallel):
                flat.extend(normal.components)
            elif not isinstance(normal, Nil):
                flat.append(normal)
        if not flat:
            return _NIL
        if len(flat) == 1:
            return flat[0]
        return Parallel(tuple(sorted(flat, key=canonical_key)))
    if isinstance(term, Scope):
        body = normalize(term.body)
        if isinstance(body, Nil):
            return _NIL
        if term.binder not in free_identifiers(body):
            return body
        return Scope(term.binder, body)
    if isinstance(term, Protect):
        body = normalize(term.body)
        if isinstance(body, (Nil, Protect)):
            return body
        return Protect(body)
    if isinstance(term, Replicate):
        body = normalize(term.body)
        if isinstance(body, Nil):
            return _NIL
        if isinstance(body, Replicate):
            return body
        return Replicate(body)
    if isinstance(term, TaskMarker):
        body = normalize(term.body)
        if isinstance(body, Nil):
            # A marker whose continuation can never act would linger
            # forever; it carries no behaviour, so it normalizes away.
            return _NIL
        return TaskMarker(term.role, term.task, body)
    raise TypeError(f"not a COWS term: {type(term).__name__}")


_KEY_CACHE: dict[Term, str] = {}


def canonical_key(term: Term) -> str:
    """A deterministic total-order key for sorting sibling terms (memoized)."""
    key = _KEY_CACHE.get(term)
    if key is None:
        key = str(term)
        _KEY_CACHE[term] = key
    return key
