"""Transition labels of the COWS operational semantics.

From Section 3.3 of the paper::

    l ::= (p.o) <| w   invoke label
        | (p.o) |> w   request label
        | p.o (v)      communication (synchronization) label
        | +k           ongoing kill signal for killer label k
        | +            an already executed (delimited) kill

Communication labels additionally carry the substitution produced by
matching the request pattern against the invoke values; the semantics
applies it eagerly at synchronization time (see DESIGN.md, Section 3, for
why this is sound on the BPMN fragment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.cows.names import Endpoint, KillerLabel, Name, Parameter, Variable

Label = Union["InvokeLabel", "RequestLabel", "CommLabel", "KillSignal", "KillDone"]


@dataclass(frozen=True, slots=True)
class InvokeLabel:
    """``(p.o) <| v``: an invoke activity offering values at an endpoint."""

    endpoint: Endpoint
    values: tuple[Name, ...] = ()

    def __str__(self) -> str:
        vals = ", ".join(str(v) for v in self.values)
        return f"({self.endpoint}) <| <{vals}>"


@dataclass(frozen=True, slots=True)
class RequestLabel:
    """``(p.o) |> w``: a request activity waiting with a pattern."""

    endpoint: Endpoint
    params: tuple[Parameter, ...] = ()

    def __str__(self) -> str:
        pats = ", ".join(str(p) for p in self.params)
        return f"({self.endpoint}) |> <{pats}>"


@dataclass(frozen=True, slots=True)
class CommLabel:
    """``p.o (v)``: a completed communication over an endpoint.

    When the communication carried no values (a pure synchronization,
    which is what every sequence flow of the BPMN encoding produces) the
    label prints simply as ``p.o`` — the form the paper's figures use.
    """

    endpoint: Endpoint
    values: tuple[Name, ...] = ()

    def __str__(self) -> str:
        if not self.values:
            return str(self.endpoint)
        vals = ", ".join(str(v) for v in self.values)
        return f"{self.endpoint} ({vals})"


@dataclass(frozen=True, slots=True)
class KillSignal:
    """``+k``: an ongoing kill for killer label *k* (not yet delimited)."""

    label: KillerLabel

    def __str__(self) -> str:
        return f"+{self.label.value}"


@dataclass(frozen=True, slots=True)
class KillDone:
    """``+``: a kill that has been absorbed by its scope delimiter."""

    def __str__(self) -> str:
        return "+"


def match(
    params: tuple[Parameter, ...], values: tuple[Name, ...]
) -> Optional[dict[Variable, Name]]:
    """Match a request pattern against invoke values (the M function of COWS).

    Returns the substitution binding the pattern's variables to the
    corresponding values, or ``None`` when the match fails — a name in the
    pattern must equal the value at the same position, and arities must
    agree.  A variable occurring twice must match equal values.
    """
    if len(params) != len(values):
        return None
    bindings: dict[Variable, Name] = {}
    for param, value in zip(params, values):
        if isinstance(param, Name):
            if param != value:
                return None
        else:
            bound = bindings.get(param)
            if bound is None:
                bindings[param] = value
            elif bound != value:
                return None
    return bindings


def is_kill_label(label: Label) -> bool:
    """Whether *label* is a kill signal or a delimited kill.

    Kill activities are *eager* in COWS: whenever one is enabled it takes
    precedence over every other activity.  The LTS layer uses this
    predicate to implement that priority.
    """
    return isinstance(label, (KillSignal, KillDone))
