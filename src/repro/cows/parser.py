"""A small textual syntax for COWS services.

The grammar mirrors the paper's notation, ASCII-fied::

    term     := par
    par      := choice ('|' choice)*
    choice   := prefix ('+' prefix)*
    prefix   := '0'
              | endpoint '!' '<' args '>'                  (invoke)
              | endpoint '?' '<' params '>' ('.' prefix)?  (request)
              | '[' binder (',' binder)* ']' prefix        (scope)
              | '{|' term '|}'                             (protect)
              | 'kill' '(' ident ')'
              | '*' prefix                                 (replication)
              | '(' term ')'
    endpoint := ident '.' ident
    binder   := ident | '?' ident | '+' ident     (name / variable / killer)
    param    := ident | '?' ident

Example — the exclusive-gateway service of Fig. 8::

    parse("P.G?<>. [ +k, sys ] ( sys.T1!<> | sys.T2!<>"
          " | sys.T1?<>.(kill(k) | {| P.T1!<> |})"
          " | sys.T2?<>.(kill(k) | {| P.T2!<> |}) )")

The parser exists for tests, examples and interactive exploration; the
BPMN encoder builds terms programmatically.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import CowsSyntaxError
from repro.cows.names import (
    Binder,
    Endpoint,
    KillerLabel,
    Name,
    Parameter,
    Variable,
)
from repro.cows.terms import (
    Choice,
    Invoke,
    Kill,
    Nil,
    Parallel,
    Protect,
    Replicate,
    Request,
    Scope,
    Term,
    choice,
    parallel,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<protect_open>\{\|)
  | (?P<protect_close>\|\})
  | (?P<ident>[A-Za-z_][A-Za-z0-9_\-]*)
  | (?P<number>[0-9]+)
  | (?P<punct>[()\[\].!?<>,*+|])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(source: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(source):
        matched = _TOKEN_RE.match(source, position)
        if matched is None:
            raise CowsSyntaxError(
                f"unexpected character {source[position]!r}", position
            )
        kind = matched.lastgroup or ""
        if kind != "ws":
            tokens.append(_Token(kind, matched.group(), position))
        position = matched.end()
    return tokens


class _Parser:
    def __init__(self, source: str):
        self._source = source
        self._tokens = _tokenize(source)
        self._index = 0

    # -- token helpers -------------------------------------------------
    def _peek(self) -> _Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise CowsSyntaxError("unexpected end of input", len(self._source))
        self._index += 1
        return token

    def _expect(self, text: str) -> _Token:
        token = self._next()
        if token.text != text:
            raise CowsSyntaxError(
                f"expected {text!r}, found {token.text!r}", token.position
            )
        return token

    def _at(self, text: str) -> bool:
        token = self._peek()
        return token is not None and token.text == text

    # -- grammar -------------------------------------------------------
    def parse(self) -> Term:
        term = self._parse_parallel()
        leftover = self._peek()
        if leftover is not None:
            raise CowsSyntaxError(
                f"trailing input starting at {leftover.text!r}", leftover.position
            )
        return term

    def _parse_parallel(self) -> Term:
        components = [self._parse_choice()]
        while self._at("|"):
            self._next()
            components.append(self._parse_choice())
        if len(components) == 1:
            return components[0]
        return parallel(*components)

    def _parse_choice(self) -> Term:
        first = self._parse_prefix()
        if not self._at("+"):
            return first
        branches = [first]
        while self._at("+"):
            self._next()
            branches.append(self._parse_prefix())
        for branch in branches:
            if not isinstance(branch, Request):
                raise CowsSyntaxError(
                    "only request prefixes may be summed in a choice", 0
                )
        return choice(*branches)  # type: ignore[arg-type]

    def _parse_prefix(self) -> Term:
        token = self._peek()
        if token is None:
            raise CowsSyntaxError("unexpected end of input", len(self._source))
        if token.text == "0":
            self._next()
            return Nil()
        if token.text == "(":
            self._next()
            inner = self._parse_parallel()
            self._expect(")")
            return inner
        if token.text == "*":
            self._next()
            return Replicate(self._parse_prefix())
        if token.text == "[":
            return self._parse_scope()
        if token.kind == "protect_open":
            self._next()
            inner = self._parse_parallel()
            inner_end = self._next()
            if inner_end.kind != "protect_close":
                raise CowsSyntaxError(
                    f"expected '|}}', found {inner_end.text!r}", inner_end.position
                )
            return Protect(inner)
        if token.text == "kill":
            self._next()
            self._expect("(")
            label = self._next()
            if label.kind != "ident":
                raise CowsSyntaxError("expected a killer label", label.position)
            self._expect(")")
            return Kill(KillerLabel(label.text))
        if token.kind == "ident":
            return self._parse_activity()
        raise CowsSyntaxError(
            f"unexpected token {token.text!r}", token.position
        )

    def _parse_scope(self) -> Term:
        self._expect("[")
        binders = [self._parse_binder()]
        while self._at(","):
            self._next()
            binders.append(self._parse_binder())
        self._expect("]")
        body = self._parse_prefix()
        for binder in reversed(binders):
            body = Scope(binder, body)
        return body

    def _parse_binder(self) -> Binder:
        token = self._next()
        if token.text == "?":
            ident = self._next()
            if ident.kind != "ident":
                raise CowsSyntaxError("expected a variable name", ident.position)
            return Variable(ident.text)
        if token.text == "+":
            ident = self._next()
            if ident.kind != "ident":
                raise CowsSyntaxError("expected a killer label", ident.position)
            return KillerLabel(ident.text)
        if token.kind != "ident":
            raise CowsSyntaxError(
                f"expected a binder, found {token.text!r}", token.position
            )
        return Name(token.text)

    def _parse_activity(self) -> Term:
        partner = self._next()
        self._expect(".")
        operation = self._next()
        if operation.kind != "ident":
            raise CowsSyntaxError(
                "expected an operation name", operation.position
            )
        ep = Endpoint(Name(partner.text), Name(operation.text))
        mode = self._next()
        if mode.text == "!":
            params = self._parse_params()
            return Invoke(ep, params)
        if mode.text == "?":
            params = self._parse_params()
            if self._at("."):
                self._next()
                continuation = self._parse_prefix()
            else:
                continuation = Nil()
            return Request(ep, params, continuation)
        raise CowsSyntaxError(
            f"expected '!' or '?', found {mode.text!r}", mode.position
        )

    def _parse_params(self) -> tuple[Parameter, ...]:
        self._expect("<")
        params: list[Parameter] = []
        if not self._at(">"):
            params.append(self._parse_param())
            while self._at(","):
                self._next()
                params.append(self._parse_param())
        self._expect(">")
        return tuple(params)

    def _parse_param(self) -> Parameter:
        token = self._next()
        if token.text == "?":
            ident = self._next()
            if ident.kind != "ident":
                raise CowsSyntaxError("expected a variable name", ident.position)
            return Variable(ident.text)
        if token.kind != "ident":
            raise CowsSyntaxError(
                f"expected a parameter, found {token.text!r}", token.position
            )
        return Name(token.text)


def parse(source: str) -> Term:
    """Parse a textual COWS specification into a term."""
    return _Parser(source).parse()
