"""Readable, paper-style rendering of COWS terms and labels.

``str(term)`` already yields a compact single-line form; this module adds
an indented multi-line layout for large terms (the encoding of a whole
BPMN process) and the ``r . q`` label notation used in the paper's
figures.
"""

from __future__ import annotations

from repro.cows.labels import (
    CommLabel,
    InvokeLabel,
    KillDone,
    KillSignal,
    Label,
    RequestLabel,
)
from repro.cows.terms import (
    Choice,
    Invoke,
    Kill,
    Nil,
    Parallel,
    Protect,
    Replicate,
    Request,
    Scope,
    TaskMarker,
    Term,
)

_INDENT = "  "


def pretty(term: Term, indent: int = 0) -> str:
    """An indented multi-line rendering of *term*."""
    pad = _INDENT * indent
    if isinstance(term, (Nil, Invoke, Kill)):
        return pad + str(term)
    if isinstance(term, Request):
        head = str(Request(term.endpoint, term.params, Nil()))
        if isinstance(term.continuation, Nil):
            return pad + head
        return f"{pad}{head}.\n{pretty(term.continuation, indent + 1)}"
    if isinstance(term, Choice):
        rendered = f"\n{pad}+\n".join(pretty(b, indent + 1) for b in term.branches)
        return f"{pad}(\n{rendered}\n{pad})"
    if isinstance(term, Parallel):
        rendered = f"\n{pad}|\n".join(
            pretty(c, indent + 1) for c in term.components
        )
        return f"{pad}(\n{rendered}\n{pad})"
    if isinstance(term, Scope):
        return f"{pad}[{term.binder}]\n{pretty(term.body, indent + 1)}"
    if isinstance(term, Protect):
        return f"{pad}{{|\n{pretty(term.body, indent + 1)}\n{pad}|}}"
    if isinstance(term, Replicate):
        return f"{pad}*\n{pretty(term.body, indent + 1)}"
    if isinstance(term, TaskMarker):
        return f"{pad}<{term.role}.{term.task}>\n{pretty(term.body, indent + 1)}"
    raise TypeError(f"not a COWS term: {type(term).__name__}")


def format_label(label: Label) -> str:
    """Render a label the way the paper's figures do.

    Pure synchronizations print as ``P.T1``; value-carrying
    communications as ``P1.S2 (msg2)``; kill bookkeeping as ``+k`` / ``+``.
    """
    if isinstance(label, CommLabel):
        return str(label)
    if isinstance(label, (InvokeLabel, RequestLabel, KillSignal, KillDone)):
        return str(label)
    raise TypeError(f"not a COWS label: {type(label).__name__}")
