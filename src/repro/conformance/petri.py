"""A Petri-net substrate for the conformance-checking baseline.

Related work (Section 6) contrasts the paper's approach with process
mining / conformance checking [13], which is "often based on Petri
Nets".  This module implements the place/transition nets that baseline
needs: labeled and silent transitions, multiset markings, enabledness and
firing, plus a bounded silent-closure search used by token replay to
enable a labeled transition through invisible steps.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.errors import PetriNetError


class Marking:
    """An immutable multiset of tokens over places."""

    __slots__ = ("_tokens", "_hash")

    def __init__(self, tokens: dict[str, int] | None = None):
        cleaned = {p: n for p, n in (tokens or {}).items() if n > 0}
        if any(n < 0 for n in (tokens or {}).values()):
            raise PetriNetError("negative token counts are not allowed")
        self._tokens = dict(sorted(cleaned.items()))
        self._hash = hash(tuple(self._tokens.items()))

    def __getitem__(self, place: str) -> int:
        return self._tokens.get(place, 0)

    def __iter__(self):
        return iter(self._tokens.items())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Marking):
            return NotImplemented
        return self._tokens == other._tokens

    def __hash__(self) -> int:
        return self._hash

    def __len__(self) -> int:
        return sum(self._tokens.values())

    def __str__(self) -> str:
        inner = ", ".join(f"{p}:{n}" for p, n in self._tokens.items())
        return "{" + inner + "}"

    def add(self, places: Iterable[tuple[str, int]]) -> "Marking":
        counter = Counter(self._tokens)
        for place, count in places:
            counter[place] += count
        return Marking(dict(counter))

    def remove(self, places: Iterable[tuple[str, int]]) -> "Marking":
        counter = Counter(self._tokens)
        for place, count in places:
            counter[place] -= count
        if any(n < 0 for n in counter.values()):
            raise PetriNetError("removal would make a token count negative")
        return Marking(dict(counter))

    def covers(self, places: Iterable[tuple[str, int]]) -> bool:
        return all(self[place] >= count for place, count in places)

    def places(self) -> frozenset[str]:
        return frozenset(self._tokens)


@dataclass(frozen=True)
class Transition:
    """A Petri-net transition; ``label=None`` means silent (invisible)."""

    name: str
    label: Optional[str] = None

    @property
    def is_silent(self) -> bool:
        return self.label is None


@dataclass
class PetriNet:
    """A place/transition net with weighted arcs."""

    name: str = "net"
    places: set[str] = field(default_factory=set)
    transitions: dict[str, Transition] = field(default_factory=dict)
    inputs: dict[str, Counter] = field(default_factory=dict)
    outputs: dict[str, Counter] = field(default_factory=dict)

    # -- construction -----------------------------------------------------
    def add_place(self, place: str) -> str:
        if not place:
            raise PetriNetError("place names must be non-empty")
        self.places.add(place)
        return place

    def add_transition(self, name: str, label: Optional[str] = None) -> Transition:
        if name in self.transitions:
            raise PetriNetError(f"duplicate transition {name!r}")
        transition = Transition(name, label)
        self.transitions[name] = transition
        self.inputs[name] = Counter()
        self.outputs[name] = Counter()
        return transition

    def add_arc(self, source: str, target: str, weight: int = 1) -> None:
        """Arc from a place to a transition or vice versa."""
        if weight < 1:
            raise PetriNetError("arc weights must be positive")
        if source in self.places and target in self.transitions:
            self.inputs[target][source] += weight
        elif source in self.transitions and target in self.places:
            self.outputs[source][target] += weight
        else:
            raise PetriNetError(
                f"arc must connect a place and a transition: {source!r} -> {target!r}"
            )

    # -- semantics ------------------------------------------------------------
    def is_enabled(self, marking: Marking, transition: str) -> bool:
        return marking.covers(self.inputs[transition].items())

    def enabled_transitions(self, marking: Marking) -> list[Transition]:
        return [
            t
            for name, t in self.transitions.items()
            if self.is_enabled(marking, name)
        ]

    def fire(self, marking: Marking, transition: str) -> Marking:
        if not self.is_enabled(marking, transition):
            raise PetriNetError(f"transition {transition!r} is not enabled")
        return marking.remove(self.inputs[transition].items()).add(
            self.outputs[transition].items()
        )

    def force_fire(self, marking: Marking, transition: str) -> tuple[Marking, int]:
        """Fire even if disabled, creating missing tokens (token replay).

        Returns the new marking and how many tokens had to be created.
        """
        missing = 0
        needed: list[tuple[str, int]] = []
        for place, count in self.inputs[transition].items():
            shortfall = count - marking[place]
            if shortfall > 0:
                missing += shortfall
                needed.append((place, shortfall))
        patched = marking.add(needed)
        return self.fire(patched, transition), missing

    def labeled(self, label: str) -> list[Transition]:
        return [t for t in self.transitions.values() if t.label == label]

    def silent_transitions(self) -> list[Transition]:
        return [t for t in self.transitions.values() if t.is_silent]

    # -- silent closure ----------------------------------------------------
    def silent_path_to_enable(
        self, marking: Marking, transition: str, max_depth: int = 30
    ) -> Optional[list[str]]:
        """A shortest sequence of silent firings enabling *transition*.

        Bounded breadth-first search over markings; returns ``None`` when
        no silent path of length <= *max_depth* works.
        """
        if self.is_enabled(marking, transition):
            return []
        silent = [t.name for t in self.silent_transitions()]
        queue: deque[tuple[Marking, list[str]]] = deque([(marking, [])])
        visited = {marking}
        while queue:
            current, path = queue.popleft()
            if len(path) >= max_depth:
                continue
            for name in silent:
                if not self.is_enabled(current, name):
                    continue
                following = self.fire(current, name)
                if following in visited:
                    continue
                extended = path + [name]
                if self.is_enabled(following, transition):
                    return extended
                visited.add(following)
                queue.append((following, extended))
        return None

    def consumed_by(self, transition: str) -> int:
        return sum(self.inputs[transition].values())

    def produced_by(self, transition: str) -> int:
        return sum(self.outputs[transition].values())
