"""Conformance-checking baseline (related work [13]): Petri nets + token replay."""

from repro.conformance.bpmn_to_petri import (
    ERROR_LABEL,
    TranslatedNet,
    bpmn_to_petri,
)
from repro.conformance.petri import Marking, PetriNet, Transition
from repro.conformance.tokenreplay import (
    ReplayOutcome,
    replay_events,
    replay_trail,
    trail_to_events,
)

__all__ = [
    "ERROR_LABEL",
    "Marking",
    "PetriNet",
    "ReplayOutcome",
    "Transition",
    "TranslatedNet",
    "bpmn_to_petri",
    "replay_events",
    "replay_trail",
    "trail_to_events",
]
