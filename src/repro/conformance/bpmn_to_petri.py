"""Translation of (restricted) BPMN into Petri nets for the baseline.

Section 6 of the paper notes that conformance-checking approaches are
"often based on Petri Nets" and that "existing solutions based on Petri
Nets either impose some restrictions on the syntax of BPMN ... or define
a formal semantics that deviates from the informal one".  This module is
exactly such a translation — deliberately the *baseline's* translation,
with its standard approximations, documented here:

* every sequence flow becomes a place; every task becomes a transition
  labeled ``pool.task``;
* a task with an attached error event routes through an intermediate
  place, from which a silent transition continues normally and an
  ``Err``-labeled transition takes the error path;
* XOR gateways become one silent transition per routing; AND gateways a
  single silent transition consuming/producing all branch places;
* **OR gateways are approximated** (default ``inclusive_join="subset"``):
  the split offers one silent transition per non-empty branch subset,
  the join one per non-empty subset of its input places — so the join
  may fire "early" on a subset of the activated branches (a known
  over-approximation of OR-join semantics in free-choice translations);
* with ``inclusive_join="counted"`` a *paired* OR split additionally
  deposits how many branches it activated into a count place, and the
  paired join consumes a same-size input subset together with the
  matching count token — the exact count-based OR-join of the COWS
  encoding, used by the static soundness analyzer
  (:mod:`repro.analysis.soundness`) to avoid spurious token leaks;
* message flows become shared message places between the thrower's and
  catcher's transitions;
* plain start events mark their outgoing-flow place initially.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.bpmn.model import Element, ElementType, Process
from repro.conformance.petri import Marking, PetriNet
from repro.errors import ConformanceError

#: The label of error transitions, matching the observable sys.Err.
ERROR_LABEL = "Err"


@dataclass(frozen=True)
class TranslatedNet:
    """The Petri net of a BPMN process plus its initial marking."""

    net: PetriNet
    initial: Marking
    process: Process

    def task_label(self, task_id: str) -> str:
        element = self.process.element(task_id)
        return f"{element.pool}.{task_id}"


def _flow_place(source: str, target: str) -> str:
    return f"f_{source}__{target}"


def _message_place(message: str) -> str:
    return f"msg_{message}"


def _or_count_place(split_id: str, size: int) -> str:
    """The count place pairing an inclusive split with its join."""
    return f"orcnt_{split_id}_{size}"


def bpmn_to_petri(
    process: Process, inclusive_join: str = "subset"
) -> TranslatedNet:
    """Translate *process*; raises :class:`ConformanceError` on unsupported shapes.

    ``inclusive_join`` selects the OR-join semantics: ``"subset"`` (the
    documented baseline over-approximation, default) or ``"counted"``
    (exact synchronization of paired splits/joins via count places).
    """
    if inclusive_join not in ("subset", "counted"):
        raise ConformanceError(
            f"inclusive_join must be 'subset' or 'counted', got {inclusive_join!r}"
        )
    net = PetriNet(name=process.process_id)
    initial_tokens: dict[str, int] = {}

    for flow in process.flows:
        net.add_place(_flow_place(flow.source, flow.target))
    for error_flow in process.error_flows:
        net.add_place(_flow_place(error_flow.source, error_flow.target))
    messages = {
        e.message
        for e in process.elements.values()
        if e.message is not None
    }
    for message in messages:
        net.add_place(_message_place(str(message)))

    for element in process.elements.values():
        _translate_element(net, process, element, initial_tokens, inclusive_join)

    return TranslatedNet(net=net, initial=Marking(initial_tokens), process=process)


def _in_places(process: Process, element: Element) -> list[str]:
    places = [
        _flow_place(source, element.element_id)
        for source in process.incoming(element.element_id)
    ]
    places.extend(
        _flow_place(error_flow.source, error_flow.target)
        for error_flow in process.error_flows
        if error_flow.target == element.element_id
    )
    return places


def _out_places(process: Process, element: Element) -> list[str]:
    return [
        _flow_place(element.element_id, target)
        for target in process.outgoing(element.element_id)
    ]


def _translate_element(
    net: PetriNet,
    process: Process,
    element: Element,
    initial_tokens: dict[str, int],
    inclusive_join: str = "subset",
) -> None:
    eid = element.element_id
    etype = element.element_type
    ins = _in_places(process, element)
    outs = _out_places(process, element)

    if etype is ElementType.START_EVENT:
        for place in outs:
            initial_tokens[place] = initial_tokens.get(place, 0) + 1
        return
    if etype is ElementType.MESSAGE_START_EVENT:
        transition = net.add_transition(f"t_{eid}")
        net.add_arc(_message_place(str(element.message)), transition.name)
        for place in outs:
            net.add_arc(transition.name, place)
        return
    if etype is ElementType.END_EVENT:
        transition = net.add_transition(f"t_{eid}")
        for place in ins:
            net.add_arc(place, transition.name)
        return
    if etype is ElementType.MESSAGE_END_EVENT:
        transition = net.add_transition(f"t_{eid}")
        for place in ins:
            net.add_arc(place, transition.name)
        net.add_arc(transition.name, _message_place(str(element.message)))
        return
    if etype is ElementType.MESSAGE_THROW_EVENT:
        transition = net.add_transition(f"t_{eid}")
        for place in ins:
            net.add_arc(place, transition.name)
        for place in outs:
            net.add_arc(transition.name, place)
        net.add_arc(transition.name, _message_place(str(element.message)))
        return
    if etype is ElementType.MESSAGE_CATCH_EVENT:
        transition = net.add_transition(f"t_{eid}")
        for place in ins:
            net.add_arc(place, transition.name)
        net.add_arc(_message_place(str(element.message)), transition.name)
        for place in outs:
            net.add_arc(transition.name, place)
        return
    if etype is ElementType.TASK:
        _translate_task(net, process, element, ins, outs)
        return
    if etype is ElementType.EXCLUSIVE_GATEWAY:
        for in_index, in_place in enumerate(ins):
            for out_index, out_place in enumerate(outs):
                transition = net.add_transition(f"t_{eid}_{in_index}_{out_index}")
                net.add_arc(in_place, transition.name)
                net.add_arc(transition.name, out_place)
        return
    if etype is ElementType.PARALLEL_GATEWAY:
        transition = net.add_transition(f"t_{eid}")
        for place in ins:
            net.add_arc(place, transition.name)
        for place in outs:
            net.add_arc(transition.name, place)
        return
    if etype is ElementType.INCLUSIVE_GATEWAY:
        _translate_inclusive(net, process, element, ins, outs, inclusive_join)
        return
    raise ConformanceError(f"unsupported element type {etype!r}")


def _translate_task(
    net: PetriNet,
    process: Process,
    element: Element,
    ins: list[str],
    outs: list[str],
) -> None:
    eid = element.element_id
    label = f"{element.pool}.{eid}"
    error_target = process.error_target(eid)
    if error_target is None:
        for index, in_place in enumerate(ins):
            transition = net.add_transition(f"t_{eid}_{index}", label=label)
            net.add_arc(in_place, transition.name)
            for place in outs:
                net.add_arc(transition.name, place)
        return
    # Task with an attached error event: run, then succeed or fail.
    mid = net.add_place(f"p_{eid}_running")
    for index, in_place in enumerate(ins):
        transition = net.add_transition(f"t_{eid}_{index}", label=label)
        net.add_arc(in_place, transition.name)
        net.add_arc(transition.name, mid)
    success = net.add_transition(f"t_{eid}_ok")
    net.add_arc(mid, success.name)
    for place in outs:
        net.add_arc(success.name, place)
    failure = net.add_transition(f"t_{eid}_err", label=ERROR_LABEL)
    net.add_arc(mid, failure.name)
    net.add_arc(failure.name, _flow_place(eid, error_target))


def _counted_pairing(process: Process, split_id: str) -> "Element | None":
    """The join of a split (or vice versa) when the pair qualifies for the
    counted translation: both sides exist and both genuinely branch."""
    join = process.paired_join(split_id)
    if join is None:
        return None
    if len(process.outgoing(split_id)) < 2:
        return None
    if len(process.incoming(join.element_id)) < 2:
        return None
    return join


def _translate_inclusive(
    net: PetriNet,
    process: Process,
    element: Element,
    ins: list[str],
    outs: list[str],
    inclusive_join: str = "subset",
) -> None:
    eid = element.element_id
    if len(outs) > 1:  # split: any non-empty subset of branches
        counted_join = (
            _counted_pairing(process, eid) if inclusive_join == "counted" else None
        )
        for subset in _subsets(outs):
            tag = "_".join(str(outs.index(p)) for p in subset)
            transition = net.add_transition(f"t_{eid}_s{tag}")
            for place in ins:
                net.add_arc(place, transition.name)
            for place in subset:
                net.add_arc(transition.name, place)
            if counted_join is not None:
                count_place = _or_count_place(eid, len(subset))
                net.add_place(count_place)
                net.add_arc(transition.name, count_place)
    else:  # join (or pass-through): any non-empty subset of inputs
        counted_split = (
            element.join_of
            if inclusive_join == "counted"
            and element.join_of is not None
            and element.join_of in process
            and _counted_pairing(process, element.join_of) is element
            else None
        )
        for subset in _subsets(ins):
            tag = "_".join(str(ins.index(p)) for p in subset)
            transition = net.add_transition(f"t_{eid}_j{tag}")
            for place in subset:
                net.add_arc(place, transition.name)
            if counted_split is not None:
                count_place = _or_count_place(counted_split, len(subset))
                net.add_place(count_place)
                net.add_arc(count_place, transition.name)
            for place in outs:
                net.add_arc(transition.name, place)


def _subsets(places: list[str]) -> list[tuple[str, ...]]:
    result: list[tuple[str, ...]] = []
    for size in range(1, len(places) + 1):
        result.extend(combinations(places, size))
    return result
