"""Token-replay conformance checking (Rozinat & van der Aalst [13]).

The fitness metric of the conformance-checking baseline the paper's
related work discusses: replay an event sequence over a Petri net, firing
silent transitions to enable logged activities when possible, *creating*
missing tokens when not, and count::

    fitness = 1/2 (1 - missing/consumed) + 1/2 (1 - remaining/produced)

A perfectly fitting trace has fitness 1 (no missing, no remaining
tokens).  Benchmark E12 contrasts these fitness verdicts with
Algorithm 1: token replay sees only the *task level* and, by design,
cannot express purposes, objects or fine-grained policies — while the
paper's replay operates on the same trails with full purpose context.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.audit.model import AuditTrail, LogEntry
from repro.conformance.bpmn_to_petri import ERROR_LABEL, TranslatedNet
from repro.conformance.petri import Marking


@dataclass(frozen=True)
class ReplayOutcome:
    """Token-replay accounting for one event sequence."""

    produced: int
    consumed: int
    missing: int
    remaining: int
    events: int
    forced_events: int

    @property
    def fitness(self) -> float:
        """The Rozinat & van der Aalst fitness in [0, 1]."""
        missing_part = 1.0 - (self.missing / self.consumed) if self.consumed else 1.0
        remaining_part = (
            1.0 - (self.remaining / self.produced) if self.produced else 1.0
        )
        return 0.5 * missing_part + 0.5 * remaining_part

    @property
    def fits(self) -> bool:
        """Whether the sequence replays perfectly (fitness == 1)."""
        return self.missing == 0 and self.remaining == 0


def trail_to_events(trail: AuditTrail | list[LogEntry]) -> list[str]:
    """Project a case trail to the event labels token replay understands.

    Consecutive entries of the same (role, task) collapse into a single
    task event — the closest a task-level log gets to the paper's 1-to-n
    task/entry mapping; failures become the ``Err`` event.
    """
    events: list[str] = []
    previous: tuple[str, str] | None = None
    for entry in trail:
        if entry.failed:
            events.append(ERROR_LABEL)
            previous = None
            continue
        key = (entry.role, entry.task)
        if key == previous:
            continue
        events.append(f"{entry.role}.{entry.task}")
        previous = key
    return events


def replay_events(
    translated: TranslatedNet,
    events: list[str],
    max_silent_depth: int = 30,
    drain_end: bool = True,
) -> ReplayOutcome:
    """Replay *events* over the translated net, with missing-token repair."""
    net = translated.net
    marking = translated.initial
    produced = len(translated.initial)  # initial tokens count as produced
    consumed = 0
    missing = 0
    forced = 0

    for label in events:
        candidates = net.labeled(label)
        if not candidates:
            # An activity the model does not know at all: fully missing.
            missing += 1
            consumed += 1
            forced += 1
            continue
        fired = False
        # Prefer a candidate reachable through silent steps.
        for transition in candidates:
            path = net.silent_path_to_enable(
                marking, transition.name, max_depth=max_silent_depth
            )
            if path is None:
                continue
            for silent_name in path:
                consumed += net.consumed_by(silent_name)
                produced += net.produced_by(silent_name)
                marking = net.fire(marking, silent_name)
            consumed += net.consumed_by(transition.name)
            produced += net.produced_by(transition.name)
            marking = net.fire(marking, transition.name)
            fired = True
            break
        if not fired:
            # Force the first candidate, creating the missing tokens.
            transition = candidates[0]
            marking, created = net.force_fire(marking, transition.name)
            missing += created
            consumed += net.consumed_by(transition.name)
            produced += net.produced_by(transition.name)
            forced += 1

    if drain_end:
        marking, extra_consumed, extra_produced = _drain_silently(
            translated, marking, max_silent_depth
        )
        consumed += extra_consumed
        produced += extra_produced

    remaining = len(marking)
    return ReplayOutcome(
        produced=produced,
        consumed=consumed,
        missing=missing,
        remaining=remaining,
        events=len(events),
        forced_events=forced,
    )


def _drain_silently(
    translated: TranslatedNet, marking: Marking, max_steps: int
) -> tuple[Marking, int, int]:
    """Fire silent transitions greedily to consume leftover routing tokens.

    Keeps end-of-trace accounting fair: tokens sitting in front of silent
    end-event transitions should not count as "remaining" behaviour.
    """
    net = translated.net
    consumed = 0
    produced = 0
    for _ in range(max_steps):
        fired = False
        for transition in net.silent_transitions():
            if net.is_enabled(marking, transition.name):
                consumed += net.consumed_by(transition.name)
                produced += net.produced_by(transition.name)
                marking = net.fire(marking, transition.name)
                fired = True
                break
        if not fired:
            break
    return marking, consumed, produced


def replay_trail(
    translated: TranslatedNet, trail: AuditTrail, **kwargs: object
) -> ReplayOutcome:
    """Convenience wrapper: project a trail to events and replay it."""
    return replay_events(translated, trail_to_events(trail), **kwargs)  # type: ignore[arg-type]
