"""Consistent case-to-shard routing for the streaming audit service.

Every case must be observed by exactly one :class:`~repro.core.monitor.
OnlineMonitor` shard — Algorithm 1 is stateful per case, so splitting a
case across shards would split its configuration frontier.  A plain
``hash(case) % n`` satisfies that, but reshuffles *every* case when the
shard count changes; the :class:`ConsistentHashRing` used here moves
only ``~1/n`` of the key space when a shard is added or removed, which
is what lets a future resize (or a drained shard's replacement) re-home
the minimum number of in-flight cases.

The ring is deterministic (SHA-256 over ``shard-name:replica`` and over
the case id), so the same case id maps to the same shard in every
process and every run — a property the differential test suite leans on.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Sequence


def _ring_hash(key: str) -> int:
    return int.from_bytes(
        hashlib.sha256(key.encode("utf-8")).digest()[:8], "big"
    )


class ConsistentHashRing:
    """A hash ring with virtual nodes mapping string keys to shard names."""

    def __init__(self, shards: Iterable[str], replicas: int = 64):
        """``replicas`` is the number of virtual nodes per shard — more
        replicas, smoother balance (64 keeps the worst shard within a
        few percent of fair for realistic case populations)."""
        if replicas < 1:
            raise ValueError("replicas must be at least 1")
        self._replicas = replicas
        self._points: list[tuple[int, str]] = []
        self._hashes: list[int] = []
        self._shards: list[str] = []
        # key -> shard memo: the ingest path routes every entry of a
        # case to the same shard, so the SHA-256 + bisect is paid once
        # per case, not once per entry.  Invalidated on any topology
        # change; bounded so a pathological key churn cannot leak.
        self._cache: dict[str, str] = {}
        for shard in shards:
            self.add_shard(shard)
        if not self._shards:
            raise ValueError("the ring needs at least one shard")

    @property
    def shards(self) -> Sequence[str]:
        return tuple(self._shards)

    @property
    def replicas(self) -> int:
        return self._replicas

    def add_shard(self, shard: str) -> None:
        if shard in self._shards:
            raise ValueError(f"shard {shard!r} is already on the ring")
        self._shards.append(shard)
        for replica in range(self._replicas):
            self._points.append((_ring_hash(f"{shard}:{replica}"), shard))
        self._points.sort()
        self._hashes = [point for point, _ in self._points]
        self._cache = {}

    def remove_shard(self, shard: str) -> None:
        if shard not in self._shards:
            raise ValueError(f"shard {shard!r} is not on the ring")
        self._shards.remove(shard)
        self._points = [(h, s) for h, s in self._points if s != shard]
        self._hashes = [point for point, _ in self._points]
        self._cache = {}

    def shard_for(self, key: str) -> str:
        """The shard owning *key*: first ring point at or after its hash.

        Memoized per key (benign under races: recomputation is
        idempotent, and a topology change swaps in a fresh dict).
        """
        cache = self._cache
        shard = cache.get(key)
        if shard is None:
            index = bisect.bisect_right(self._hashes, _ring_hash(key))
            if index == len(self._points):
                index = 0  # wrap around the ring
            shard = self._points[index][1]
            if len(cache) < 1_000_000:
                cache[key] = shard
        return shard

    def __len__(self) -> int:
        return len(self._shards)
