"""The shard supervisor: heartbeat-based crash and hang detection.

A :class:`~repro.serve.core._Shard` thread can die (an injected
``ShardKill``, an interpreter-level failure escaping the monitor's
per-case containment) or wedge (a pathological case whose replay never
returns).  Either way its queue stops draining and every case it owns
stalls.  The :class:`ShardSupervisor` polls each shard's heartbeat —
refreshed on every processed item and on every idle queue timeout — and
repairs through :meth:`ShardRouter._restart_shard`:

* **crash** — the thread is no longer alive but never processed an
  intentional stop: replace it, replay its cases from the store + WAL,
  quarantine the entry in flight at death as the poison suspect;
* **hang** — the thread is alive, mid-case, and its heartbeat is older
  than ``hang_timeout_s``: abandon it in place (it is marked so every
  late side effect is dropped), and bring up a replacement the same
  way.  The abandoned thread exits on its own the moment it wakes.

Restarts are bounded by :class:`~repro.core.resilience.RestartBudget`;
a shard that keeps dying is removed from the consistent-hash ring and
its cases re-homed to the survivors — a deterministic poison input
degrades capacity, never availability.
"""

from __future__ import annotations

import threading
import time


class ShardSupervisor(threading.Thread):
    """Watches shard heartbeats; delegates repair to the router."""

    def __init__(self, router):
        super().__init__(name="repro-serve-supervisor", daemon=True)
        self._router = router
        self._halt = threading.Event()

    def run(self) -> None:
        interval = self._router.config.heartbeat_interval_s
        hang_timeout = self._router.config.hang_timeout_s
        while not self._halt.wait(interval):
            if self._router.draining:
                continue
            # Snapshot: _restart_shard mutates the dict under its lock.
            for name, shard in list(self._router._shards.items()):
                if shard.abandoned or shard.stopped:
                    continue
                if not shard.is_alive():
                    self._router._restart_shard(name, "crashed")
                    continue
                if (
                    hang_timeout is not None
                    and shard.current_case is not None
                    and time.monotonic() - shard.last_beat > hang_timeout
                ):
                    self._router._restart_shard(name, "hung")

    def stop(self) -> None:
        """Stop watching and wait for any in-progress repair to finish."""
        self._halt.set()
        if self.is_alive():
            self.join()
