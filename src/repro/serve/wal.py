"""The per-shard write-ahead ingest log of the streaming audit service.

The audit is only as trustworthy as the trail it replays: an entry the
daemon *accepted* and then lost to a crash is a silent hole in the
record of processing — exactly the accountability gap the paper's
a-posteriori audit exists to close.  The WAL closes it on the serving
side: every accepted wire entry is appended here **before it is
acknowledged**, so after a ``kill -9`` the union of the audit store
(the batched, hash-chained long-term record) and the WAL delta is
precisely the set of acknowledged entries, and
:func:`repro.serve.recovery.recover` can rebuild in-flight monitor
state byte-identically to an uninterrupted run.

Design (one WAL per shard, in one directory):

* **CRC-framed records** — each record is ``<u32 payload length>
  <u32 crc32(payload)> <payload>``; the payload is one compact JSON
  object carrying the WAL sequence number, the case id, the per-case
  entry sequence number, and the wire form of the entry itself.
* **Batched fsync** — appends land in a process-local buffer (a plain
  ``bytearray``: no syscall, no GIL release, so the router's ingest
  lock is never held across I/O); every ``fsync_batch`` records the
  buffer drains to the unbuffered segment file in one raw write, so a
  *process* crash loses at most one batch.  ``commit()`` — driven by
  the router's flush timer and the ``sync`` durability barrier —
  drains + fsyncs; only then is an entry *durably* acknowledged.  The
  expensive fsync never runs inside the ingest path.
* **Segment rotation** — segments seal at ``segment_max_bytes`` and a
  new one opens, so retirement is whole-file deletion, never in-place
  truncation of live data.
* **Retirement after store commit** — the router calls
  :meth:`WalWriter.retire` with the highest WAL sequence the batched
  store flush just committed; only sealed segments entirely at or
  below that floor are deleted.  A record is therefore always in the
  WAL, in the store, or both — never in neither.
* **Truncated-tail tolerance** — a crash (or disk-full) mid-append
  leaves a torn final record; readers stop cleanly at the first bad
  frame of the *last* segment instead of raising.  A bad frame in any
  earlier segment is real corruption and raises
  :class:`WalCorruptionError` — those bytes were fsynced and sealed.

Format and recovery protocol are documented in ``docs/serving.md``
(operator view) and ``docs/robustness.md`` (failure model).
"""

from __future__ import annotations

import json
import os
import re
import struct
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Optional

from repro.audit.model import LogEntry
from repro.errors import ReproError
from repro.serve.protocol import entry_from_message, entry_to_message

#: First bytes of every segment file (8 bytes: name + format version).
MAGIC = b"RPWAL01\n"

_FRAME = struct.Struct("<II")  # payload length, crc32(payload)

#: Upper bound on one record's payload — anything larger is a torn or
#: corrupt length field, not a real entry.
_MAX_PAYLOAD = 1 << 24

#: One encoder for the whole module: ``json.dumps(..., separators=...)``
#: builds a fresh ``JSONEncoder`` per call, which is ~40% of the encode
#: cost on the append hot path.  ``entry_to_message`` emits only JSON
#: natives, so no ``default`` hook is needed.
_ENCODE = json.JSONEncoder(separators=(",", ":")).encode

#: Characters a JSON string must escape; almost no real field has any.
_NEEDS_ESCAPE = re.compile(r'[\\"\x00-\x1f]').search


def _json_str(value: Optional[str]) -> bytes:
    """``value`` as JSON bytes — fast path for plain ASCII strings."""
    if value is None:
        return b"null"
    if value.isascii() and _NEEDS_ESCAPE(value) is None:
        return b'"%s"' % value.encode("ascii")
    return _ENCODE(value).encode("utf-8")


def _entry_json(entry: LogEntry) -> bytes:
    """The ``entry_to_message`` wire dict, composed straight to bytes.

    Byte-identical to ``_ENCODE(entry_to_message(entry))`` (a unit test
    holds the two in lock-step) but ~25% cheaper — this runs on the
    append hot path, under the router's ingest lock.
    """
    obj = entry.obj
    return (
        b'{"op":"entry","user":%s,"role":%s,"action":%s,"obj":%s,'
        b'"task":%s,"case":%s,"ts":%s,"status":%s}'
        % (
            _json_str(entry.user),
            _json_str(entry.role),
            _json_str(entry.action),
            _json_str(str(obj) if obj is not None else None),
            _json_str(entry.task),
            _json_str(entry.case),
            _json_str(entry.timestamp.isoformat()),
            _json_str(entry.status.value),
        )
    )

_SEGMENT_RE = re.compile(r"^(?P<shard>.+)-(?P<index>\d{8})\.wal$")


class WalError(ReproError):
    """The write-ahead log could not be written or read."""


class WalCorruptionError(WalError):
    """A sealed (fsynced) WAL region failed its framing or CRC check."""


@dataclass(frozen=True)
class WalRecord:
    """One accepted entry as the WAL remembers it."""

    wal_seq: int  # monotone per shard, assigned at append
    case: str
    case_seq: int  # 1-based position of this entry within its case
    entry: LogEntry
    shard: str = ""


@dataclass(frozen=True)
class WalReadResult:
    """Everything a replay could salvage from one shard's segments."""

    records: tuple[WalRecord, ...]
    segments: int
    torn_tail: bool  # the final segment ended in a torn record


def _decode_payload(payload: bytes, shard: str) -> WalRecord:
    message = json.loads(payload)
    return WalRecord(
        wal_seq=int(message["q"]),
        case=str(message["c"]),
        case_seq=int(message["n"]),
        entry=entry_from_message(message["e"]),
        shard=shard,
    )


def segment_paths(directory: "str | Path", shard: Optional[str] = None) -> list[Path]:
    """Segment files in *directory*, ordered ``(shard, index)``.

    ``shard=None`` returns every shard's segments — recovery reads them
    all, whatever shard count the previous run used.
    """
    base = Path(directory)
    if not base.is_dir():
        return []
    found: list[tuple[str, int, Path]] = []
    for path in base.iterdir():
        match = _SEGMENT_RE.match(path.name)
        if match is None:
            continue
        if shard is not None and match.group("shard") != shard:
            continue
        found.append((match.group("shard"), int(match.group("index")), path))
    found.sort()
    return [path for _, _, path in found]


def shard_names_on_disk(directory: "str | Path") -> list[str]:
    """Every shard that left segments in *directory* (sorted)."""
    names = set()
    for path in segment_paths(directory):
        match = _SEGMENT_RE.match(path.name)
        if match is not None:
            names.add(match.group("shard"))
    return sorted(names)


def read_segment(
    path: "str | Path", shard: str, tolerant: bool = True
) -> tuple[list[WalRecord], bool]:
    """``(records, torn)`` for one segment file.

    ``tolerant`` governs the tail: a short or CRC-failing final frame is
    reported as ``torn=True`` and reading stops; with ``tolerant=False``
    the same condition raises :class:`WalCorruptionError`.  A bad magic
    header always raises — that file was never a segment.
    """
    data = Path(path).read_bytes()
    if not data.startswith(MAGIC):
        if MAGIC.startswith(data):
            # The file died before (or during) its header write — a
            # crash artifact carrying nothing, not corruption.
            return [], bool(data)
        raise WalCorruptionError(
            f"{path}: not a WAL segment (bad magic {data[:8]!r})"
        )
    records, torn, offset = _scan_frames(data, shard, path)
    if torn and not tolerant:
        raise WalCorruptionError(
            f"{path}: torn record at byte {offset} "
            f"({len(data) - offset} trailing byte(s))"
        )
    return records, torn


def _scan_frames(
    data: bytes, shard: str, path: "str | Path"
) -> tuple[list[WalRecord], bool, int]:
    """``(records, torn, clean_offset)`` — the decodable frame prefix.

    ``clean_offset`` is the byte position just past the last good frame;
    everything after it (if ``torn``) failed framing or CRC.
    """
    records: list[WalRecord] = []
    offset = len(MAGIC)
    torn = False
    while offset < len(data):
        frame = data[offset:offset + _FRAME.size]
        if len(frame) < _FRAME.size:
            torn = True
            break
        length, crc = _FRAME.unpack(frame)
        if length > _MAX_PAYLOAD:
            torn = True
            break
        payload = data[offset + _FRAME.size:offset + _FRAME.size + length]
        if len(payload) < length or zlib.crc32(payload) != crc:
            torn = True
            break
        try:
            records.append(_decode_payload(payload, shard))
        except Exception as error:
            # A frame whose CRC matched but whose JSON does not decode:
            # the record was written corrupt, not torn off.
            raise WalCorruptionError(
                f"{path}: record at byte {offset} passed CRC but does "
                f"not decode: {error}"
            ) from error
        offset += _FRAME.size + length
    return records, torn, offset


def read_wal(
    directory: "str | Path", shard: Optional[str] = None
) -> WalReadResult:
    """Replay one shard's (or every shard's) segments, oldest first.

    Per shard, only the *final* segment may end torn — earlier segments
    were sealed after an fsync, so a bad frame there raises
    :class:`WalCorruptionError`.  Records keep per-shard append order,
    which is all recovery needs: a case's entries all live in one
    shard's WAL, so per-case order is preserved.
    """
    records: list[WalRecord] = []
    torn = False
    paths = segment_paths(directory, shard)
    shards = (
        [shard] if shard is not None else shard_names_on_disk(directory)
    )
    for name in shards:
        shard_paths = segment_paths(directory, name)
        for position, path in enumerate(shard_paths):
            last = position == len(shard_paths) - 1
            found, was_torn = read_segment(path, name, tolerant=last)
            records.extend(found)
            torn = torn or was_torn
    return WalReadResult(
        records=tuple(records), segments=len(paths), torn_tail=torn
    )


class WalWriter:
    """One shard's append-only ingest log (thread-safe).

    ``fault_hook`` is the deterministic failure seam used by the chaos
    suite (:mod:`repro.testing.faults`): it is invoked with ``"append"``
    before every record write and ``"fsync"`` before every fsync, and
    whatever it raises propagates to the caller — simulating disk-full
    without needing a full disk.
    """

    def __init__(
        self,
        directory: "str | Path",
        shard: str,
        segment_max_bytes: int = 4 << 20,
        fsync_batch: int = 256,
        fault_hook: Optional[Callable[[str], None]] = None,
    ):
        if segment_max_bytes < len(MAGIC) + _FRAME.size:
            raise ValueError("segment_max_bytes is smaller than one frame")
        if fsync_batch < 1:
            raise ValueError("fsync_batch must be at least 1")
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self.shard = shard
        self._segment_max = segment_max_bytes
        self._fsync_batch = fsync_batch
        self._fault_hook = fault_hook
        self._lock = threading.RLock()
        self._file = None
        self._file_path: Optional[Path] = None
        self._file_bytes = 0
        self._segment_first_seq = 0
        #: sealed segments, oldest first: (path, first_seq, last_seq)
        self._sealed: list[tuple[Path, int, int]] = []
        self.unflushed_records = 0
        self.unflushed_bytes = 0
        self.records_appended = 0
        self.fsyncs = 0
        self.flushes = 0  # flush-to-OS batches (no fsync)
        self._os_buffered = 0  # unflushed_records already pushed to the OS
        self.last_seq = 0
        self._next_index = 1
        #: torn tails truncated off adopted segments at startup
        self.tears_repaired = 0
        #: per-case JSON key bytes, built once per case (append hot path)
        self._case_json: dict[str, bytes] = {}
        #: frames not yet handed to the OS (drained in one write/batch)
        self._buffer = bytearray()
        self._adopt_existing()
        self._open_segment()

    # -- startup -----------------------------------------------------------
    def _adopt_existing(self) -> None:
        """Continue sequence numbers past whatever is already on disk.

        Existing segments are *never appended to*; they are adopted as
        sealed history so retirement and recovery keep working across
        restarts.  A torn tail on the crashed writer's final segment is
        **repaired here** — truncated to the last good frame — because
        once this writer opens a fresh segment, the adopted one is no
        longer "last" and every later read of it is rightly strict.
        The dropped suffix was never acknowledged, so cutting it loses
        nothing the protocol promised to keep.
        """
        for path in segment_paths(self._dir, self.shard):
            match = _SEGMENT_RE.match(path.name)
            assert match is not None
            self._next_index = max(self._next_index, int(match.group("index")) + 1)
            data = path.read_bytes()
            if not data.startswith(MAGIC):
                if MAGIC.startswith(data):
                    # Died before its header finished: carries nothing.
                    path.unlink(missing_ok=True)
                    continue
                raise WalCorruptionError(
                    f"{path}: not a WAL segment (bad magic {data[:8]!r})"
                )
            records, torn, clean = _scan_frames(data, self.shard, path)
            if torn:
                with open(path, "r+b") as repair:
                    repair.truncate(clean)
                    repair.flush()
                    os.fsync(repair.fileno())
                self.tears_repaired += 1
            if records:
                first, last = records[0].wal_seq, records[-1].wal_seq
                self.last_seq = max(self.last_seq, last)
                self._sealed.append((path, first, last))
            else:
                # An empty or fully-torn segment carries nothing worth
                # retiring against; drop it now.
                path.unlink(missing_ok=True)

    def _open_segment(self) -> None:
        path = self._dir / f"{self.shard}-{self._next_index:08d}.wal"
        self._next_index += 1
        # Unbuffered on purpose: frames accumulate in ``self._buffer``
        # (a plain bytearray — no syscall, no GIL release) and hit the
        # file in one raw write per batch.  A per-record
        # ``BufferedWriter.write`` releases the GIL each call, and under
        # the router's ingest lock that turns into a convoy with the
        # shard workers — measured at ~10x the cost of the write itself.
        self._file = open(path, "wb", buffering=0)
        self._file.write(MAGIC)  # raw write: the header is out now
        self._file_path = path
        self._file_bytes = len(MAGIC)
        self._buffer.clear()
        self._segment_first_seq = self.last_seq + 1

    # -- the write path ----------------------------------------------------
    def append(self, entry: LogEntry, case_seq: int) -> int:
        """Frame and buffer one accepted entry; returns its WAL seq.

        Raises whatever the OS (or the fault hook) raises — the caller
        must then *reject* the entry, because an entry that is not in
        the WAL was never accepted.
        """
        with self._lock:
            if self._file is None:
                raise WalError(f"WAL for {self.shard} is closed")
            seq = self.last_seq + 1
            # Composed by hand rather than through a nested json.dumps:
            # this runs under the router's ingest lock, so every µs here
            # is a µs of global intake stall.  The case key repeats for
            # every entry of a case, so its JSON form is cached.
            case_json = self._case_json.get(entry.case)
            if case_json is None:
                case_json = _json_str(entry.case)
                self._case_json[entry.case] = case_json
            payload = b'{"q":%d,"c":%s,"n":%d,"e":%s}' % (
                seq,
                case_json,
                case_seq,
                _entry_json(entry),
            )
            frame = _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
            if self._fault_hook is not None:
                self._fault_hook("append")
            self._buffer += frame
            self.last_seq = seq
            self.records_appended += 1
            self._file_bytes += len(frame)
            self.unflushed_records += 1
            self.unflushed_bytes += len(frame)
            if self.unflushed_records - self._os_buffered >= self._fsync_batch:
                # Push to the OS, bounding what a *process* crash can
                # lose — but never fsync here: that is milliseconds of
                # ingest stall, and power-loss durability is promised
                # only at sync barriers (``commit()``).
                self._drain_locked()
                self.flushes += 1
            if self._file_bytes >= self._segment_max:
                self._rotate_locked()
            return seq

    def _drain_locked(self) -> None:
        """One raw write hands the buffered frames to the OS."""
        if self._buffer:
            self._file.write(self._buffer)
            self._buffer.clear()
        self._os_buffered = self.unflushed_records

    def commit(self) -> int:
        """Flush + fsync everything buffered; returns records made durable."""
        with self._lock:
            return self._commit_locked()

    def _commit_locked(self) -> int:
        if self._file is None or self.unflushed_records == 0:
            return 0
        flushed = self.unflushed_records
        if self._fault_hook is not None:
            self._fault_hook("fsync")
        self._drain_locked()
        os.fsync(self._file.fileno())
        self.fsyncs += 1
        self.unflushed_records = 0
        self.unflushed_bytes = 0
        self._os_buffered = 0
        return flushed

    def _rotate_locked(self) -> None:
        self._commit_locked()
        assert self._file is not None and self._file_path is not None
        self._file.close()
        if self.last_seq >= self._segment_first_seq:
            self._sealed.append(
                (self._file_path, self._segment_first_seq, self.last_seq)
            )
        else:  # rotated before any record landed — nothing to keep
            self._file_path.unlink(missing_ok=True)
        self._open_segment()

    # -- retirement --------------------------------------------------------
    def retire(self, upto_seq: int) -> int:
        """Delete sealed segments wholly at or below *upto_seq*.

        Called once the batched store flush covering *upto_seq* has
        committed — the long-term record now owns those entries.  The
        open segment is never deleted here.  Returns segments removed.
        """
        removed = 0
        with self._lock:
            keep: list[tuple[Path, int, int]] = []
            for path, first, last in self._sealed:
                if last <= upto_seq:
                    path.unlink(missing_ok=True)
                    removed += 1
                else:
                    keep.append((path, first, last))
            self._sealed = keep
        return removed

    def reset(self) -> None:
        """Drop *all* segments and start a fresh one.

        Only safe once every record has been committed to the store —
        recovery calls this after its post-replay flush is durable.
        """
        with self._lock:
            for path, _, _ in self._sealed:
                path.unlink(missing_ok=True)
            self._sealed = []
            if self._file is not None:
                self._file.close()
                assert self._file_path is not None
                self._file_path.unlink(missing_ok=True)
            self.unflushed_records = 0
            self.unflushed_bytes = 0
            self._open_segment()

    def close(self) -> None:
        with self._lock:
            if self._file is None:
                return
            self._commit_locked()
            self._file.close()
            self._file = None

    # -- inspection --------------------------------------------------------
    @property
    def segment_count(self) -> int:
        with self._lock:
            return len(self._sealed) + (1 if self._file is not None else 0)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "records": self.records_appended,
                "last_seq": self.last_seq,
                "unflushed_records": self.unflushed_records,
                "unflushed_bytes": self.unflushed_bytes,
                "segments": self.segment_count,
                "fsyncs": self.fsyncs,
                "flushes": self.flushes,
                "tears_repaired": self.tears_repaired,
            }


def wal_records_by_case(
    records: Iterable[WalRecord],
) -> dict[str, list[WalRecord]]:
    """Group records per case, preserving append order."""
    grouped: dict[str, list[WalRecord]] = {}
    for record in records:
        grouped.setdefault(record.case, []).append(record)
    return grouped
