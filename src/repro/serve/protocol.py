"""The streaming audit service's wire protocol (JSON lines).

One JSON object per ``\\n``-terminated line, both directions.  Client
operations carry an ``"op"`` key; server messages carry an ``"event"``
key.  The full vocabulary, field tables, and examples are documented in
``docs/serving.md``; this module is the single place both the server and
the test clients encode/decode it, so the two cannot drift.

Client → server operations:

* ``{"op": "entry", ...}`` — one Definition-4 log entry (fields below);
* ``{"op": "xes", "document": "<log .../>"}`` — an XES fragment whose
  events are ingested as if sent individually;
* ``{"op": "sync", "id": ...}`` — barrier: answered with ``synced``
  once every entry sent before it has been processed by its shard;
* ``{"op": "status"}`` — a service statistics snapshot;
* ``{"op": "results"}`` — per-case final states and canonical verdict
  digests (implies a barrier);
* ``{"op": "bye"}`` — polite close.

Entry fields mirror :class:`repro.audit.model.LogEntry`: ``user``,
``role``, ``action``, ``obj`` (string or null), ``task``, ``case``,
``ts`` (the paper's ``YYYYMMDDHHMM`` or ISO-8601), ``status``
(``success``/``failure``, default success).  An optional ``"seq"``
(1-based per case) numbers the entry within its case: a numbered
re-send is deduplicated server-side, which is what makes a client's
resume after a reconnect idempotent (``docs/robustness.md``).

``entry`` and ``xes`` operations may additionally carry a
``"traceparent"`` field — a W3C Trace Context header value
(``00-<32 hex>-<16 hex>-01``).  When the service runs with tracing
enabled, the sender's context becomes the remote parent of the case's
trace (see ``docs/observability.md``); malformed values are ignored,
never rejected — trace propagation is best-effort and must not cost an
entry.

Server → client events: ``hello``, ``verdict`` (a per-case state
transition, streamed as it happens), ``error`` (a rejected input line —
the stream stays live), ``busy`` (the entry was *refused under
backpressure* — unlike ``error`` it is retryable and carries
``retry_after_s``, plus ``shed: true`` when admission control dropped
it outright and ``duplicate: true`` when the refusal is really an ack
of an already-accepted re-send), ``synced``, ``status``, ``results``,
``final`` (drain-time last word on a case), ``bye``.
"""

from __future__ import annotations

import json
from datetime import datetime
from sys import intern
from typing import Optional

from repro.audit.model import LogEntry, Status, parse_timestamp
from repro.errors import ReproError
from repro.policy.model import ObjectRef

# -- operations (client -> server) ------------------------------------------
OP_ENTRY = "entry"
OP_XES = "xes"
OP_SYNC = "sync"
OP_STATUS = "status"
OP_RESULTS = "results"
OP_BYE = "bye"

OPERATIONS = frozenset(
    {OP_ENTRY, OP_XES, OP_SYNC, OP_STATUS, OP_RESULTS, OP_BYE}
)

# -- events (server -> client) ----------------------------------------------
EV_HELLO = "hello"
EV_VERDICT = "verdict"
EV_ERROR = "error"
EV_BUSY = "busy"
EV_SYNCED = "synced"
EV_STATUS = "status"
EV_RESULTS = "results"
EV_FINAL = "final"
EV_BYE = "bye"

#: Protocol revision, announced in ``hello`` for client compatibility.
PROTOCOL_VERSION = 1


class ProtocolError(ReproError):
    """A request line the service could not decode or dispatch."""


def encode_message(message: dict) -> bytes:
    """One protocol message as a ``\\n``-terminated JSON-line."""
    return (
        json.dumps(message, separators=(",", ":"), default=str) + "\n"
    ).encode("utf-8")


def decode_message(line: "bytes | str") -> dict:
    """Decode one line into a message dict (:class:`ProtocolError` on junk)."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError(f"request is not UTF-8: {error}") from error
    try:
        message = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"request is not valid JSON: {error}") from error
    if not isinstance(message, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(message).__name__}"
        )
    return message


def decode_jsonl(
    data: "bytes | str", tolerant: bool = True
) -> tuple[list[dict], bool]:
    """Decode a JSON-lines buffer, tolerating a torn trailing line.

    A crash (the sender's or ours) mid-write leaves the final line
    truncated; a reader that raises on it loses every *complete* line
    before it.  This decoder returns ``(messages, torn)``: all lines
    that decode to JSON objects, and whether the buffer ended in an
    undecodable partial line.  ``tolerant=False`` restores strictness —
    the torn tail raises :class:`ProtocolError`.  Only the *final*
    non-empty line may be torn: junk in the middle of the buffer is
    corruption, not truncation, and always raises.
    """
    if isinstance(data, bytes):
        try:
            text = data.decode("utf-8")
        except UnicodeDecodeError:
            # The torn byte sequence may split a UTF-8 code point; keep
            # everything decodable and treat the remainder as the tail.
            text = data.decode("utf-8", errors="replace")
    else:
        text = data
    lines = [line for line in text.split("\n") if line.strip()]
    ends_clean = text.endswith("\n")
    messages: list[dict] = []
    torn = False
    for index, line in enumerate(lines):
        last = index == len(lines) - 1
        try:
            message = json.loads(line)
            if not isinstance(message, dict):
                raise ValueError("not a JSON object")
        except ValueError as error:
            if last and not ends_clean:
                torn = True
                break
            raise ProtocolError(
                f"line {index + 1} is not a JSON object: {error}"
            ) from None
        messages.append(message)
    if torn and not tolerant:
        raise ProtocolError(
            f"buffer ends in a torn line ({lines[-1][:40]!r}...)"
        )
    return messages, torn


def _parse_ts(text: str) -> datetime:
    """Accept the paper's ``YYYYMMDDHHMM`` or any ISO-8601 timestamp."""
    if len(text) == 12 and text.isdigit():
        return parse_timestamp(text)
    try:
        return datetime.fromisoformat(text)
    except ValueError as error:
        raise ProtocolError(
            f"timestamp {text!r} is neither YYYYMMDDHHMM nor ISO-8601"
        ) from error


def entry_from_message(message: dict) -> LogEntry:
    """Decode an ``entry`` operation into a validated :class:`LogEntry`."""
    missing = [
        key
        for key in ("user", "role", "action", "task", "case", "ts")
        if not message.get(key)
    ]
    if missing:
        raise ProtocolError(
            f"entry is missing required field(s): {', '.join(missing)}"
        )
    obj_text = message.get("obj")
    try:
        obj: Optional[ObjectRef] = (
            ObjectRef.parse(obj_text) if obj_text else None
        )
    except Exception as error:
        raise ProtocolError(f"bad object reference {obj_text!r}: {error}") from error
    status_text = message.get("status", Status.SUCCESS.value)
    try:
        status = Status(status_text)
    except ValueError:
        raise ProtocolError(
            f"status must be success or failure, got {status_text!r}"
        ) from None
    ts = message["ts"]
    if not isinstance(ts, str):
        raise ProtocolError(f"ts must be a string timestamp, got {ts!r}")
    # Intern the canonical vocabulary once at the wire boundary: every
    # downstream hot-path dict keyed by these strings — the table tier's
    # (task, role) symbol interner, the keyer caches, case routing —
    # then compares by pointer and hashes a given string at most once.
    return LogEntry(
        user=intern(str(message["user"])),
        role=intern(str(message["role"])),
        action=intern(str(message["action"])),
        obj=obj,
        task=intern(str(message["task"])),
        case=intern(str(message["case"])),
        timestamp=_parse_ts(ts),
        status=status,
    )


def entry_seq(message: dict) -> Optional[int]:
    """The optional per-case sequence number of an ``entry`` operation.

    ``None`` when absent (an unnumbered entry — no dedup); a positive
    int otherwise; :class:`ProtocolError` on anything else.
    """
    seq = message.get("seq")
    if seq is None:
        return None
    if isinstance(seq, bool) or not isinstance(seq, int) or seq < 1:
        raise ProtocolError(
            f"seq must be a positive integer, got {seq!r}"
        )
    return seq


def entry_to_message(
    entry: LogEntry,
    traceparent: Optional[str] = None,
    seq: Optional[int] = None,
) -> dict:
    """Encode a :class:`LogEntry` as an ``entry`` operation (round-trips).

    ``traceparent`` attaches the sender's W3C trace context, making the
    client span the remote parent of the case's service-side trace.
    ``seq`` numbers the entry within its case for idempotent re-sends.
    """
    message = {
        "op": OP_ENTRY,
        "user": entry.user,
        "role": entry.role,
        "action": entry.action,
        "obj": str(entry.obj) if entry.obj is not None else None,
        "task": entry.task,
        "case": entry.case,
        "ts": entry.timestamp.isoformat(),
        "status": entry.status.value,
    }
    if traceparent is not None:
        message["traceparent"] = traceparent
    if seq is not None:
        message["seq"] = seq
    return message
