"""The asyncio audit daemon (``repro serve``).

:class:`AuditService` wraps a :class:`~repro.serve.core.ShardRouter`
with the network surface:

* a **TCP JSON-lines endpoint** speaking :mod:`repro.serve.protocol` —
  clients stream ``entry``/``xes`` operations and receive per-case
  ``verdict`` events as transitions happen;
* a minimal **HTTP endpoint** (GET/HEAD; anything else is a clean 405)
  with ``/healthz`` (liveness + a statistics snapshot including
  per-shard queue depth and in-flight cases), ``/metrics`` (Prometheus
  text format from the telemetry registry), and ``/metrics.json`` (the
  JSON snapshot ``repro top`` samples);
* a **flush timer** committing buffered entries to the audit store
  every ``flush_interval_s``, plus optional temporal sweeps;
* **graceful drain**: on SIGTERM (wired by the CLI) the service stops
  accepting input, lets every shard finish, flushes and
  integrity-checks the store, checkpoints automata, then sends each
  connected client the ``final`` verdict of every case it touched and
  a ``bye``.

Thread/loop topology: the event loop owns all sockets; shard threads
call back via ``loop.call_soon_threadsafe`` into per-connection outbox
queues, so writers are only ever touched from the loop.
"""

from __future__ import annotations

import asyncio
import json
from datetime import datetime
from typing import Optional

from repro.audit.xes import XesError, import_xes
from repro.errors import ReproError
from repro.obs import (
    SERVE_CLIENT,
    SERVE_STARTED,
    to_json,
    to_prometheus,
)
from repro.serve.core import DrainReport, ShardRouter
from repro.serve.protocol import (
    EV_BUSY,
    EV_BYE,
    EV_ERROR,
    EV_FINAL,
    EV_HELLO,
    EV_RESULTS,
    EV_STATUS,
    EV_SYNCED,
    OP_BYE,
    OP_ENTRY,
    OP_RESULTS,
    OP_STATUS,
    OP_SYNC,
    OP_XES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_message,
    encode_message,
    entry_from_message,
    entry_seq,
)


class _Connection:
    """One client: an outbox queue pumped to the writer by a loop task.

    ``post`` is the thread-safe face shard threads see; ``send`` is the
    loop-side fast path.  After ``close`` both become no-ops — verdicts
    for a disconnected client are simply dropped (the store and the
    ``results`` op are the durable record).
    """

    def __init__(
        self, loop: asyncio.AbstractEventLoop, writer: asyncio.StreamWriter
    ):
        self._loop = loop
        self._writer = writer
        self._outbox: "asyncio.Queue[Optional[dict]]" = asyncio.Queue()
        self._closed = False
        self.entries_sent = 0
        self.cases: set[str] = set()
        self.pump_task: Optional[asyncio.Task] = None

    def send(self, message: dict) -> None:
        if not self._closed:
            self._outbox.put_nowait(message)

    def post(self, message: dict) -> None:
        """Thread-safe send (used as the router's subscriber)."""
        if self._closed:
            return
        try:
            self._loop.call_soon_threadsafe(self.send, message)
        except RuntimeError:  # pragma: no cover - loop already closed
            pass

    async def pump(self) -> None:
        while True:
            message = await self._outbox.get()
            if message is None:
                # The close sentinel — everything queued before it has
                # been written, so a `bye` response is never dropped by
                # the close racing the pump.
                return
            self._writer.write(encode_message(message))
            try:
                await self._writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                self._closed = True
                return

    def close(self) -> None:
        self._closed = True
        self._outbox.put_nowait(None)


class AuditService:
    """The audit daemon: TCP + HTTP front end over a shard router."""

    def __init__(
        self,
        router: ShardRouter,
        host: str = "127.0.0.1",
        port: int = 0,
        http_port: Optional[int] = 0,
        control=None,
    ):
        """``port``/``http_port`` of 0 bind an ephemeral port (read the
        chosen one back from :attr:`port`/:attr:`http_port` after
        :meth:`start`); ``http_port=None`` disables the HTTP endpoint.

        ``control`` mounts a
        :class:`~repro.control.api.ControlPlane` under ``/api/`` on the
        HTTP listener (duck-typed: anything with a
        ``handle(method, path, query, body)`` triple-return works).
        Without one, ``/api/*`` answers 404."""
        self.router = router
        self._control = control
        self._host = host
        self._port_requested = port
        self._http_port_requested = http_port
        self.port: Optional[int] = None
        self.http_port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._http_server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ticker: Optional[asyncio.Task] = None
        self._connections: set[_Connection] = set()
        #: live ``_on_client`` tasks — drain reaps them so none outlive
        #: the loop (a destroyed-pending handler corrupts interpreter
        #: state for whatever runs next in this process)
        self._client_tasks: set[asyncio.Task] = set()
        self._drained: Optional[DrainReport] = None
        self._drain_lock = asyncio.Lock()
        tel = router._tel
        self._tel = tel
        self._m_connections = tel.registry.counter(
            "serve_connections_total", "client connections accepted"
        )
        self._m_protocol_errors = tel.registry.counter(
            "serve_protocol_errors_total", "request lines rejected"
        )

    # -- lifecycle ---------------------------------------------------------
    async def start(self, recover: bool = False) -> None:
        """Start the router and listeners.

        ``recover=True`` first rebuilds in-flight monitor state from the
        audit store + write-ahead log (``repro serve --recover``) —
        the listeners only open once recovery has replayed everything,
        so clients never race a half-rebuilt monitor.
        """
        self._loop = asyncio.get_running_loop()
        self.router.start()
        if recover:
            from repro.serve.recovery import recover as run_recovery

            await self._loop.run_in_executor(
                None, run_recovery, self.router
            )
        self._server = await asyncio.start_server(
            self._on_client, self._host, self._port_requested
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self._http_port_requested is not None:
            self._http_server = await asyncio.start_server(
                self._on_http, self._host, self._http_port_requested
            )
            self.http_port = self._http_server.sockets[0].getsockname()[1]
        self._ticker = asyncio.create_task(self._tick())
        self._tel.events.emit(
            SERVE_STARTED,
            host=self._host,
            port=self.port,
            http_port=self.http_port,
            shards=len(self.router.shard_names),
        )

    async def _tick(self) -> None:
        interval = self.router.config.flush_interval_s
        sweep_due = self.router._temporal is not None
        while True:
            await asyncio.sleep(interval)
            self.router.flush()
            if self.router.wal_enabled:
                # Bound WAL lag: records buffered since the last batch
                # fsync become durable at least once per tick.
                await asyncio.get_running_loop().run_in_executor(
                    None, self.router.wal_commit
                )
            if sweep_due:
                self.router.sweep(datetime.now())

    async def drain(self) -> DrainReport:
        """Graceful shutdown; safe to call more than once."""
        async with self._drain_lock:
            if self._drained is not None:
                return self._drained
            if self._ticker is not None:
                self._ticker.cancel()
            for server in (self._server, self._http_server):
                if server is not None:
                    server.close()
                    await server.wait_closed()
            # The router joins threads — keep the loop responsive.
            report = await asyncio.get_running_loop().run_in_executor(
                None, self.router.drain
            )
            results = self.router.results()
            for conn in list(self._connections):
                for case in sorted(conn.cases):
                    final = results.get(case)
                    if final is not None:
                        conn.send({"event": EV_FINAL, **final})
                conn.send({"event": EV_BYE, "reason": "drained"})
                conn.close()
            # Reap every client handler before the loop can go away: a
            # pending task destroyed with its loop raises into whatever
            # the interpreter is doing next (ast.parse has been seen to
            # fail with SystemError mid-import).
            tasks = [t for t in self._client_tasks if not t.done()]
            for t in tasks:
                t.cancel()
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            self._drained = report
            return report

    # -- the JSON-lines endpoint -------------------------------------------
    async def _on_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        assert self._loop is not None
        task = asyncio.current_task()
        if task is not None:
            self._client_tasks.add(task)
            task.add_done_callback(self._client_tasks.discard)
        conn = _Connection(self._loop, writer)
        self._connections.add(conn)
        self._m_connections.inc()
        self._tel.events.emit(SERVE_CLIENT, phase="connect")
        conn.send(
            {
                "event": EV_HELLO,
                "version": PROTOCOL_VERSION,
                "shards": len(self.router.shard_names),
            }
        )
        conn.pump_task = asyncio.create_task(conn.pump())
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.endswith(b"\n"):
                    # readline only returns an unterminated line at EOF:
                    # the peer died (or was killed) mid-write.  A torn
                    # trailing line is truncation, not a protocol error —
                    # drop it silently; the sender never saw an ack for
                    # it and will re-send after reconnecting.
                    break
                if not line.strip():
                    continue
                if not await self._dispatch(line, conn):
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass  # mid-stream disconnect: the stream state survives
        finally:
            self._connections.discard(conn)
            self._tel.events.emit(
                SERVE_CLIENT, phase="disconnect", entries=conn.entries_sent
            )
            conn.close()
            if conn.pump_task is not None:
                try:
                    await asyncio.wait_for(conn.pump_task, timeout=1.0)
                except (asyncio.TimeoutError, asyncio.CancelledError):
                    conn.pump_task.cancel()
                except RuntimeError:
                    # This coroutine is being closed (GeneratorExit) or
                    # the loop is already gone — awaiting is impossible;
                    # cancel and let the loop's own teardown reap it.
                    try:
                        conn.pump_task.cancel()
                    except RuntimeError:
                        pass  # loop closed: nothing left to schedule on
            writer.close()
            try:
                # wait_closed can hang on abruptly-reset peers (fixed in
                # 3.12); bound it, and absorb the cancellation a shutting
                # down loop delivers here — this is already cleanup.
                await asyncio.wait_for(writer.wait_closed(), timeout=1.0)
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.TimeoutError,
                asyncio.CancelledError,
                RuntimeError,
            ):
                pass

    async def _dispatch(self, line: bytes, conn: _Connection) -> bool:
        """Handle one request line; False ends the connection politely."""
        try:
            message = decode_message(line)
            op = message.get("op")
            if op == OP_ENTRY:
                entry = entry_from_message(message)
                seq = entry_seq(message)
                admission = self.router.submit(
                    entry,
                    conn.post,
                    traceparent=message.get("traceparent"),
                    seq=seq,
                    # Never block the event loop: overload becomes an
                    # explicit busy/shed wire response, not a stalled
                    # reader starving every other connection.
                    block=False,
                )
                if admission.accepted:
                    conn.cases.add(entry.case)
                    conn.entries_sent += 1
                else:
                    response = {
                        "event": EV_BUSY,
                        "case": entry.case,
                        "reason": admission.reason,
                    }
                    if seq is not None:
                        response["seq"] = seq
                    if admission.duplicate:
                        # An idempotent re-send: acknowledged, already
                        # accepted — nothing to retry.
                        response["duplicate"] = True
                        conn.cases.add(entry.case)
                    else:
                        response["retry_after_s"] = admission.retry_after_s
                        if admission.shed:
                            response["shed"] = True
                    conn.send(response)
            elif op == OP_XES:
                document = message.get("document")
                if not isinstance(document, str):
                    raise ProtocolError("xes op needs a 'document' string")
                try:
                    trail = import_xes(document, self.router.dead_letters)
                except XesError as error:
                    raise ProtocolError(f"bad XES document: {error}") from error
                traceparent = message.get("traceparent")
                for entry in trail:
                    conn.cases.add(entry.case)
                    self.router.submit(
                        entry, conn.post, traceparent=traceparent
                    )
                    conn.entries_sent += 1
            elif op == OP_SYNC:
                token = message.get("id")
                received = conn.entries_sent
                conn_post = conn.post
                router = self.router

                def synced() -> None:
                    # The durability half of the barrier: entries are
                    # only *durably* acknowledged once their WAL records
                    # are fsynced (runs on a shard thread, off the loop).
                    router.wal_commit()
                    conn_post(
                        {"event": EV_SYNCED, "id": token, "received": received}
                    )

                self.router.barrier(synced)
            elif op == OP_STATUS:
                conn.send(
                    {"event": EV_STATUS, **self.router.statistics()}
                )
            elif op == OP_RESULTS:
                await self._send_results(conn, message)
            elif op == OP_BYE:
                conn.send({"event": EV_BYE, "reason": "requested"})
                return False
            else:
                raise ProtocolError(f"unknown op {op!r}")
        except (ProtocolError, ReproError) as error:
            # One bad line costs one line: report it, dead-letter it,
            # keep the stream live.
            self._m_protocol_errors.inc()
            self.router.dead_letters.add(
                source="serve",
                reason=str(error),
                raw=line.decode("utf-8", "replace").strip(),
            )
            conn.send({"event": EV_ERROR, "detail": str(error)})
        return True

    async def _send_results(self, conn: _Connection, message: dict) -> None:
        """The ``results`` op: barrier, then the per-case final word."""
        assert self._loop is not None
        settled: asyncio.Future = self._loop.create_future()
        self.router.barrier(
            lambda: self._loop.call_soon_threadsafe(
                lambda: settled.done() or settled.set_result(None)
            )
        )
        await settled
        results = self.router.results()
        wanted = message.get("cases")
        if isinstance(wanted, list):
            results = {
                case: results[case] for case in wanted if case in results
            }
        conn.send({"event": EV_RESULTS, "cases": results})

    # -- the HTTP endpoint ---------------------------------------------------
    #: ``application/json`` always carries its charset and JSON
    #: responses are never cacheable — verdicts and quarantine lists
    #: change under the reader's feet (`Cache-Control: no-store`).
    _JSON = "application/json; charset=utf-8"
    _STATUS_LINES = {
        200: "200 OK",
        400: "400 Bad Request",
        404: "404 Not Found",
        405: "405 Method Not Allowed",
        409: "409 Conflict",
        503: "503 Service Unavailable",
    }

    def _http_body(self, path: str) -> tuple[str, str, bytes]:
        """``(status line, content type, body)`` for one GET/HEAD path."""
        if path == "/healthz":
            return (
                "200 OK",
                self._JSON,
                json.dumps(
                    {"status": "ok", **self.router.statistics()}
                ).encode(),
            )
        if path == "/metrics":
            self.router.refresh_shard_gauges()
            return (
                "200 OK",
                "text/plain; version=0.0.4",
                to_prometheus(self._tel.registry).encode(),
            )
        if path == "/metrics.json":
            # The machine-readable snapshot `repro top` samples: same
            # shape as `--metrics` (documented in docs/observability.md).
            self.router.refresh_shard_gauges()
            return (
                "200 OK",
                self._JSON,
                json.dumps(to_json(self._tel.registry)).encode(),
            )
        return "404 Not Found", self._JSON, b'{"error": "not found"}\n'

    async def _handle_api(
        self, method: str, target: str, raw_body: bytes
    ) -> tuple[str, str, bytes, str]:
        """Dispatch ``/api/*`` to the mounted control plane.

        Returns ``(status line, content type, body, extra headers)``.
        The handler runs in an executor — it reads the store and may
        wait on a shard (requeue), neither of which may stall the loop.
        """
        from urllib.parse import parse_qs, urlsplit

        if self._control is None:
            return (
                "404 Not Found",
                self._JSON,
                b'{"error": "no control plane mounted"}\n',
                "",
            )
        split = urlsplit(target)
        query = {
            key: values[-1] for key, values in parse_qs(split.query).items()
        }
        body = None
        if raw_body:
            try:
                body = json.loads(raw_body)
            except ValueError:
                return (
                    "400 Bad Request",
                    self._JSON,
                    b'{"error": "request body is not valid JSON"}\n',
                    "",
                )
        status, payload, headers = await asyncio.get_running_loop().run_in_executor(
            None, self._control.handle, method, split.path, query, body
        )
        extra = "".join(f"{name}: {value}\r\n" for name, value in headers.items())
        status_line = self._STATUS_LINES.get(status, f"{status} Status")
        return (
            status_line,
            self._JSON,
            (json.dumps(payload) + "\n").encode(),
            extra,
        )

    async def _on_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await reader.readline()
            content_length = 0
            while True:  # headers: only Content-Length matters to us
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
                name, _, value = header.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    try:
                        content_length = int(value.strip())
                    except ValueError:
                        content_length = 0
            parts = request.decode("latin-1").split()
            extra = ""
            if len(parts) < 2:
                status, ctype = "400 Bad Request", self._JSON
                body = b'{"error": "malformed request line"}\n'
                method = "GET"
            else:
                method, target = parts[0].upper(), parts[1]
                raw_body = (
                    await reader.readexactly(content_length)
                    if content_length
                    else b""
                )
                if target.startswith("/api/"):
                    if method in ("GET", "HEAD", "POST"):
                        status, ctype, body, extra = await self._handle_api(
                            method, target, raw_body
                        )
                    else:
                        status, ctype = "405 Method Not Allowed", self._JSON
                        body = b'{"error": "method not allowed"}\n'
                        extra = "Allow: GET, HEAD, POST\r\n"
                elif method in ("GET", "HEAD"):
                    status, ctype, body = self._http_body(target.split("?")[0])
                else:
                    status, ctype = "405 Method Not Allowed", self._JSON
                    body = b'{"error": "method not allowed"}\n'
                    extra = "Allow: GET, HEAD\r\n"
            writer.write(
                (
                    f"HTTP/1.1 {status}\r\n"
                    f"Content-Type: {ctype}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Cache-Control: no-store\r\n"
                    f"{extra}"
                    "Connection: close\r\n\r\n"
                ).encode()
                # HEAD answers with the same headers and no body.
                + (b"" if method == "HEAD" else body)
            )
            await writer.drain()
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):  # pragma: no cover
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
