"""Crash recovery for the streaming audit service.

The contract :func:`recover` enforces: after a ``kill -9`` (or any
other unclean death), a restarted ``repro serve --recover`` reaches a
monitor state **byte-identical** (per-case
:func:`~repro.testing.differential.canonical_digest`) to a run that was
never interrupted.  The ingredients:

* the **audit store** is the hash-chained long-term record — everything
  a committed batch flush persisted, in acceptance order;
* the **WAL delta** is everything accepted after the last committed
  flush — each shard's write-ahead segments, minus the records already
  in the store;
* the per-case **entry sequence numbers** carried by every WAL record
  make the merge idempotent: a record whose ``case_seq`` is at or below
  the case's store count is a duplicate (the store flush committed but
  its WAL retirement didn't happen before the crash) and is skipped,
  never double-counted.

Repeated partial recoveries are themselves idempotent: recovery only
*reads* the store and WAL and re-buffers the delta for a fresh flush,
so crashing during recovery and recovering again converges on the same
state (the property suite drives exactly that).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.audit.model import LogEntry
from repro.audit.store import AuditStore
from repro.errors import ReproError
from repro.obs import SERVE_RECOVERED
from repro.serve.wal import WalCorruptionError, read_wal, wal_records_by_case


@dataclass
class CaseHistory:
    """One case's accepted entries, split by where they survived."""

    case: str
    store_entries: list[LogEntry] = field(default_factory=list)
    wal_entries: list[LogEntry] = field(default_factory=list)

    @property
    def entries(self) -> list[LogEntry]:
        """The full history, store prefix first, in acceptance order."""
        return self.store_entries + self.wal_entries

    @property
    def count(self) -> int:
        return len(self.store_entries) + len(self.wal_entries)


@dataclass(frozen=True)
class HistoryScan:
    """What :func:`collect_case_histories` read and skipped."""

    store_entries: int
    wal_records: int
    wal_duplicates: int  # WAL records already covered by the store
    torn_segments: bool


@dataclass(frozen=True)
class RecoveryReport:
    """What one :func:`recover` run reconstructed."""

    store_entries: int
    wal_records: int
    replayed: int  # entries fed back into monitors (store + delta)
    duplicates: int  # WAL records skipped as already stored
    cases: int
    torn_segments: bool
    store_intact: Optional[bool]
    duration_s: float

    def to_dict(self) -> dict:
        return {
            "store_entries": self.store_entries,
            "wal_records": self.wal_records,
            "replayed": self.replayed,
            "duplicates": self.duplicates,
            "cases": self.cases,
            "torn_segments": self.torn_segments,
            "store_intact": self.store_intact,
            "duration_s": round(self.duration_s, 6),
        }


def collect_case_histories(
    store_path: Optional[str],
    wal_dir: Optional[str],
    include: Optional[Callable[[str], bool]] = None,
    exclude: frozenset[str] = frozenset(),
) -> tuple[dict[str, CaseHistory], HistoryScan]:
    """Merge the store and the WAL delta into per-case histories.

    The store is the authoritative prefix of every case; WAL records
    whose ``case_seq`` falls at or below the case's store count are
    duplicates of committed entries and skipped.  The surviving delta
    must continue each case contiguously — a *gap* in sealed WAL data
    means records vanished from the middle of a log that was fsynced,
    which no crash produces (torn tails only lose suffixes), so it
    raises :class:`~repro.serve.wal.WalCorruptionError` rather than
    silently auditing a hole.

    ``include`` filters cases (the shard supervisor passes its ring
    predicate); ``exclude`` drops specific cases (the poison suspect).
    """
    histories: dict[str, CaseHistory] = {}
    store_count = 0
    if store_path is not None:
        store = AuditStore(store_path)
        try:
            for entry in store.query():
                case = entry.case
                if case in exclude or (include is not None and not include(case)):
                    continue
                histories.setdefault(case, CaseHistory(case)).store_entries.append(
                    entry
                )
                store_count += 1
        finally:
            store.close()
    wal_count = 0
    duplicates = 0
    torn = False
    if wal_dir is not None:
        result = read_wal(wal_dir)
        torn = result.torn_tail
        for case, records in wal_records_by_case(result.records).items():
            if case in exclude or (include is not None and not include(case)):
                wal_count += len(records)
                continue
            history = histories.setdefault(case, CaseHistory(case))
            stored = len(history.store_entries)
            # A case's records may span a shard-count change (old shard
            # names on disk), so sort by the per-case sequence — the one
            # ordering that is crash- and topology-invariant.
            expected = stored + 1
            for record in sorted(records, key=lambda r: r.case_seq):
                wal_count += 1
                if record.case_seq <= stored:
                    duplicates += 1
                    continue
                if record.case_seq != expected:
                    raise WalCorruptionError(
                        f"case {case!r}: WAL continues at entry "
                        f"{record.case_seq} but the store + delta end at "
                        f"{expected - 1}; sealed records are missing"
                    )
                history.wal_entries.append(record.entry)
                expected += 1
    return histories, HistoryScan(
        store_entries=store_count,
        wal_records=wal_count,
        wal_duplicates=duplicates,
        torn_segments=torn,
    )


def recover(router) -> RecoveryReport:
    """Rebuild a just-started router's state from the store + WAL.

    Call after :meth:`~repro.serve.core.ShardRouter.start` and before
    accepting client traffic.  Every case's durable history is replayed
    into its owning shard (the store prefix, then the WAL delta), the
    delta is re-buffered and flushed so the store catches up, and —
    once that flush is durable — the old WAL segments are dropped and
    each shard continues on a fresh log.  The per-case sequence
    high-water marks are restored, so clients resuming with numbered
    entries keep deduplicating across the crash.
    """
    config = router.config
    if config.wal_dir is None:
        raise ReproError(
            "recovery requires a wal_dir: without a write-ahead log the "
            "store alone cannot prove which accepted entries were lost"
        )
    started = time.perf_counter()
    store_path = router._durable_store_path()
    intact: Optional[bool] = None
    if store_path is not None:
        store = AuditStore(store_path)
        try:
            intact = store.is_intact()
        finally:
            store.close()
        if not intact:
            raise ReproError(
                f"audit store {store_path} failed its hash-chain check; "
                f"refusing to recover on top of a tampered record"
            )
    # A torn tail on the crashed run's final segments was already
    # truncated away when this router's writers adopted them; count
    # those repairs as torn segments so the report still records that
    # the crash lost an (unacknowledged) suffix.
    repaired = sum(w.tears_repaired for w in router._wals.values())
    histories, scan = collect_case_histories(store_path, config.wal_dir)
    replayed = 0
    for case, history in histories.items():
        router._ingest_recovered_case(
            case, history.store_entries, history.wal_entries
        )
        replayed += history.count
    # Let every shard chew through its replayed history, then make the
    # WAL delta durable in the store before touching any WAL file.
    router.wait_idle()
    router.flush()
    router._writer_sync()
    if store_path is not None:
        # The store now owns everything: restart each live shard's WAL
        # fresh, and delete leftover segments from shards that no longer
        # exist (an old topology's names).
        for wal in router._wals.values():
            wal.reset()
        from repro.serve.wal import segment_paths

        live = {wal.shard for wal in router._wals.values()}
        for path in segment_paths(config.wal_dir):
            name = path.name.rsplit("-", 1)[0]
            if name not in live:
                path.unlink(missing_ok=True)
    report = RecoveryReport(
        store_entries=scan.store_entries,
        wal_records=scan.wal_records,
        replayed=replayed,
        duplicates=scan.wal_duplicates,
        cases=len(histories),
        torn_segments=scan.torn_segments or repaired > 0,
        store_intact=intact,
        duration_s=time.perf_counter() - started,
    )
    router.recovery_report = report
    router._tel.events.emit(SERVE_RECOVERED, **report.to_dict())
    return report
