"""The sharded streaming-audit engine behind ``repro serve``.

The :class:`ShardRouter` is the socket-free core of the audit daemon:
it owns N worker threads, each running its own
:class:`~repro.core.monitor.OnlineMonitor`, and routes every incoming
log entry to exactly one shard by consistent-hashing its case id
(:mod:`repro.serve.sharding`).  Algorithm 1 is stateful *per case* and
cases are independent (Section 7's scalability argument), so sharding
by case id parallelizes the stream without any cross-shard
coordination — each case's entries are processed in arrival order by
the one thread that owns its frontier.

Everything the asyncio service (:mod:`repro.serve.service`) does goes
through this class, and the test suites drive it directly where a
socket would only add noise (the hypothesis stream-equivalence
property runs thousands of examples against it).

Responsibilities:

* **encode-once warm-up** — all shards share one
  :class:`~repro.policy.registry.ProcessRegistry`, whose
  ``encoded_for`` memoizes the BPMN→COWS encoding, and (when an
  ``automaton_dir`` is configured) one on-disk
  :class:`~repro.compile.AutomatonCache`; :meth:`start` pre-encodes
  every registered purpose so N shards never encode the same process
  twice;
* **crash-safe ingest** — with a ``wal_dir`` configured, every entry is
  appended to its shard's write-ahead log (:mod:`repro.serve.wal`)
  *before* :meth:`submit` accepts it; WAL segments are retired only
  once the batched store flush covering them commits, so after a
  ``kill -9`` the store + WAL delta is exactly the set of accepted
  entries and :func:`repro.serve.recovery.recover` rebuilds in-flight
  state byte-identically;
* **durable ingest** — every accepted entry is buffered and flushed to
  an :class:`~repro.audit.store.AuditStore` in batched
  ``append_many`` transactions by a dedicated writer thread (SQLite
  connections are single-threaded);
* **bounded backpressure** — per-shard queues are bounded
  (``queue_capacity``); library callers block (TCP push-back once the
  service's socket buffers fill behind them), while the service
  submits with ``block=False`` and turns the busy/shed watermarks into
  explicit ``busy``/``retry_after`` wire responses and admission-
  controlled shedding.  Rejected entries are *not* WAL-appended and
  *not* acked — overload never silently drops an accepted entry;
* **idempotent resume** — clients may number each case's entries
  (``seq``); :meth:`submit` dedupes re-sent entries by per-case
  high-water mark, so a client that reconnects and replays its
  unacknowledged tail never double-counts an entry;
* **per-case backpressure** — each shard tracks cumulative processing
  time per case; a case that exceeds ``case_timeout_s`` is contained
  via :meth:`OnlineMonitor.contain` with a
  :class:`~repro.errors.CaseTimeoutError` (→ ``OutcomeKind.TIMEOUT``)
  and quarantined, so a stuck case never stalls its shard's queue for
  long — the stream stays live;
* **supervision** — with ``supervise=True`` (requires the WAL) a
  :class:`~repro.serve.supervisor.ShardSupervisor` watches heartbeats:
  a dead or hung shard is replaced and its cases replayed from the
  store + WAL; the entry being processed at crash time is quarantined
  as the poison suspect; past ``max_shard_restarts`` the shard is
  removed from the ring and its cases re-homed to the survivors;
* **drain** — stop intake, let every shard finish its queue, flush the
  store, checkpoint automata, and report final per-case verdicts.
"""

from __future__ import annotations

import queue
import tempfile
import threading
import time
from dataclasses import dataclass, field
from datetime import datetime
from typing import Callable, Optional

from repro.audit.model import LogEntry
from repro.audit.store import AuditStore
from repro.core.monitor import CaseState, OnlineMonitor
from repro.core.resilience import OutcomeKind, Quarantine, RestartBudget
from repro.core.temporal import TemporalConstraints
from repro.errors import CaseTimeoutError, MalformedEntryError, ReproError
from repro.obs import (
    CASE_QUARANTINED,
    NULL_TELEMETRY,
    SERVE_DRAINED,
    SERVE_FLUSH,
    SERVE_OVERLOAD,
    SERVE_SHARD_REASSIGNED,
    SERVE_SHARD_RESTARTED,
    SERVE_WAL_COMMIT,
    SERVE_WAL_RETIRED,
    Telemetry,
    TraceContext,
    parse_traceparent,
)
from repro.policy.hierarchy import RoleHierarchy
from repro.policy.registry import ProcessRegistry
from repro.serve.protocol import EV_VERDICT
from repro.serve.sharding import ConsistentHashRing
from repro.serve.wal import WalError, WalWriter
from repro.testing.differential import canonical_digest

#: A callback receiving protocol-shaped server events for one client.
#: Called from shard threads — implementations must be thread-safe
#: (the asyncio service marshals onto the loop; tests append to lists
#: under the GIL).
Subscriber = Callable[[dict], None]

_TERMINAL = frozenset(
    {
        CaseState.COMPLETED,
        CaseState.INFRINGING,
        CaseState.TIMED_OUT,
        CaseState.UNDECIDABLE,
        CaseState.FAILED,
    }
)


@dataclass(frozen=True)
class ServeConfig:
    """Tuning knobs for the audit daemon (see ``docs/serving.md``).

    ``flush_interval_s`` is enforced by the service's timer task; the
    router itself flushes whenever the buffer reaches
    ``flush_max_batch`` and once on drain, so a router used without the
    asyncio wrapper still persists everything.

    ``busy_watermark``/``shed_watermark`` are absolute queue depths;
    ``None`` derives them as 75% / 95% of ``queue_capacity``.  They only
    gate non-blocking submissions (the service's path) — library callers
    block instead.  ``supervise=True`` requires ``wal_dir``: a restarted
    shard replays its cases from the store + WAL, which only covers
    every accepted entry when the WAL is on.
    """

    shards: int = 4
    replicas: int = 64  # virtual nodes per shard on the hash ring
    store_path: Optional[str] = None
    flush_interval_s: float = 0.5
    flush_max_batch: int = 256
    case_timeout_s: Optional[float] = None  # cumulative per-case budget
    queue_capacity: int = 10_000  # per-shard; submit blocks when full
    compiled: Optional[bool] = None
    automaton_dir: Optional[str] = None
    automaton_max_states: int = 50_000
    # Dense transition-table replay tier (docs/compilation.md).  None
    # follows ``compiled``; False pins replay to the lazy-DFA tier
    # (the tier-differential suite exercises all three).
    table: Optional[bool] = None
    # -- crash safety (docs/robustness.md) --
    wal_dir: Optional[str] = None  # per-shard write-ahead ingest logs
    wal_segment_max_bytes: int = 4 << 20
    wal_fsync_batch: int = 256
    # -- backpressure --
    busy_watermark: Optional[int] = None  # depth triggering `busy`
    shed_watermark: Optional[int] = None  # depth triggering shedding
    retry_after_s: float = 0.05  # hint sent with busy/shed responses
    # -- supervision --
    supervise: bool = False
    heartbeat_interval_s: float = 0.25
    hang_timeout_s: Optional[float] = None  # None: hangs are not policed
    max_shard_restarts: int = 2


@dataclass(frozen=True)
class Admission:
    """What :meth:`ShardRouter.submit` decided about one entry.

    Exactly one of these holds per call: ``accepted`` (the entry is in
    the WAL — if configured — and routed), ``duplicate`` (an idempotent
    re-send, already accepted earlier), or ``busy``/``shed`` (the entry
    was refused under overload and must be re-sent; ``retry_after_s`` is
    the server's back-off hint).  ``shed`` implies ``busy``.
    """

    accepted: bool
    shard: str
    case_seq: int = 0  # 1-based position of the entry within its case
    wal_seq: int = 0  # 0 when the WAL is disabled
    duplicate: bool = False
    busy: bool = False
    shed: bool = False
    retry_after_s: float = 0.0
    reason: str = ""


@dataclass(frozen=True)
class RequeueResult:
    """What :meth:`ShardRouter.requeue_case` decided about one case.

    ``accepted`` means the owning shard replayed the case's full entry
    history through a fresh session; ``state`` and ``replayed_entries``
    describe where the replay landed.  ``busy`` mirrors entry admission:
    the shard's queue was over its busy watermark, retry after
    ``retry_after_s``.  A refusal (unknown / not-quarantined case, or a
    draining router) sets ``reason``.
    """

    case: str
    accepted: bool
    busy: bool = False
    retry_after_s: float = 0.0
    reason: str = ""
    shard: str = ""
    state: Optional[str] = None
    replayed_entries: int = 0


@dataclass(frozen=True)
class DrainReport:
    """What :meth:`ShardRouter.drain` accomplished."""

    entries_received: int
    entries_written: int
    cases: int
    quarantined_cases: int
    store_intact: Optional[bool]  # None when no store is configured
    final_states: dict[str, str] = field(default_factory=dict)


class _Barrier:
    """A countdown latch posted to every shard queue.

    Fires *callback* (from the last shard's worker thread) once every
    shard has drained all work enqueued before it — the ``sync`` op.
    """

    def __init__(self, parties: int, callback: Callable[[], None]):
        self._remaining = parties
        self._lock = threading.Lock()
        self._callback = callback

    def arrive(self) -> None:
        with self._lock:
            self._remaining -= 1
            fire = self._remaining == 0
        if fire:
            self._callback()


class _Shard(threading.Thread):
    """One worker thread owning one :class:`OnlineMonitor`.

    ``rebuild`` is the supervised-restart path: a replacement shard
    processes those items (replayed history from the store + WAL)
    before touching its queue, so a barrier posted after the restart
    only fires once the rebuilt state is current.
    """

    def __init__(
        self,
        name: str,
        monitor: OnlineMonitor,
        router: "ShardRouter",
        rebuild: Optional[list[tuple]] = None,
    ):
        super().__init__(name=f"repro-serve-{name}", daemon=True)
        self.shard_name = name
        self.monitor = monitor
        self.queue: "queue.Queue[tuple]" = queue.Queue(
            maxsize=router.config.queue_capacity
        )
        self._router = router
        self._rebuild = rebuild or []
        self._spent: dict[str, float] = {}  # case -> processing seconds
        self.entries_observed = 0
        #: Set once the monitor's checkers are warm (artifacts loaded);
        #: the router's ``start`` blocks on it so the first streamed
        #: entry never pays artifact-parse latency.
        self.warmed = threading.Event()
        # Cases this shard has opened and not yet settled.  Mutated only
        # by this thread; other threads read len() (GIL-atomic) for the
        # in-flight gauge.
        self._open_cases: set[str] = set()
        # -- supervision surface (read cross-thread; GIL-atomic) --
        self.last_beat = time.monotonic()  # refreshed each item / idle tick
        self.current_case: Optional[str] = None  # set while processing
        self.stopped = False  # exited via an intentional ("stop",)
        self.abandoned = False  # replaced by the supervisor; go inert
        self.crash_error: Optional[BaseException] = None

    def run(self) -> None:
        interval = self._router.config.heartbeat_interval_s
        try:
            try:
                self.monitor.prewarm()
            finally:
                self.warmed.set()
            for item in self._rebuild:
                self._handle(item)
            self._rebuild = []
            while True:
                try:
                    item = self.queue.get(timeout=interval)
                except queue.Empty:
                    self.last_beat = time.monotonic()
                    continue
                try:
                    if not self._handle(item):
                        return
                finally:
                    self.queue.task_done()
        except BaseException as error:  # noqa: BLE001 - the crash path
            # A BaseException escaping the monitor (an injected
            # ShardKill, a real interpreter-level failure) kills this
            # shard.  Record it and die quietly: ``current_case`` stays
            # set, so the supervisor can quarantine the poison suspect
            # and rebuild everything else from the store + WAL.
            self.crash_error = error

    def _handle(self, item: tuple) -> bool:
        """Process one work item; False stops the thread."""
        kind = item[0]
        self.last_beat = time.monotonic()
        try:
            if kind == "stop":
                self.stopped = True
                return False
            if kind == "entry":
                self._observe(item[1], item[2], item[3])
            elif kind == "barrier":
                item[1].arrive()
            elif kind == "sweep":
                self.monitor.sweep(item[1])
            elif kind == "contain":
                # The supervisor's poison-case verdict: the entry in
                # flight when a shard died is charged to its case.
                if not self.abandoned:
                    self.monitor.contain(item[1], item[2])
            elif kind == "requeue":
                self._requeue(item[1], item[2], item[3])
        except Exception as error:  # pragma: no cover - last resort
            # A shard thread must never die to an ordinary exception:
            # anything the monitor's own containment missed is charged
            # to the entry's case.
            self.current_case = None
            if kind == "entry" and not self.abandoned:
                self._router._note_quarantined(
                    item[1].case,
                    self.monitor.case_failure_kind(item[1].case)
                    or OutcomeKind.ERROR,
                    str(error),
                )
        return True

    @property
    def inflight_cases(self) -> int:
        """Open (non-terminal) cases currently owned by this shard."""
        return len(self._open_cases)

    def _requeue(
        self, case: str, done: threading.Event, holder: dict
    ) -> None:
        """Replay a quarantined case from scratch (the triage verb).

        Runs on this shard's thread, so it is serialized with the case's
        live entries exactly like any other item: the history replayed
        is everything observed up to this point in the queue, and any
        entry admitted later lands after the fresh session exists.  The
        cumulative-budget meter is reset — the requeue *is* the second
        chance.  ``holder`` carries the outcome back to the waiting
        control plane; ``done`` always fires (``finally``), so an API
        call never hangs on a replay that blows up.
        """
        try:
            monitor = self.monitor
            self._spent.pop(case, None)
            entries = monitor.reset_case(case)
            for entry in entries:
                monitor.observe(entry)
            state = monitor.case_state(case)
            if state in _TERMINAL:
                self._open_cases.discard(case)
            elif state is not None:
                self._open_cases.add(case)
            kind = monitor.case_failure_kind(case)
            if kind is not None:
                # The failure reproduced deterministically: back into
                # quarantine it goes (the requeue popped it out).
                self._router._note_quarantined(
                    case, kind, "failure reproduced on requeue"
                )
            holder["state"] = str(state) if state is not None else None
            holder["replayed"] = len(entries)
            holder["requarantined"] = kind is not None
        finally:
            done.set()

    def _observe(
        self,
        entry: LogEntry,
        subscriber: Optional[Subscriber],
        ctx: Optional[TraceContext] = None,
    ) -> None:
        if self.abandoned:
            # Replaced mid-flight: the rebuilt shard owns this case's
            # truth (the entry is in the WAL it replayed from).
            return
        monitor = self.monitor
        case = entry.case
        self.current_case = case
        tracer = self._router._tel.tracer
        before = monitor.case_state(case)
        replay_span_id = ""
        started = time.perf_counter()
        if ctx is not None and tracer.enabled:
            # The shard-side half of the case's trace: monitor-internal
            # "replay"/"weaknext" spans nest under this via the thread's
            # span stack.
            with tracer.span(
                "serve.replay", parent=ctx, case=case, shard=self.shard_name
            ) as span:
                raised = monitor.observe(entry)
                replay_span_id = span.span_id
        else:
            raised = monitor.observe(entry)
        elapsed = time.perf_counter() - started
        if self.abandoned:
            # Replaced while observing (a hang verdict): drop every
            # side effect — metrics, verdict events, quarantine notes —
            # the replacement shard has already re-derived this case.
            return
        self.entries_observed += 1
        if ctx is not None:
            self._router._m_ingest.observe_with_exemplar(
                elapsed, ctx.trace_id, replay_span_id
            )
        else:
            self._router._m_ingest_fast.observe(elapsed)

        budget = self._router.config.case_timeout_s
        after = monitor.case_state(case)
        if (
            budget is not None
            and before is not None  # opening an unseen case pays one-off
            # warm-up (encoding, closure priming) that is not the case's
            # fault — the budget meters steady-state replay time.
            and after not in (CaseState.UNDECIDABLE, CaseState.FAILED)
        ):
            spent = self._spent.get(case, 0.0) + elapsed
            self._spent[case] = spent
            if spent > budget:
                # The case blew its cumulative processing budget: take
                # it out of rotation so it cannot slow this shard again.
                error = CaseTimeoutError(
                    f"case {case!r} exceeded its processing budget",
                    budget_s=budget,
                    elapsed_s=spent,
                )
                raised = list(raised) + [monitor.contain(case, error)]
                after = monitor.case_state(case)

        if after in _TERMINAL:
            self._open_cases.discard(case)
        elif after is not None:
            self._open_cases.add(case)

        kind = monitor.case_failure_kind(case)
        if kind is not None:
            self._router._note_quarantined(
                case, kind, raised[-1].detail if raised else ""
            )
        if ctx is not None and after in _TERMINAL and before not in _TERMINAL:
            # The case settled: close its trace with an instant span.
            tracer.record_span(
                "serve.verdict",
                time.time(),
                0.0,
                parent=ctx,
                case=case,
                state=str(after),
                shard=self.shard_name,
            )
        if subscriber is not None and (before is not after or raised):
            event = {
                "event": EV_VERDICT,
                "case": case,
                "state": str(after) if after is not None else None,
                "previous": str(before) if before is not None else None,
                "purpose": monitor.case_purpose(case),
                "shard": self.shard_name,
                "infringements": [
                    {"kind": i.kind.value, "detail": i.detail}
                    for i in raised
                ],
            }
            if ctx is not None:
                event["trace"] = ctx.trace_id
            subscriber(event)
        self.current_case = None


class _StoreWriter(threading.Thread):
    """The one thread that owns the SQLite connection.

    Batches arrive on an unbounded queue; each is committed in a single
    ``append_many`` transaction.  If a batch turns out malformed the
    writer retries entry-by-entry so one bad record costs one record,
    not the flush (the rejects land in the router's dead-letter
    quarantine).  Once a batch commits, the WAL segments it covers are
    retired (``_on_batch_durable``) — the long-term record owns those
    entries now.  A ``("sync", event)`` item is a durability barrier:
    the event fires only after every batch queued before it committed.
    """

    def __init__(self, path: str, router: "ShardRouter"):
        super().__init__(name="repro-serve-store", daemon=True)
        self._path = path
        self._router = router
        #: ``("batch", entries, contexts, wal floors)`` /
        #: ``("sync", threading.Event)`` items; ``None`` stops.
        self.queue: "queue.Queue[Optional[tuple]]" = queue.Queue()
        self.written = 0
        self.intact: Optional[bool] = None

    def run(self) -> None:
        store = AuditStore(self._path)
        tracer = self._router._tel.tracer
        try:
            while True:
                item = self.queue.get()
                if item is None:
                    self.intact = store.is_intact()
                    return
                if item[0] == "sync":
                    item[1].set()
                    continue
                _, batch, contexts, floors = item
                started = time.perf_counter()
                if tracer.enabled and contexts:
                    # A single-case batch joins that case's trace; a
                    # mixed batch is its own trace *linking* every case
                    # it persisted (one flush serves many traces).
                    parent = contexts[0] if len(contexts) == 1 else None
                    links = contexts if len(contexts) > 1 else ()
                    with tracer.span(
                        "store.flush",
                        parent=parent,
                        links=links,
                        entries=len(batch),
                    ):
                        self._commit(store, batch)
                else:
                    self._commit(store, batch)
                self._router._on_batch_durable(floors)
                duration = time.perf_counter() - started
                self._router._m_flushes.inc()
                self._router._m_flush_seconds.observe(duration)
                self._router._tel.events.emit(
                    SERVE_FLUSH,
                    entries=len(batch),
                    written_total=self.written,
                    duration_s=round(duration, 6),
                )
        finally:
            store.close()

    def _commit(self, store: AuditStore, batch: list[LogEntry]) -> None:
        try:
            self.written += store.append_many(batch)
        except MalformedEntryError:
            for offset, entry in enumerate(batch):
                try:
                    store.append(entry)
                    self.written += 1
                except MalformedEntryError as error:
                    self._router.dead_letters.add(
                        source="serve",
                        reason=str(error),
                        position=offset,
                        raw=str(entry),
                    )


class ShardRouter:
    """Consistent-hash fan-out of an entry stream over monitor shards."""

    def __init__(
        self,
        registry: ProcessRegistry,
        hierarchy: Optional[RoleHierarchy] = None,
        config: Optional[ServeConfig] = None,
        temporal: Optional[dict[str, TemporalConstraints]] = None,
        telemetry: Optional[Telemetry] = None,
        checker_wrapper=None,
        wal_fault_hook: Optional[Callable[[str], None]] = None,
    ):
        self.config = config or ServeConfig()
        if self.config.shards < 1:
            raise ValueError("need at least one shard")
        if self.config.supervise and self.config.wal_dir is None:
            raise ValueError(
                "supervise=True requires wal_dir: a restarted shard "
                "replays its cases from the store + write-ahead log"
            )
        capacity = self.config.queue_capacity
        busy_wm = self.config.busy_watermark
        shed_wm = self.config.shed_watermark
        self._busy_wm = (
            busy_wm if busy_wm is not None else max(1, (capacity * 3) // 4)
        )
        self._shed_wm = min(
            shed_wm if shed_wm is not None else max(2, (capacity * 19) // 20),
            capacity,
        )
        if not 0 < self._busy_wm <= self._shed_wm:
            raise ValueError(
                "busy_watermark must be positive and <= shed_watermark"
            )
        self._registry = registry
        self._hierarchy = hierarchy
        self._temporal = temporal
        self._checker_wrapper = checker_wrapper
        self._wal_fault_hook = wal_fault_hook
        tel = telemetry if telemetry is not None else NULL_TELEMETRY
        self._tel = tel
        self.dead_letters = Quarantine(telemetry=tel)

        names = [f"shard-{i}" for i in range(self.config.shards)]
        self._ring = ConsistentHashRing(names, replicas=self.config.replicas)
        self._shards: dict[str, _Shard] = {}
        self._writer: Optional[_StoreWriter] = None
        self._wals: dict[str, WalWriter] = {}
        #: ``(entry, shard name, wal seq)`` awaiting the next store flush.
        self._pending: list[tuple[LogEntry, str, int]] = []
        self._pending_lock = threading.Lock()
        # The admission lock: per-case sequence bookkeeping, watermark
        # checks, WAL appends, and shard handoff happen as one atomic
        # step, and supervised restarts exclude admissions entirely.
        self._ingest_lock = threading.Lock()
        self._case_seq: dict[str, int] = {}  # case -> accepted entries
        self._quarantined: dict[str, OutcomeKind] = {}
        self._quarantined_lock = threading.Lock()
        self._accepting = False
        self._drained = False
        self._received = 0
        self._busy_total = 0
        self._shed_total = 0
        self._duplicate_total = 0
        self._overload: dict[str, str] = {}  # shard -> ok | busy | shed
        self._restart_budget = RestartBudget(self.config.max_shard_restarts)
        self._reassigned: list[str] = []  # shards removed from the ring
        self._supervisor = None  # set by start() when supervising
        #: Set by :func:`repro.serve.recovery.recover`.
        self.recovery_report = None
        self._tmp_automata: Optional[tempfile.TemporaryDirectory] = None
        self._automaton_dir_resolved: Optional[str] = None
        # case id -> the root TraceContext of its (one) trace.  The
        # first traced ingest of a case mints it; every later span of
        # the case — ingest, replay, verdict, store flush — joins it.
        self._case_traces: dict[str, TraceContext] = {}
        self._trace_lock = threading.Lock()

        # Per-entry instruments are bound to their (label-less) series
        # once here, so the ingest path skips label resolution per inc.
        self._m_entries = tel.registry.counter(
            "serve_entries_total", "log entries accepted by the service"
        ).series()
        self._m_ingest = tel.registry.histogram(
            "serve_ingest_seconds", "shard processing time per entry"
        )
        self._m_ingest_fast = self._m_ingest.series()
        self._m_flushes = tel.registry.counter(
            "serve_flushes_total", "store flush transactions committed"
        )
        self._m_flush_seconds = tel.registry.histogram(
            "serve_flush_seconds", "wall time per store flush"
        )
        self._m_quarantined = tel.registry.counter(
            "serve_quarantined_cases_total",
            "cases taken out of rotation by the service, by kind",
        )
        self._m_queue_depth = tel.registry.gauge(
            "serve_shard_queue_depth", "items waiting in each shard's queue"
        )
        self._m_inflight = tel.registry.gauge(
            "serve_shard_inflight_cases",
            "open (non-terminal) cases owned by each shard",
        )
        self._m_busy = tel.registry.counter(
            "serve_busy_total",
            "entries refused with a busy/retry_after response",
        )
        self._m_shed = tel.registry.counter(
            "serve_shed_total",
            "entries shed by admission control under overload",
        )
        self._m_duplicates = tel.registry.counter(
            "serve_duplicate_entries_total",
            "idempotent re-sends deduplicated by per-case sequence",
        )
        self._m_wal_records = tel.registry.counter(
            "serve_wal_records_total",
            "entries appended to the write-ahead ingest log",
        ).series()
        self._m_wal_unflushed_records = tel.registry.gauge(
            "serve_wal_unflushed_records",
            "WAL records buffered but not yet fsynced, per shard",
        )
        self._m_wal_unflushed_bytes = tel.registry.gauge(
            "serve_wal_unflushed_bytes",
            "WAL bytes buffered but not yet fsynced, per shard",
        )
        self._m_wal_segments = tel.registry.gauge(
            "serve_wal_segments", "live WAL segment files per shard"
        )
        self._m_restarts = tel.registry.counter(
            "serve_shard_restarts_total",
            "supervised shard replacements, by shard and reason",
        )
        self._m_recovered = tel.registry.counter(
            "serve_recovered_entries_total",
            "entries replayed into monitors during recovery, by source",
        )
        self._m_requeues = tel.registry.counter(
            "serve_requeues_total",
            "quarantined-case requeue attempts, by outcome",
        )
        self._m_dismissals = tel.registry.counter(
            "serve_dismissals_total",
            "quarantined cases dismissed by an operator",
        )

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Warm shared state and start the shard + writer threads."""
        if self._shards:
            raise ReproError("the router is already started")
        # Encode every registered purpose once, up front, on the shared
        # registry — the N monitors then hit the memoized encoding (and,
        # compiled, the shared on-disk automaton cache) instead of each
        # re-encoding the BPMN.
        for purpose in self._registry.purposes():
            self._registry.encoded_for(purpose)
        automaton_dir = self.config.automaton_dir
        if self.config.compiled or automaton_dir is not None:
            if automaton_dir is None:
                # Compiled serving always warms shards through an
                # AutomatonCache; without a configured directory the
                # artifacts live (and die) with the router.
                self._tmp_automata = tempfile.TemporaryDirectory(
                    prefix="repro-serve-automata-"
                )
                automaton_dir = self._tmp_automata.name
            self._precompile_automata(automaton_dir)
        self._automaton_dir_resolved = automaton_dir
        if self.config.wal_dir is not None:
            for name in self._ring.shards:
                self._wals[name] = WalWriter(
                    self.config.wal_dir,
                    name,
                    segment_max_bytes=self.config.wal_segment_max_bytes,
                    fsync_batch=self.config.wal_fsync_batch,
                    fault_hook=self._wal_fault_hook,
                )
        for name in self._ring.shards:
            shard = _Shard(name, self._new_monitor(), self)
            self._shards[name] = shard
            self._overload[name] = "ok"
            shard.start()
        for shard in self._shards.values():
            # Block until every monitor loaded its artifacts: the first
            # streamed entry must hit warm state, never a JSON parse.
            shard.warmed.wait(timeout=60)
        if self.config.store_path is not None:
            self._writer = _StoreWriter(self.config.store_path, self)
            self._writer.start()
        if self.config.supervise:
            from repro.serve.supervisor import ShardSupervisor

            self._supervisor = ShardSupervisor(self)
            self._supervisor.start()
        self._accepting = True

    def _new_monitor(self) -> OnlineMonitor:
        table = self.config.table
        if table is None:
            # The table tier follows compiled serving, which is active
            # whenever ``compiled`` is set *or* an automaton directory
            # is configured (the same condition ``start`` warms under —
            # the CLI's --automaton-dir implies compiled replay).
            table = (
                bool(self.config.compiled)
                or self._automaton_dir_resolved is not None
            )
        return OnlineMonitor(
            self._registry,
            hierarchy=self._hierarchy,
            temporal=self._temporal,
            telemetry=self._tel,
            compiled=self.config.compiled,
            automaton_dir=self._automaton_dir_resolved,
            automaton_max_states=self.config.automaton_max_states,
            table=table,
            checker_wrapper=self._checker_wrapper,
        )

    def _precompile_automata(self, automaton_dir: str) -> None:
        """Eagerly compile every purpose's automaton into the cache.

        A daemon serves its stream from warm state: the BFS over the
        canonical alphabet happens once here, at startup, so N shards
        all load the same fully-materialized artifact and per-entry
        replay is a transition-table lookup — not a lazy WeakNext
        exploration racing the live stream.
        """
        from repro.compile import (
            AutomatonCache,
            compile_automaton,
            compile_table,
        )
        from repro.core.compliance import ComplianceChecker

        # Reached only when compiled serving is active (``start`` gates
        # on compiled-or-automaton-dir), so an unset ``table`` means on;
        # only an explicit ``table=False`` pins the lazy-DFA tier.
        want_table = self.config.table
        if want_table is None:
            want_table = True
        cache = AutomatonCache(automaton_dir, telemetry=self._tel)
        for purpose in sorted(self._registry.purposes()):
            try:
                checker = ComplianceChecker(
                    self._registry.encoded_for(purpose),
                    hierarchy=self._hierarchy,
                    telemetry=self._tel,
                )
                automaton = compile_automaton(
                    checker,
                    max_states=self.config.automaton_max_states,
                    telemetry=self._tel,
                )
                cache.save(automaton)
                if want_table:
                    # Flatten once; every shard then mmaps the same
                    # dense artifact through warm_checker.
                    cache.save_table(
                        compile_table(automaton, telemetry=self._tel)
                    )
            except Exception:
                # A purpose that defeats compilation (or Algorithm 1
                # itself) is contained per case at observe time, exactly
                # like in batch audits — it must not keep the service
                # from starting for every other purpose.
                continue

    # -- ingest ------------------------------------------------------------
    def submit(
        self,
        entry: LogEntry,
        subscriber: Optional[Subscriber] = None,
        traceparent: Optional[str] = None,
        seq: Optional[int] = None,
        block: bool = True,
    ) -> Admission:
        """Admit one entry and route it to its shard.

        With a WAL configured, the entry is framed into its shard's log
        *before* this method reports it accepted — an entry that cannot
        be logged is rejected (:class:`~repro.serve.wal.WalError`), not
        half-accepted.  ``seq`` (1-based per case) makes re-sends
        idempotent: an entry at or below the case's high-water mark is
        acknowledged as a ``duplicate`` without being re-processed; one
        *beyond* the next expected number is refused ``busy`` (the
        sender must deliver the gap first — it happens naturally when
        some of a burst's entries were shed).

        ``block=True`` (the library default) blocks when the target
        shard's queue is full — TCP push-back once the service's socket
        buffers fill behind it.  ``block=False`` (the service's path)
        instead refuses with ``busy`` at the busy watermark and ``shed``
        at the shed watermark, so overload degrades into explicit
        retry-later responses instead of unbounded queueing.

        With tracing enabled, ``traceparent`` (a W3C header value, e.g.
        from the wire protocol's optional field) becomes the remote
        parent of the case's trace; the first ingest span of a case is
        its local root.  Disabled, the extra cost is one attribute read.
        """
        if not self._accepting:
            raise ReproError("the service is draining; entry rejected")
        if self._tel.tracer.enabled:
            return self._submit_traced(entry, subscriber, traceparent, seq, block)
        return self._admit(entry, subscriber, None, seq, block)

    def _submit_traced(
        self,
        entry: LogEntry,
        subscriber: Optional[Subscriber],
        traceparent: Optional[str],
        seq: Optional[int],
        block: bool,
    ) -> Admission:
        """The traced ingest path: same admission, wrapped in a span."""
        tracer = self._tel.tracer
        case = entry.case
        with self._trace_lock:
            root = self._case_traces.get(case)
        if root is None:
            parent = parse_traceparent(traceparent) if traceparent else None
        else:
            parent = root
        with tracer.span(
            "serve.ingest", parent=parent, case=case, task=entry.task
        ) as span:
            if root is None:
                with self._trace_lock:
                    root = self._case_traces.setdefault(case, span.context)
            admission = self._admit(entry, subscriber, root, seq, block)
            span.attrs["shard"] = admission.shard
            if not admission.accepted:
                span.attrs["admitted"] = False
                span.attrs["reason"] = admission.reason or (
                    "duplicate" if admission.duplicate else "busy"
                )
        return admission

    def _admit(
        self,
        entry: LogEntry,
        subscriber: Optional[Subscriber],
        ctx: Optional[TraceContext],
        seq: Optional[int],
        block: bool,
    ) -> Admission:
        case = entry.case
        item = ("entry", entry, subscriber, ctx)
        with self._ingest_lock:
            count = self._case_seq.get(case, 0)
            name = self._ring.shard_for(case)
            if seq is not None:
                if seq <= count:
                    # An idempotent re-send (client resumed after a
                    # reconnect): already accepted, ack without replay.
                    self._duplicate_total += 1
                    self._m_duplicates.inc()
                    return Admission(
                        accepted=False,
                        shard=name,
                        case_seq=seq,
                        duplicate=True,
                        reason="already accepted",
                    )
                if seq != count + 1:
                    # A gap: earlier entries of the case were refused
                    # (shed) or lost.  Refuse this one too — the sender
                    # must redeliver in order.
                    self._busy_total += 1
                    self._m_busy.inc()
                    return Admission(
                        accepted=False,
                        shard=name,
                        case_seq=seq,
                        busy=True,
                        retry_after_s=self.config.retry_after_s,
                        reason=(
                            f"sequence gap for case {case!r}: expected "
                            f"{count + 1}, got {seq}"
                        ),
                    )
            shard = self._shards[name]
            depth = shard.queue.qsize()
            if not block:
                # Admission control: only submitters enqueue, and they
                # all hold this lock, so the depth can only shrink
                # between this check and the put below.
                if depth >= self._shed_wm:
                    self._shed_total += 1
                    self._m_shed.inc()
                    self._set_overload(name, "shed", depth)
                    return Admission(
                        accepted=False,
                        shard=name,
                        busy=True,
                        shed=True,
                        retry_after_s=self.config.retry_after_s,
                        reason=f"shard {name} over its shed watermark",
                    )
                if depth >= self._busy_wm:
                    self._busy_total += 1
                    self._m_busy.inc()
                    self._set_overload(name, "busy", depth)
                    return Admission(
                        accepted=False,
                        shard=name,
                        busy=True,
                        retry_after_s=self.config.retry_after_s,
                        reason=f"shard {name} over its busy watermark",
                    )
                self._set_overload(name, "ok", depth)
            case_seq = count + 1
            wal_seq = 0
            wal = self._wals.get(name)
            if wal is not None:
                # The acceptance point: not in the WAL => never acked.
                try:
                    wal_seq = wal.append(entry, case_seq)
                except WalError:
                    raise
                except Exception as error:
                    raise WalError(
                        f"write-ahead append failed; entry not accepted: "
                        f"{error}"
                    ) from error
                self._m_wal_records.inc()
            self._case_seq[case] = case_seq
            self._received += 1
            self._m_entries.inc()
            full = False
            if self._writer is not None:
                with self._pending_lock:
                    self._pending.append((entry, name, wal_seq))
                    full = len(self._pending) >= self.config.flush_max_batch
            delivered = True
            try:
                shard.queue.put_nowait(item)
            except queue.Full:
                delivered = False
        if full:
            self.flush()
        if not delivered:
            self._deliver_blocking(case, shard, item)
        return Admission(
            accepted=True, shard=name, case_seq=case_seq, wal_seq=wal_seq
        )

    def _deliver_blocking(
        self, case: str, target: _Shard, item: tuple
    ) -> None:
        """Deliver an already-accepted entry to a full shard queue.

        Runs outside the admission lock so intake of other shards (and
        supervised restarts) proceed.  If the target shard is replaced
        or the case re-homed while we wait, delivery is dropped: the
        entry is in the WAL the replacement replayed from, and a second
        delivery would double-count it.
        """
        while True:
            current = self._shards.get(self._ring.shard_for(case))
            if current is not target:
                return
            try:
                target.queue.put(item, timeout=0.05)
                return
            except queue.Full:
                continue

    def _set_overload(self, shard: str, level: str, depth: int) -> None:
        """Track a shard's admission level; emit transitions only."""
        previous = self._overload.get(shard, "ok")
        if previous == level:
            return
        self._overload[shard] = level
        self._tel.events.emit(
            SERVE_OVERLOAD,
            shard=shard,
            level=level,
            previous=previous,
            queue_depth=depth,
        )

    def case_trace(self, case: str) -> Optional[TraceContext]:
        """The case's root trace context (None untraced/unseen)."""
        with self._trace_lock:
            return self._case_traces.get(case)

    def barrier(self, callback: Callable[[], None]) -> None:
        """Invoke *callback* once all work submitted so far is processed.

        Serialized against supervised restarts: a barrier lands either
        before a restart (its latch is honored while draining the old
        shard's queue) or after (posted to the replacement, firing only
        once the rebuilt state is current) — never astride one.
        """
        with self._ingest_lock:
            latch = _Barrier(len(self._shards), callback)
            for shard in self._shards.values():
                shard.queue.put(("barrier", latch))

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until every shard has drained its queue (test helper)."""
        done = threading.Event()
        self.barrier(done.set)
        return done.wait(timeout)

    def sweep(self, now: datetime) -> None:
        """Post a temporal sweep (and checkpoint tick) to every shard."""
        with self._ingest_lock:
            for shard in self._shards.values():
                shard.queue.put(("sweep", now))

    def flush(self) -> None:
        """Hand the buffered entries to the store writer (async commit)."""
        if self._writer is None:
            return
        with self._pending_lock:
            pending, self._pending = self._pending, []
        if not pending:
            return
        batch = [entry for entry, _, _ in pending]
        # Per-shard WAL retirement floors: once this batch commits, every
        # WAL record at or below its shard's floor is in the store.
        floors: dict[str, int] = {}
        for _, name, wal_seq in pending:
            if wal_seq:
                floors[name] = max(floors.get(name, 0), wal_seq)
        contexts: tuple[TraceContext, ...] = ()
        if self._tel.tracer.enabled:
            # The distinct case traces this flush persists entries of —
            # the writer parents (one) or links (many) its flush span.
            seen: dict[str, TraceContext] = {}
            with self._trace_lock:
                for entry in batch:
                    ctx = self._case_traces.get(entry.case)
                    if ctx is not None:
                        seen.setdefault(ctx.trace_id, ctx)
            contexts = tuple(seen.values())
        self._writer.queue.put(("batch", batch, contexts, floors))

    def wal_commit(self) -> int:
        """Fsync every shard's WAL buffer (the ``sync`` durability ack).

        Returns the number of records made durable.  Safe (a no-op)
        without a WAL.
        """
        flushed = 0
        for wal in self._wals.values():
            flushed += wal.commit()
        if flushed:
            self._tel.events.emit(SERVE_WAL_COMMIT, records=flushed)
        return flushed

    @property
    def wal_enabled(self) -> bool:
        return bool(self._wals)

    def _durable_store_path(self) -> Optional[str]:
        """The store path when it survives this process (None otherwise)."""
        path = self.config.store_path
        if path is None or path == ":memory:":
            return None
        return path

    def _on_batch_durable(self, floors: dict[str, int]) -> None:
        """Store-writer callback: a batch committed; retire covered WAL.

        Only a *durable* store commit justifies deleting WAL segments —
        an in-memory store dies with the process, so its WAL is kept
        whole for recovery.
        """
        if self._durable_store_path() is None:
            return
        for name, seq in floors.items():
            wal = self._wals.get(name)
            if wal is None:
                continue
            removed = wal.retire(seq)
            if removed:
                self._tel.events.emit(
                    SERVE_WAL_RETIRED, shard=name, upto=seq, segments=removed
                )

    def _writer_sync(self, timeout: Optional[float] = None) -> bool:
        """Block until every store batch queued so far has committed."""
        if self._writer is None or not self._writer.is_alive():
            return True
        event = threading.Event()
        self._writer.queue.put(("sync", event))
        return event.wait(timeout)

    # -- recovery (driven by repro.serve.recovery) --------------------------
    def _ingest_recovered_case(
        self,
        case: str,
        store_entries: list[LogEntry],
        wal_entries: list[LogEntry],
    ) -> str:
        """Replay one case's durable history into its owning shard.

        Store entries are already persisted; WAL-delta entries are
        re-buffered for the store (their old segments are only dropped
        once the post-recovery flush commits).  The per-case sequence
        high-water mark is restored so client re-sends keep deduping
        across the restart.  Returns the owning shard's name.
        """
        with self._ingest_lock:
            name = self._ring.shard_for(case)
            shard = self._shards[name]
            self._case_seq[case] = len(store_entries) + len(wal_entries)
            self._received += len(wal_entries)
            for entry in store_entries:
                shard.queue.put(("entry", entry, None, None))
                self._m_recovered.inc(source="store")
            for entry in wal_entries:
                shard.queue.put(("entry", entry, None, None))
                self._m_recovered.inc(source="wal")
                if self._writer is not None:
                    with self._pending_lock:
                        self._pending.append((entry, name, 0))
        return name

    # -- supervision --------------------------------------------------------
    def _restart_shard(self, name: str, reason: str) -> None:
        """Replace a crashed or hung shard (the supervisor's repair verb).

        Within the restart budget the shard is rebuilt in place: a new
        monitor replays every entry of every case the shard owns from
        the store + WAL (the WAL is a start() precondition for
        supervision, so that union covers all accepted entries).  The
        case in flight when the shard died is the poison suspect — it is
        contained as FAILED/quarantined instead of replayed, so a
        deterministic killer cannot crash-loop the replacement.  Past
        the budget the shard is removed from the consistent-hash ring
        and its cases re-homed to the surviving shards the same way.
        """
        from repro.serve.recovery import collect_case_histories

        with self._ingest_lock:
            old = self._shards.get(name)
            if old is None or old.stopped or not self._accepting:
                return
            old.abandoned = True
            victim = old.current_case
            # Make every accepted entry readable before computing the
            # rebuild history: pending batches into the store (durability
            # barrier), WAL buffers onto disk.
            self.flush()
            self._writer_sync()
            for wal in self._wals.values():
                wal.commit()
            exclude = frozenset() if victim is None else frozenset({victim})
            histories, _ = collect_case_histories(
                self._durable_store_path(),
                self.config.wal_dir,
                include=lambda case: self._ring.shard_for(case) == name,
                exclude=exclude,
            )
            rebuild: list[tuple] = []
            if victim is not None:
                error = ReproError(
                    f"shard {name} {reason} while processing case "
                    f"{victim!r}; the case is quarantined as the poison "
                    f"suspect"
                )
                rebuild.append(("contain", victim, error))
                self._note_quarantined(victim, OutcomeKind.ERROR, str(error))
            entry_count = 0
            for history in histories.values():
                for entry in history.entries:
                    rebuild.append(("entry", entry, None, None))
                    entry_count += 1
            within_budget = self._restart_budget.record(name)
            if within_budget:
                replacement = _Shard(
                    name, self._new_monitor(), self, rebuild=rebuild
                )
                self._shards[name] = replacement
                replacement.start()
                self._m_restarts.inc(shard=name, reason=reason)
                self._tel.events.emit(
                    SERVE_SHARD_RESTARTED,
                    shard=name,
                    reason=reason,
                    victim=victim,
                    cases=len(histories),
                    entries=entry_count,
                )
            else:
                # Beyond repair: hand the shard's cases to the survivors
                # through the ring.  Its WAL stays on disk (recovery may
                # still need those records) but is closed cleanly.
                self._ring.remove_shard(name)
                del self._shards[name]
                self._overload.pop(name, None)
                wal = self._wals.pop(name, None)
                if wal is not None:
                    wal.close()
                for item in rebuild:
                    case = item[1] if item[0] == "contain" else item[1].case
                    owner = self._shards[self._ring.shard_for(case)]
                    owner.queue.put(item)
                self._reassigned.append(name)
                self._m_restarts.inc(shard=name, reason="reassign")
                self._tel.events.emit(
                    SERVE_SHARD_REASSIGNED,
                    shard=name,
                    reason=reason,
                    cases=len(histories),
                )
            # Honor barriers stranded in the abandoned queue and drop its
            # entries — the rebuild history covers them.
            while True:
                try:
                    stranded = old.queue.get_nowait()
                except queue.Empty:
                    break
                if stranded[0] == "barrier":
                    stranded[1].arrive()
            try:
                # If the old thread was merely hung it will eventually
                # wake, notice it is abandoned, and exit on this.
                old.queue.put_nowait(("stop",))
            except queue.Full:  # pragma: no cover - queue was just drained
                pass

    # -- drain -------------------------------------------------------------
    def drain(self) -> DrainReport:
        """Stop intake, finish all queued work, flush, checkpoint.

        Idempotent; after it returns the shard threads have exited and
        monitor state may be read from any thread.
        """
        if self._drained:
            return self._drain_report
        if self._supervisor is not None:
            self._supervisor.stop()
        self._accepting = False
        for shard in self._shards.values():
            shard.queue.put(("stop",))
        for shard in self._shards.values():
            shard.join()
        self.flush()
        intact: Optional[bool] = None
        if self._writer is not None:
            self._writer.queue.put(None)
            self._writer.join()
            intact = self._writer.intact
        for wal in self._wals.values():
            if intact:
                # A clean drain with an intact store owns every record;
                # the WAL has nothing left to recover.
                wal.reset()
            wal.close()
        for shard in self._shards.values():
            shard.monitor.checkpoint(force=True)
        if self._tmp_automata is not None:
            self._tmp_automata.cleanup()
            self._tmp_automata = None
        final = {
            case: str(state) for case, state in self.case_states().items()
        }
        self._drain_report = DrainReport(
            entries_received=self._received,
            entries_written=self.entries_written,
            cases=len(final),
            quarantined_cases=len(self._quarantined),
            store_intact=intact,
            final_states=final,
        )
        self._drained = True
        self._tel.events.emit(
            SERVE_DRAINED,
            entries=self._received,
            written=self._drain_report.entries_written,
            cases=self._drain_report.cases,
            quarantined=self._drain_report.quarantined_cases,
        )
        return self._drain_report

    # -- inspection --------------------------------------------------------
    @property
    def entries_received(self) -> int:
        return self._received

    @property
    def entries_written(self) -> int:
        return self._writer.written if self._writer is not None else 0

    @property
    def draining(self) -> bool:
        return not self._accepting

    @property
    def shard_names(self) -> tuple[str, ...]:
        return tuple(self._shards)

    def shard_of(self, case: str) -> str:
        return self._ring.shard_for(case)

    def case_sequence(self, case: str) -> int:
        """Accepted entries of *case* so far (the dedup high-water mark)."""
        with self._ingest_lock:
            return self._case_seq.get(case, 0)

    def quarantined_cases(self) -> dict[str, OutcomeKind]:
        """Cases the service took out of rotation, with their failure kind."""
        with self._quarantined_lock:
            return dict(self._quarantined)

    @property
    def registry(self) -> ProcessRegistry:
        """The shared registry (the control plane maps tenants over it)."""
        return self._registry

    # -- quarantine triage (the control plane's verbs) -----------------------
    def requeue_case(self, case: str, wait_s: float = 5.0) -> RequeueResult:
        """Give a quarantined case a fresh from-scratch replay.

        The replay runs on the case's owning shard thread (queued like
        any other item, so it is ordered against the case's live
        entries).  Admission mirrors :meth:`submit`: a draining router
        or an unknown/not-quarantined case is refused with a reason, a
        shard over its busy watermark answers ``busy`` with the usual
        ``retry_after_s`` hint.  Blocks up to *wait_s* for the replay's
        outcome; on timeout the requeue still completes on the shard —
        only the synchronous answer is partial.
        """
        done = threading.Event()
        holder: dict = {}
        with self._ingest_lock:
            if not self._accepting:
                return RequeueResult(
                    case, accepted=False, reason="the service is draining"
                )
            with self._quarantined_lock:
                quarantined = case in self._quarantined
            if not quarantined:
                self._m_requeues.inc(outcome="refused")
                return RequeueResult(
                    case,
                    accepted=False,
                    reason=f"case {case!r} is not quarantined",
                )
            name = self._ring.shard_for(case)
            shard = self._shards[name]
            if shard.queue.qsize() >= self._busy_wm:
                self._m_requeues.inc(outcome="busy")
                return RequeueResult(
                    case,
                    accepted=False,
                    busy=True,
                    retry_after_s=self.config.retry_after_s,
                    reason=f"shard {name} over its busy watermark",
                    shard=name,
                )
            # Popping the note *before* the replay lets the shard re-file
            # it if the failure reproduces; _note_quarantined is
            # first-write-wins, so the slot must be free.
            with self._quarantined_lock:
                self._quarantined.pop(case, None)
            shard.queue.put_nowait(("requeue", case, done, holder))
        done.wait(wait_s)
        self._m_requeues.inc(
            outcome="requarantined" if holder.get("requarantined") else "replayed"
        )
        return RequeueResult(
            case,
            accepted=True,
            shard=name,
            state=holder.get("state"),
            replayed_entries=int(holder.get("replayed", 0)),
        )

    def dismiss_quarantined(self, case: str) -> Optional[OutcomeKind]:
        """Drop a case from the quarantine list (operator accepts the loss).

        Returns the failure kind the case was quarantined with, or
        ``None`` if it was not quarantined.  The monitor's terminal
        state is untouched — dismissal is triage bookkeeping, not an
        acquittal; the control plane records it durably in the store's
        control log.
        """
        with self._quarantined_lock:
            kind = self._quarantined.pop(case, None)
        if kind is not None:
            self._m_dismissals.inc()
        return kind

    def case_states(self) -> dict[str, CaseState]:
        """Every observed case's current state (all shards merged).

        Only quiescent-safe: call after a barrier (or drain) if other
        threads may still be feeding the shards.
        """
        states: dict[str, CaseState] = {}
        for shard in self._shards.values():
            monitor = shard.monitor
            for case in monitor.cases():
                state = monitor.case_state(case)
                if state is not None:
                    states[case] = state
        return states

    def case_digest(self, case: str) -> Optional[str]:
        """The case's canonical verdict digest (None without a session)."""
        monitor = self._shards[self._ring.shard_for(case)].monitor
        result = monitor.case_result(case)
        return canonical_digest(result) if result is not None else None

    def results(self) -> dict[str, dict]:
        """Per-case final word: state, purpose, digest, failure kind."""
        out: dict[str, dict] = {}
        for shard in self._shards.values():
            monitor = shard.monitor
            for case in monitor.cases():
                state = monitor.case_state(case)
                kind = monitor.case_failure_kind(case)
                result = monitor.case_result(case)
                out[case] = {
                    "case": case,
                    "state": str(state) if state is not None else None,
                    "purpose": monitor.case_purpose(case),
                    "digest": (
                        canonical_digest(result)
                        if result is not None
                        else None
                    ),
                    "failure_kind": kind.value if kind is not None else None,
                    "shard": shard.shard_name,
                }
        return out

    def refresh_shard_gauges(self) -> dict[str, dict]:
        """Per-shard load detail; also updates the shard gauges.

        Called at scrape time (``/healthz``, ``/metrics``, the ``status``
        op) so the ``serve_shard_queue_depth`` /
        ``serve_shard_inflight_cases`` (and WAL lag) gauges are current
        whenever anybody looks.
        """
        detail: dict[str, dict] = {}
        for name, shard in self._shards.items():
            depth = shard.queue.qsize()
            inflight = shard.inflight_cases
            self._m_queue_depth.set(depth, shard=name)
            self._m_inflight.set(inflight, shard=name)
            detail[name] = {
                "queue_depth": depth,
                "inflight_cases": inflight,
                "entries_observed": shard.entries_observed,
            }
            wal = self._wals.get(name)
            if wal is not None:
                stats = wal.stats()
                self._m_wal_unflushed_records.set(
                    stats["unflushed_records"], shard=name
                )
                self._m_wal_unflushed_bytes.set(
                    stats["unflushed_bytes"], shard=name
                )
                self._m_wal_segments.set(stats["segments"], shard=name)
        return detail

    def statistics(self) -> dict[str, object]:
        """A live snapshot for the ``status`` op and ``/healthz``."""
        per_state: dict[str, int] = {state.value: 0 for state in CaseState}
        entries = 0
        for shard in self._shards.values():
            stats = shard.monitor.statistics()
            entries += stats.pop("entries", 0)
            for state, count in stats.items():
                per_state[state] = per_state.get(state, 0) + count
        wal_stats = {name: wal.stats() for name, wal in self._wals.items()}
        recovery: dict[str, object] = {"recovered": False}
        if self.recovery_report is not None:
            recovery = {"recovered": True, **self.recovery_report.to_dict()}
        return {
            "shards": len(self._shards),
            "entries_received": self._received,
            "entries_observed": entries,
            "entries_written": self.entries_written,
            "cases": per_state,
            "quarantined_cases": len(self._quarantined),
            "dead_letters": len(self.dead_letters),
            "draining": self.draining,
            "shard_detail": self.refresh_shard_gauges(),
            "backpressure": {
                "busy": self._busy_total,
                "shed": self._shed_total,
                "duplicates": self._duplicate_total,
                "busy_watermark": self._busy_wm,
                "shed_watermark": self._shed_wm,
                "levels": dict(self._overload),
            },
            "wal": {
                "enabled": bool(self._wals),
                "records": sum(s["records"] for s in wal_stats.values()),
                "unflushed_records": sum(
                    s["unflushed_records"] for s in wal_stats.values()
                ),
                "unflushed_bytes": sum(
                    s["unflushed_bytes"] for s in wal_stats.values()
                ),
                "segments": sum(s["segments"] for s in wal_stats.values()),
                "shards": wal_stats,
            },
            "supervisor": {
                "enabled": self._supervisor is not None,
                "restarts": dict(self._restart_budget.counts),
                "reassigned_shards": list(self._reassigned),
            },
            "recovery": recovery,
        }

    # -- internals ---------------------------------------------------------
    def _note_quarantined(
        self, case: str, kind: OutcomeKind, detail: str
    ) -> None:
        """Record (once) that *case* was taken out of rotation."""
        with self._quarantined_lock:
            if case in self._quarantined:
                return
            self._quarantined[case] = kind
        self._m_quarantined.inc(kind=kind.value)
        self._tel.events.emit(
            CASE_QUARANTINED, case=case, kind=kind.value, detail=detail
        )
