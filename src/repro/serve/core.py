"""The sharded streaming-audit engine behind ``repro serve``.

The :class:`ShardRouter` is the socket-free core of the audit daemon:
it owns N worker threads, each running its own
:class:`~repro.core.monitor.OnlineMonitor`, and routes every incoming
log entry to exactly one shard by consistent-hashing its case id
(:mod:`repro.serve.sharding`).  Algorithm 1 is stateful *per case* and
cases are independent (Section 7's scalability argument), so sharding
by case id parallelizes the stream without any cross-shard
coordination — each case's entries are processed in arrival order by
the one thread that owns its frontier.

Everything the asyncio service (:mod:`repro.serve.service`) does goes
through this class, and the test suites drive it directly where a
socket would only add noise (the hypothesis stream-equivalence
property runs thousands of examples against it).

Responsibilities:

* **encode-once warm-up** — all shards share one
  :class:`~repro.policy.registry.ProcessRegistry`, whose
  ``encoded_for`` memoizes the BPMN→COWS encoding, and (when an
  ``automaton_dir`` is configured) one on-disk
  :class:`~repro.compile.AutomatonCache`; :meth:`start` pre-encodes
  every registered purpose so N shards never encode the same process
  twice;
* **durable ingest** — every accepted entry is buffered and flushed to
  an :class:`~repro.audit.store.AuditStore` in batched
  ``append_many`` transactions by a dedicated writer thread (SQLite
  connections are single-threaded);
* **per-case backpressure** — each shard tracks cumulative processing
  time per case; a case that exceeds ``case_timeout_s`` is contained
  via :meth:`OnlineMonitor.contain` with a
  :class:`~repro.errors.CaseTimeoutError` (→ ``OutcomeKind.TIMEOUT``)
  and quarantined, so a stuck case never stalls its shard's queue for
  long — the stream stays live;
* **drain** — stop intake, let every shard finish its queue, flush the
  store, checkpoint automata, and report final per-case verdicts.
"""

from __future__ import annotations

import queue
import tempfile
import threading
import time
from dataclasses import dataclass, field
from datetime import datetime
from typing import Callable, Optional

from repro.audit.model import LogEntry
from repro.audit.store import AuditStore
from repro.core.monitor import CaseState, OnlineMonitor
from repro.core.resilience import OutcomeKind, Quarantine
from repro.core.temporal import TemporalConstraints
from repro.errors import CaseTimeoutError, MalformedEntryError, ReproError
from repro.obs import (
    CASE_QUARANTINED,
    NULL_TELEMETRY,
    SERVE_DRAINED,
    SERVE_FLUSH,
    Telemetry,
    TraceContext,
    parse_traceparent,
)
from repro.policy.hierarchy import RoleHierarchy
from repro.policy.registry import ProcessRegistry
from repro.serve.protocol import EV_VERDICT
from repro.serve.sharding import ConsistentHashRing
from repro.testing.differential import canonical_digest

#: A callback receiving protocol-shaped server events for one client.
#: Called from shard threads — implementations must be thread-safe
#: (the asyncio service marshals onto the loop; tests append to lists
#: under the GIL).
Subscriber = Callable[[dict], None]

_TERMINAL = frozenset(
    {
        CaseState.COMPLETED,
        CaseState.INFRINGING,
        CaseState.TIMED_OUT,
        CaseState.UNDECIDABLE,
        CaseState.FAILED,
    }
)


@dataclass(frozen=True)
class ServeConfig:
    """Tuning knobs for the audit daemon (see ``docs/serving.md``).

    ``flush_interval_s`` is enforced by the service's timer task; the
    router itself flushes whenever the buffer reaches
    ``flush_max_batch`` and once on drain, so a router used without the
    asyncio wrapper still persists everything.
    """

    shards: int = 4
    replicas: int = 64  # virtual nodes per shard on the hash ring
    store_path: Optional[str] = None
    flush_interval_s: float = 0.5
    flush_max_batch: int = 256
    case_timeout_s: Optional[float] = None  # cumulative per-case budget
    queue_capacity: int = 10_000  # per-shard; submit blocks when full
    compiled: Optional[bool] = None
    automaton_dir: Optional[str] = None
    automaton_max_states: int = 50_000


@dataclass(frozen=True)
class DrainReport:
    """What :meth:`ShardRouter.drain` accomplished."""

    entries_received: int
    entries_written: int
    cases: int
    quarantined_cases: int
    store_intact: Optional[bool]  # None when no store is configured
    final_states: dict[str, str] = field(default_factory=dict)


class _Barrier:
    """A countdown latch posted to every shard queue.

    Fires *callback* (from the last shard's worker thread) once every
    shard has drained all work enqueued before it — the ``sync`` op.
    """

    def __init__(self, parties: int, callback: Callable[[], None]):
        self._remaining = parties
        self._lock = threading.Lock()
        self._callback = callback

    def arrive(self) -> None:
        with self._lock:
            self._remaining -= 1
            fire = self._remaining == 0
        if fire:
            self._callback()


class _Shard(threading.Thread):
    """One worker thread owning one :class:`OnlineMonitor`."""

    def __init__(self, name: str, monitor: OnlineMonitor, router: "ShardRouter"):
        super().__init__(name=f"repro-serve-{name}", daemon=True)
        self.shard_name = name
        self.monitor = monitor
        self.queue: "queue.Queue[tuple]" = queue.Queue(
            maxsize=router.config.queue_capacity
        )
        self._router = router
        self._spent: dict[str, float] = {}  # case -> processing seconds
        self.entries_observed = 0
        # Cases this shard has opened and not yet settled.  Mutated only
        # by this thread; other threads read len() (GIL-atomic) for the
        # in-flight gauge.
        self._open_cases: set[str] = set()

    def run(self) -> None:
        while True:
            item = self.queue.get()
            try:
                kind = item[0]
                if kind == "stop":
                    return
                if kind == "entry":
                    self._observe(item[1], item[2], item[3])
                elif kind == "barrier":
                    item[1].arrive()
                elif kind == "sweep":
                    self.monitor.sweep(item[1])
            except Exception as error:  # pragma: no cover - last resort
                # A shard thread must never die: anything the monitor's
                # own containment missed is charged to the entry's case.
                if kind == "entry":
                    self._router._note_quarantined(
                        item[1].case,
                        self.monitor.case_failure_kind(item[1].case)
                        or OutcomeKind.ERROR,
                        str(error),
                    )
            finally:
                self.queue.task_done()

    @property
    def inflight_cases(self) -> int:
        """Open (non-terminal) cases currently owned by this shard."""
        return len(self._open_cases)

    def _observe(
        self,
        entry: LogEntry,
        subscriber: Optional[Subscriber],
        ctx: Optional[TraceContext] = None,
    ) -> None:
        monitor = self.monitor
        case = entry.case
        tracer = self._router._tel.tracer
        before = monitor.case_state(case)
        replay_span_id = ""
        started = time.perf_counter()
        if ctx is not None and tracer.enabled:
            # The shard-side half of the case's trace: monitor-internal
            # "replay"/"weaknext" spans nest under this via the thread's
            # span stack.
            with tracer.span(
                "serve.replay", parent=ctx, case=case, shard=self.shard_name
            ) as span:
                raised = monitor.observe(entry)
                replay_span_id = span.span_id
        else:
            raised = monitor.observe(entry)
        elapsed = time.perf_counter() - started
        self.entries_observed += 1
        if ctx is not None:
            self._router._m_ingest.observe_with_exemplar(
                elapsed, ctx.trace_id, replay_span_id
            )
        else:
            self._router._m_ingest.observe(elapsed)

        budget = self._router.config.case_timeout_s
        after = monitor.case_state(case)
        if (
            budget is not None
            and before is not None  # opening an unseen case pays one-off
            # warm-up (encoding, closure priming) that is not the case's
            # fault — the budget meters steady-state replay time.
            and after not in (CaseState.UNDECIDABLE, CaseState.FAILED)
        ):
            spent = self._spent.get(case, 0.0) + elapsed
            self._spent[case] = spent
            if spent > budget:
                # The case blew its cumulative processing budget: take
                # it out of rotation so it cannot slow this shard again.
                error = CaseTimeoutError(
                    f"case {case!r} exceeded its processing budget",
                    budget_s=budget,
                    elapsed_s=spent,
                )
                raised = list(raised) + [monitor.contain(case, error)]
                after = monitor.case_state(case)

        if after in _TERMINAL:
            self._open_cases.discard(case)
        elif after is not None:
            self._open_cases.add(case)

        kind = monitor.case_failure_kind(case)
        if kind is not None:
            self._router._note_quarantined(
                case, kind, raised[-1].detail if raised else ""
            )
        if ctx is not None and after in _TERMINAL and before not in _TERMINAL:
            # The case settled: close its trace with an instant span.
            tracer.record_span(
                "serve.verdict",
                time.time(),
                0.0,
                parent=ctx,
                case=case,
                state=str(after),
                shard=self.shard_name,
            )
        if subscriber is not None and (before is not after or raised):
            event = {
                "event": EV_VERDICT,
                "case": case,
                "state": str(after) if after is not None else None,
                "previous": str(before) if before is not None else None,
                "purpose": monitor.case_purpose(case),
                "shard": self.shard_name,
                "infringements": [
                    {"kind": i.kind.value, "detail": i.detail}
                    for i in raised
                ],
            }
            if ctx is not None:
                event["trace"] = ctx.trace_id
            subscriber(event)


class _StoreWriter(threading.Thread):
    """The one thread that owns the SQLite connection.

    Batches arrive on an unbounded queue; each is committed in a single
    ``append_many`` transaction.  If a batch turns out malformed the
    writer retries entry-by-entry so one bad record costs one record,
    not the flush (the rejects land in the router's dead-letter
    quarantine).
    """

    def __init__(self, path: str, router: "ShardRouter"):
        super().__init__(name="repro-serve-store", daemon=True)
        self._path = path
        self._router = router
        #: ``(batch, case trace contexts)`` tuples; ``None`` stops.
        self.queue: "queue.Queue[Optional[tuple]]" = queue.Queue()
        self.written = 0
        self.intact: Optional[bool] = None

    def run(self) -> None:
        store = AuditStore(self._path)
        tracer = self._router._tel.tracer
        try:
            while True:
                item = self.queue.get()
                if item is None:
                    self.intact = store.is_intact()
                    return
                batch, contexts = item
                started = time.perf_counter()
                if tracer.enabled and contexts:
                    # A single-case batch joins that case's trace; a
                    # mixed batch is its own trace *linking* every case
                    # it persisted (one flush serves many traces).
                    parent = contexts[0] if len(contexts) == 1 else None
                    links = contexts if len(contexts) > 1 else ()
                    with tracer.span(
                        "store.flush",
                        parent=parent,
                        links=links,
                        entries=len(batch),
                    ):
                        self._commit(store, batch)
                else:
                    self._commit(store, batch)
                duration = time.perf_counter() - started
                self._router._m_flushes.inc()
                self._router._m_flush_seconds.observe(duration)
                self._router._tel.events.emit(
                    SERVE_FLUSH,
                    entries=len(batch),
                    written_total=self.written,
                    duration_s=round(duration, 6),
                )
        finally:
            store.close()

    def _commit(self, store: AuditStore, batch: list[LogEntry]) -> None:
        try:
            self.written += store.append_many(batch)
        except MalformedEntryError:
            for offset, entry in enumerate(batch):
                try:
                    store.append(entry)
                    self.written += 1
                except MalformedEntryError as error:
                    self._router.dead_letters.add(
                        source="serve",
                        reason=str(error),
                        position=offset,
                        raw=str(entry),
                    )


class ShardRouter:
    """Consistent-hash fan-out of an entry stream over monitor shards."""

    def __init__(
        self,
        registry: ProcessRegistry,
        hierarchy: Optional[RoleHierarchy] = None,
        config: Optional[ServeConfig] = None,
        temporal: Optional[dict[str, TemporalConstraints]] = None,
        telemetry: Optional[Telemetry] = None,
        checker_wrapper=None,
    ):
        self.config = config or ServeConfig()
        if self.config.shards < 1:
            raise ValueError("need at least one shard")
        self._registry = registry
        self._hierarchy = hierarchy
        self._temporal = temporal
        self._checker_wrapper = checker_wrapper
        tel = telemetry if telemetry is not None else NULL_TELEMETRY
        self._tel = tel
        self.dead_letters = Quarantine(telemetry=tel)

        names = [f"shard-{i}" for i in range(self.config.shards)]
        self._ring = ConsistentHashRing(names, replicas=self.config.replicas)
        self._shards: dict[str, _Shard] = {}
        self._writer: Optional[_StoreWriter] = None
        self._pending: list[LogEntry] = []
        self._pending_lock = threading.Lock()
        self._quarantined: dict[str, OutcomeKind] = {}
        self._quarantined_lock = threading.Lock()
        self._accepting = False
        self._drained = False
        self._received = 0
        self._tmp_automata: Optional[tempfile.TemporaryDirectory] = None
        # case id -> the root TraceContext of its (one) trace.  The
        # first traced ingest of a case mints it; every later span of
        # the case — ingest, replay, verdict, store flush — joins it.
        self._case_traces: dict[str, TraceContext] = {}
        self._trace_lock = threading.Lock()

        self._m_entries = tel.registry.counter(
            "serve_entries_total", "log entries accepted by the service"
        )
        self._m_ingest = tel.registry.histogram(
            "serve_ingest_seconds", "shard processing time per entry"
        )
        self._m_flushes = tel.registry.counter(
            "serve_flushes_total", "store flush transactions committed"
        )
        self._m_flush_seconds = tel.registry.histogram(
            "serve_flush_seconds", "wall time per store flush"
        )
        self._m_quarantined = tel.registry.counter(
            "serve_quarantined_cases_total",
            "cases taken out of rotation by the service, by kind",
        )
        self._m_queue_depth = tel.registry.gauge(
            "serve_shard_queue_depth", "items waiting in each shard's queue"
        )
        self._m_inflight = tel.registry.gauge(
            "serve_shard_inflight_cases",
            "open (non-terminal) cases owned by each shard",
        )

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Warm shared state and start the shard + writer threads."""
        if self._shards:
            raise ReproError("the router is already started")
        # Encode every registered purpose once, up front, on the shared
        # registry — the N monitors then hit the memoized encoding (and,
        # compiled, the shared on-disk automaton cache) instead of each
        # re-encoding the BPMN.
        for purpose in self._registry.purposes():
            self._registry.encoded_for(purpose)
        automaton_dir = self.config.automaton_dir
        if self.config.compiled or automaton_dir is not None:
            if automaton_dir is None:
                # Compiled serving always warms shards through an
                # AutomatonCache; without a configured directory the
                # artifacts live (and die) with the router.
                self._tmp_automata = tempfile.TemporaryDirectory(
                    prefix="repro-serve-automata-"
                )
                automaton_dir = self._tmp_automata.name
            self._precompile_automata(automaton_dir)
        for name in self._ring.shards:
            monitor = OnlineMonitor(
                self._registry,
                hierarchy=self._hierarchy,
                temporal=self._temporal,
                telemetry=self._tel,
                compiled=self.config.compiled,
                automaton_dir=automaton_dir,
                automaton_max_states=self.config.automaton_max_states,
                checker_wrapper=self._checker_wrapper,
            )
            shard = _Shard(name, monitor, self)
            self._shards[name] = shard
            shard.start()
        if self.config.store_path is not None:
            self._writer = _StoreWriter(self.config.store_path, self)
            self._writer.start()
        self._accepting = True

    def _precompile_automata(self, automaton_dir: str) -> None:
        """Eagerly compile every purpose's automaton into the cache.

        A daemon serves its stream from warm state: the BFS over the
        canonical alphabet happens once here, at startup, so N shards
        all load the same fully-materialized artifact and per-entry
        replay is a transition-table lookup — not a lazy WeakNext
        exploration racing the live stream.
        """
        from repro.compile import AutomatonCache, compile_automaton
        from repro.core.compliance import ComplianceChecker

        cache = AutomatonCache(automaton_dir, telemetry=self._tel)
        for purpose in sorted(self._registry.purposes()):
            try:
                checker = ComplianceChecker(
                    self._registry.encoded_for(purpose),
                    hierarchy=self._hierarchy,
                    telemetry=self._tel,
                )
                automaton = compile_automaton(
                    checker,
                    max_states=self.config.automaton_max_states,
                    telemetry=self._tel,
                )
                cache.save(automaton)
            except Exception:
                # A purpose that defeats compilation (or Algorithm 1
                # itself) is contained per case at observe time, exactly
                # like in batch audits — it must not keep the service
                # from starting for every other purpose.
                continue

    # -- ingest ------------------------------------------------------------
    def submit(
        self,
        entry: LogEntry,
        subscriber: Optional[Subscriber] = None,
        traceparent: Optional[str] = None,
    ) -> str:
        """Route one entry to its shard; returns the shard name.

        Blocks when the target shard's queue is full — the service's
        last-resort backpressure, surfaced to clients as TCP push-back.
        (The first line of defense is the per-case budget: stuck cases
        are quarantined long before a queue fills.)

        With tracing enabled, ``traceparent`` (a W3C header value, e.g.
        from the wire protocol's optional field) becomes the remote
        parent of the case's trace; the first ingest span of a case is
        its local root.  Disabled, the extra cost is one attribute read.
        """
        if not self._accepting:
            raise ReproError("the service is draining; entry rejected")
        if self._tel.tracer.enabled:
            return self._submit_traced(entry, subscriber, traceparent)
        self._received += 1
        self._m_entries.inc()
        if self._writer is not None:
            with self._pending_lock:
                self._pending.append(entry)
                full = len(self._pending) >= self.config.flush_max_batch
            if full:
                self.flush()
        name = self._ring.shard_for(entry.case)
        self._shards[name].queue.put(("entry", entry, subscriber, None))
        return name

    def _submit_traced(
        self,
        entry: LogEntry,
        subscriber: Optional[Subscriber],
        traceparent: Optional[str],
    ) -> str:
        """The traced ingest path: same routing, wrapped in a span."""
        tracer = self._tel.tracer
        case = entry.case
        with self._trace_lock:
            root = self._case_traces.get(case)
        if root is None:
            parent = parse_traceparent(traceparent) if traceparent else None
        else:
            parent = root
        with tracer.span(
            "serve.ingest", parent=parent, case=case, task=entry.task
        ) as span:
            if root is None:
                with self._trace_lock:
                    root = self._case_traces.setdefault(case, span.context)
            self._received += 1
            self._m_entries.inc()
            if self._writer is not None:
                with self._pending_lock:
                    self._pending.append(entry)
                    full = len(self._pending) >= self.config.flush_max_batch
                if full:
                    self.flush()
            name = self._ring.shard_for(case)
            span.attrs["shard"] = name
            self._shards[name].queue.put(("entry", entry, subscriber, root))
        return name

    def case_trace(self, case: str) -> Optional[TraceContext]:
        """The case's root trace context (None untraced/unseen)."""
        with self._trace_lock:
            return self._case_traces.get(case)

    def barrier(self, callback: Callable[[], None]) -> None:
        """Invoke *callback* once all work submitted so far is processed."""
        latch = _Barrier(len(self._shards), callback)
        for shard in self._shards.values():
            shard.queue.put(("barrier", latch))

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until every shard has drained its queue (test helper)."""
        done = threading.Event()
        self.barrier(done.set)
        return done.wait(timeout)

    def sweep(self, now: datetime) -> None:
        """Post a temporal sweep (and checkpoint tick) to every shard."""
        for shard in self._shards.values():
            shard.queue.put(("sweep", now))

    def flush(self) -> None:
        """Hand the buffered entries to the store writer (async commit)."""
        if self._writer is None:
            return
        with self._pending_lock:
            batch, self._pending = self._pending, []
        if not batch:
            return
        contexts: tuple[TraceContext, ...] = ()
        if self._tel.tracer.enabled:
            # The distinct case traces this flush persists entries of —
            # the writer parents (one) or links (many) its flush span.
            seen: dict[str, TraceContext] = {}
            with self._trace_lock:
                for entry in batch:
                    ctx = self._case_traces.get(entry.case)
                    if ctx is not None:
                        seen.setdefault(ctx.trace_id, ctx)
            contexts = tuple(seen.values())
        self._writer.queue.put((batch, contexts))

    # -- drain -------------------------------------------------------------
    def drain(self) -> DrainReport:
        """Stop intake, finish all queued work, flush, checkpoint.

        Idempotent; after it returns the shard threads have exited and
        monitor state may be read from any thread.
        """
        if self._drained:
            return self._drain_report
        self._accepting = False
        for shard in self._shards.values():
            shard.queue.put(("stop",))
        for shard in self._shards.values():
            shard.join()
        self.flush()
        intact: Optional[bool] = None
        if self._writer is not None:
            self._writer.queue.put(None)
            self._writer.join()
            intact = self._writer.intact
        for shard in self._shards.values():
            shard.monitor.checkpoint(force=True)
        if self._tmp_automata is not None:
            self._tmp_automata.cleanup()
            self._tmp_automata = None
        final = {
            case: str(state) for case, state in self.case_states().items()
        }
        self._drain_report = DrainReport(
            entries_received=self._received,
            entries_written=self.entries_written,
            cases=len(final),
            quarantined_cases=len(self._quarantined),
            store_intact=intact,
            final_states=final,
        )
        self._drained = True
        self._tel.events.emit(
            SERVE_DRAINED,
            entries=self._received,
            written=self._drain_report.entries_written,
            cases=self._drain_report.cases,
            quarantined=self._drain_report.quarantined_cases,
        )
        return self._drain_report

    # -- inspection --------------------------------------------------------
    @property
    def entries_received(self) -> int:
        return self._received

    @property
    def entries_written(self) -> int:
        return self._writer.written if self._writer is not None else 0

    @property
    def draining(self) -> bool:
        return not self._accepting

    @property
    def shard_names(self) -> tuple[str, ...]:
        return tuple(self._shards)

    def shard_of(self, case: str) -> str:
        return self._ring.shard_for(case)

    def quarantined_cases(self) -> dict[str, OutcomeKind]:
        """Cases the service took out of rotation, with their failure kind."""
        with self._quarantined_lock:
            return dict(self._quarantined)

    def case_states(self) -> dict[str, CaseState]:
        """Every observed case's current state (all shards merged).

        Only quiescent-safe: call after a barrier (or drain) if other
        threads may still be feeding the shards.
        """
        states: dict[str, CaseState] = {}
        for shard in self._shards.values():
            monitor = shard.monitor
            for case in monitor.cases():
                state = monitor.case_state(case)
                if state is not None:
                    states[case] = state
        return states

    def case_digest(self, case: str) -> Optional[str]:
        """The case's canonical verdict digest (None without a session)."""
        monitor = self._shards[self._ring.shard_for(case)].monitor
        result = monitor.case_result(case)
        return canonical_digest(result) if result is not None else None

    def results(self) -> dict[str, dict]:
        """Per-case final word: state, purpose, digest, failure kind."""
        out: dict[str, dict] = {}
        for shard in self._shards.values():
            monitor = shard.monitor
            for case in monitor.cases():
                state = monitor.case_state(case)
                kind = monitor.case_failure_kind(case)
                result = monitor.case_result(case)
                out[case] = {
                    "case": case,
                    "state": str(state) if state is not None else None,
                    "purpose": monitor.case_purpose(case),
                    "digest": (
                        canonical_digest(result)
                        if result is not None
                        else None
                    ),
                    "failure_kind": kind.value if kind is not None else None,
                    "shard": shard.shard_name,
                }
        return out

    def refresh_shard_gauges(self) -> dict[str, dict]:
        """Per-shard load detail; also updates the shard gauges.

        Called at scrape time (``/healthz``, ``/metrics``, the ``status``
        op) so the ``serve_shard_queue_depth`` /
        ``serve_shard_inflight_cases`` gauges are current whenever
        anybody looks.
        """
        detail: dict[str, dict] = {}
        for name, shard in self._shards.items():
            depth = shard.queue.qsize()
            inflight = shard.inflight_cases
            self._m_queue_depth.set(depth, shard=name)
            self._m_inflight.set(inflight, shard=name)
            detail[name] = {
                "queue_depth": depth,
                "inflight_cases": inflight,
                "entries_observed": shard.entries_observed,
            }
        return detail

    def statistics(self) -> dict[str, object]:
        """A live snapshot for the ``status`` op and ``/healthz``."""
        per_state: dict[str, int] = {state.value: 0 for state in CaseState}
        entries = 0
        for shard in self._shards.values():
            stats = shard.monitor.statistics()
            entries += stats.pop("entries", 0)
            for state, count in stats.items():
                per_state[state] = per_state.get(state, 0) + count
        return {
            "shards": len(self._shards),
            "entries_received": self._received,
            "entries_observed": entries,
            "entries_written": self.entries_written,
            "cases": per_state,
            "quarantined_cases": len(self._quarantined),
            "dead_letters": len(self.dead_letters),
            "draining": self.draining,
            "shard_detail": self.refresh_shard_gauges(),
        }

    # -- internals ---------------------------------------------------------
    def _note_quarantined(
        self, case: str, kind: OutcomeKind, detail: str
    ) -> None:
        """Record (once) that *case* was taken out of rotation."""
        with self._quarantined_lock:
            if case in self._quarantined:
                return
            self._quarantined[case] = kind
        self._m_quarantined.inc(kind=kind.value)
        self._tel.events.emit(
            CASE_QUARANTINED, case=case, kind=kind.value, detail=detail
        )
