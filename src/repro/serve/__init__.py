"""The streaming audit daemon (``repro serve``).

Turns the library's online monitoring layer into a long-running
service: log shippers stream Definition-4 entries (or XES fragments)
over a JSON-lines TCP protocol, the service routes each entry to one
of N :class:`~repro.core.monitor.OnlineMonitor` shards by
consistent-hashing its case id, persists the raw stream to the
tamper-evident :class:`~repro.audit.store.AuditStore` in batched
transactions, and streams per-case verdict transitions back as they
happen.  See ``docs/serving.md`` for the wire protocol, sharding and
drain semantics, and the backpressure model; ``docs/robustness.md``
covers the crash-safety layer (WAL, recovery, supervision).

Layers (bottom up):

* :mod:`repro.serve.sharding` — the consistent-hash ring;
* :mod:`repro.serve.protocol` — the JSON-lines wire vocabulary;
* :mod:`repro.serve.wal` — the per-shard write-ahead ingest log;
* :mod:`repro.serve.core` — :class:`ShardRouter`, the socket-free
  engine (shard threads, store writer, WAL, admission control,
  quarantine, drain);
* :mod:`repro.serve.recovery` — crash recovery: store + WAL delta →
  byte-identical in-flight state;
* :mod:`repro.serve.supervisor` — heartbeat-based shard crash/hang
  detection and bounded restart;
* :mod:`repro.serve.service` — :class:`AuditService`, the asyncio TCP
  + HTTP front end;
* :mod:`repro.serve.client` — :class:`AuditStreamClient`, a blocking
  reference client, and :class:`ResilientAuditClient`, the
  reconnecting/idempotent shipper.
"""

from repro.serve.client import AuditStreamClient, ResilientAuditClient
from repro.serve.core import Admission, DrainReport, ServeConfig, ShardRouter
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_jsonl,
    decode_message,
    encode_message,
    entry_from_message,
    entry_to_message,
)
from repro.serve.recovery import RecoveryReport, collect_case_histories, recover
from repro.serve.service import AuditService
from repro.serve.sharding import ConsistentHashRing
from repro.serve.supervisor import ShardSupervisor
from repro.serve.wal import (
    WalCorruptionError,
    WalError,
    WalRecord,
    WalWriter,
    read_wal,
    segment_paths,
)

__all__ = [
    "Admission",
    "AuditService",
    "AuditStreamClient",
    "ConsistentHashRing",
    "DrainReport",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RecoveryReport",
    "ResilientAuditClient",
    "ServeConfig",
    "ShardRouter",
    "ShardSupervisor",
    "WalCorruptionError",
    "WalError",
    "WalRecord",
    "WalWriter",
    "collect_case_histories",
    "decode_jsonl",
    "decode_message",
    "encode_message",
    "entry_from_message",
    "entry_to_message",
    "read_wal",
    "recover",
    "segment_paths",
]
