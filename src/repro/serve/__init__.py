"""The streaming audit daemon (``repro serve``).

Turns the library's online monitoring layer into a long-running
service: log shippers stream Definition-4 entries (or XES fragments)
over a JSON-lines TCP protocol, the service routes each entry to one
of N :class:`~repro.core.monitor.OnlineMonitor` shards by
consistent-hashing its case id, persists the raw stream to the
tamper-evident :class:`~repro.audit.store.AuditStore` in batched
transactions, and streams per-case verdict transitions back as they
happen.  See ``docs/serving.md`` for the wire protocol, sharding and
drain semantics, and the backpressure model.

Layers (bottom up):

* :mod:`repro.serve.sharding` — the consistent-hash ring;
* :mod:`repro.serve.protocol` — the JSON-lines wire vocabulary;
* :mod:`repro.serve.core` — :class:`ShardRouter`, the socket-free
  engine (shard threads, store writer, quarantine, drain);
* :mod:`repro.serve.service` — :class:`AuditService`, the asyncio TCP
  + HTTP front end;
* :mod:`repro.serve.client` — :class:`AuditStreamClient`, a blocking
  reference client.
"""

from repro.serve.client import AuditStreamClient
from repro.serve.core import DrainReport, ServeConfig, ShardRouter
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_message,
    encode_message,
    entry_from_message,
    entry_to_message,
)
from repro.serve.service import AuditService
from repro.serve.sharding import ConsistentHashRing

__all__ = [
    "AuditService",
    "AuditStreamClient",
    "ConsistentHashRing",
    "DrainReport",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServeConfig",
    "ShardRouter",
    "decode_message",
    "encode_message",
    "entry_from_message",
    "entry_to_message",
]
