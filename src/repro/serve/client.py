"""A small blocking client for the streaming audit service.

:class:`AuditStreamClient` speaks :mod:`repro.serve.protocol` over a
plain TCP socket.  It is what the differential and fault suites drive
the daemon with, what the CI load driver uses, and a reasonable
starting point for real log shippers (the protocol is plain JSON
lines — any language can speak it).

The client separates *sending* from *reading*: operations write
immediately, and :meth:`events` / :meth:`recv_until` pull server
events off the socket.  Verdicts stream asynchronously, so after a
burst of entries call :meth:`sync` (a server-side barrier) before
asserting on state.

:class:`ResilientAuditClient` layers delivery guarantees on top: it
numbers each case's entries (the protocol's ``seq`` field), reconnects
with exponential backoff + jitter when the connection drops, honors the
server's ``busy``/``retry_after`` backpressure responses, and re-sends
its unacknowledged tail after a reconnect — the server deduplicates by
per-case sequence, so the resume is idempotent (at-least-once sends,
exactly-once processing; see ``docs/robustness.md``).
"""

from __future__ import annotations

import json
import random
import socket
import time
from typing import Iterable, Optional

from repro.audit.model import LogEntry
from repro.errors import ReproError
from repro.serve.protocol import (
    EV_BUSY,
    EV_BYE,
    EV_HELLO,
    EV_RESULTS,
    EV_STATUS,
    EV_SYNCED,
    OP_BYE,
    OP_RESULTS,
    OP_STATUS,
    OP_SYNC,
    OP_XES,
    entry_to_message,
)


class AuditStreamClient:
    """Blocking JSON-lines client; context manager closes the socket."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._sync_id = 0
        self.events_seen: list[dict] = []

    # -- lifecycle ---------------------------------------------------------
    def __enter__(self) -> "AuditStreamClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def abort(self) -> None:
        """Tear the connection down hard (simulates a crashed client)."""
        self._sock.setsockopt(
            socket.SOL_SOCKET,
            socket.SO_LINGER,
            # linger on, timeout 0 => RST on close
            b"\x01\x00\x00\x00\x00\x00\x00\x00",
        )
        self._sock.close()

    # -- sending -----------------------------------------------------------
    def send_raw(self, line: "str | bytes") -> None:
        if isinstance(line, str):
            line = line.encode("utf-8")
        if not line.endswith(b"\n"):
            line += b"\n"
        self._file.write(line)
        self._file.flush()

    def send(self, message: dict) -> None:
        self.send_raw(json.dumps(message, separators=(",", ":")))

    def send_entry(
        self, entry: LogEntry, traceparent: Optional[str] = None
    ) -> None:
        """Send one entry; ``traceparent`` (a W3C header value) makes
        the caller's span the remote parent of the case's trace."""
        self.send(entry_to_message(entry, traceparent=traceparent))

    def send_trail(
        self, entries: Iterable[LogEntry], traceparent: Optional[str] = None
    ) -> int:
        count = 0
        for entry in entries:
            self.send_entry(entry, traceparent=traceparent)
            count += 1
        return count

    def send_xes(self, document: str) -> None:
        self.send({"op": OP_XES, "document": document})

    # -- receiving ---------------------------------------------------------
    def recv_event(self) -> Optional[dict]:
        """The next server event (None on EOF)."""
        line = self._file.readline()
        if not line:
            return None
        event = json.loads(line)
        self.events_seen.append(event)
        return event

    def recv_until(self, event_name: str, **match: object) -> dict:
        """Read events until one named *event_name* (and matching any
        extra key/value filters) arrives; raises on EOF."""
        while True:
            event = self.recv_event()
            if event is None:
                raise ConnectionError(
                    f"server closed before a {event_name!r} event"
                )
            if event.get("event") == event_name and all(
                event.get(key) == value for key, value in match.items()
            ):
                return event

    # -- composite operations ----------------------------------------------
    def sync(self) -> dict:
        """Barrier: returns once everything sent so far is processed."""
        self._sync_id += 1
        self.send({"op": OP_SYNC, "id": self._sync_id})
        return self.recv_until(EV_SYNCED, id=self._sync_id)

    def status(self) -> dict:
        self.send({"op": OP_STATUS})
        return self.recv_until(EV_STATUS)

    def results(self, cases: Optional[list[str]] = None) -> dict:
        """Per-case final states + canonical digests (implies a barrier)."""
        message: dict = {"op": OP_RESULTS}
        if cases is not None:
            message["cases"] = cases
        self.send(message)
        return self.recv_until(EV_RESULTS)["cases"]

    def bye(self) -> None:
        self.send({"op": OP_BYE})
        self.recv_until(EV_BYE)
        self.close()

    # -- bookkeeping -------------------------------------------------------
    def verdicts(self) -> list[dict]:
        """Every ``verdict`` event observed so far."""
        return [e for e in self.events_seen if e.get("event") == "verdict"]


class ResilientAuditClient:
    """At-least-once delivery with exactly-once server-side processing.

    Wraps :class:`AuditStreamClient` with the three behaviors a real log
    shipper needs against a crash-safe daemon:

    * **reconnect** — a dropped connection is retried with exponential
      backoff and full jitter (``delay * uniform(0.5, 1.5)``), up to
      ``max_attempts`` consecutive failures without progress;
    * **backpressure** — ``busy`` responses are collected per batch and
      the refused entries re-sent after the server's ``retry_after_s``
      hint (or the backoff schedule, whichever is longer);
    * **idempotent resume** — every entry carries its case's next
      sequence number, assigned once at :meth:`ship` time.  After a
      reconnect the whole unacknowledged tail is re-sent; the server
      acks already-accepted entries as duplicates instead of
      double-counting them.

    ``rng`` is injectable so tests can pin the jitter.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        max_attempts: int = 8,
        backoff_s: float = 0.05,
        backoff_multiplier: float = 2.0,
        max_backoff_s: float = 2.0,
        rng: Optional[random.Random] = None,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self._host = host
        self._port = port
        self._timeout = timeout
        self._max_attempts = max_attempts
        self._backoff_s = backoff_s
        self._multiplier = backoff_multiplier
        self._max_backoff_s = max_backoff_s
        self._rng = rng if rng is not None else random.Random()
        self._client: Optional[AuditStreamClient] = None
        self._case_seq: dict[str, int] = {}
        self.connects = 0
        self.reconnects = 0
        self.busy_retries = 0
        self.duplicates_acked = 0

    # -- lifecycle ---------------------------------------------------------
    def __enter__(self) -> "ResilientAuditClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        if self._client is not None:
            self._client.close()
            self._client = None

    def _delay(self, attempt: int) -> float:
        """The jittered backoff before the *attempt*-th retry (1-based)."""
        base = min(
            self._backoff_s * self._multiplier ** (attempt - 1),
            self._max_backoff_s,
        )
        return base * (0.5 + self._rng.random())

    def _drop(self) -> None:
        if self._client is not None:
            try:
                self._client.close()
            except OSError:
                pass
            self._client = None

    def _connected(self) -> AuditStreamClient:
        """The live connection, dialing (with backoff) if needed."""
        if self._client is not None:
            return self._client
        failures = 0
        while True:
            try:
                client = AuditStreamClient(
                    self._host, self._port, timeout=self._timeout
                )
                client.recv_until(EV_HELLO)
            except (OSError, ConnectionError, ValueError):
                failures += 1
                if failures >= self._max_attempts:
                    raise
                time.sleep(self._delay(failures))
                continue
            self._client = client
            self.connects += 1
            if self.connects > 1:
                self.reconnects += 1
            return client

    # -- delivery ----------------------------------------------------------
    def ship(self, entries: Iterable[LogEntry]) -> dict:
        """Deliver *entries*, surviving disconnects and backpressure.

        Sequence numbers are assigned here, once, in iteration order per
        case; every retry re-sends the same numbers, which is what makes
        the whole operation idempotent.  Returns delivery statistics
        (``accepted`` counts entries the server now owns, whether this
        call's send or an earlier one's landed them).  Raises once
        ``max_attempts`` consecutive rounds make no progress.
        """
        pending: list[tuple[LogEntry, int]] = []
        for entry in entries:
            seq = self._case_seq.get(entry.case, 0) + 1
            self._case_seq[entry.case] = seq
            pending.append((entry, seq))
        accepted = 0
        stalled = 0
        while pending:
            try:
                client = self._connected()
                marker = len(client.events_seen)
                for entry, seq in pending:
                    client.send(entry_to_message(entry, seq=seq))
                client.sync()
            except (OSError, ConnectionError, ValueError):
                # Mid-batch disconnect: nothing past the last sync is
                # acknowledged — reconnect and re-send the whole tail
                # (the server dedupes what did land).
                self._drop()
                stalled += 1
                if stalled >= self._max_attempts:
                    raise
                time.sleep(self._delay(stalled))
                continue
            refused: set[tuple[Optional[str], Optional[int]]] = set()
            retry_after = 0.0
            for event in client.events_seen[marker:]:
                if event.get("event") != EV_BUSY:
                    continue
                if event.get("duplicate"):
                    self.duplicates_acked += 1
                    continue
                refused.add((event.get("case"), event.get("seq")))
                retry_after = max(
                    retry_after, float(event.get("retry_after_s") or 0.0)
                )
            retry = [
                (entry, seq)
                for entry, seq in pending
                if (entry.case, seq) in refused
            ]
            accepted += len(pending) - len(retry)
            if not retry:
                pending = []
                break
            if len(retry) < len(pending):
                stalled = 0  # progress: the backoff clock resets
            else:
                stalled += 1
                if stalled >= self._max_attempts:
                    raise ReproError(
                        f"server still refusing {len(retry)} entr"
                        f"{'y' if len(retry) == 1 else 'ies'} after "
                        f"{stalled} backpressure rounds"
                    )
            self.busy_retries += len(retry)
            # Honor the server's hint, floored by our own schedule, so a
            # thundering herd of shippers decorrelates.
            time.sleep(max(retry_after, self._delay(max(stalled, 1))))
            pending = retry
        return {
            "accepted": accepted,
            "reconnects": self.reconnects,
            "busy_retries": self.busy_retries,
            "duplicates": self.duplicates_acked,
        }

    # -- pass-throughs (reconnecting) --------------------------------------
    def sync(self) -> dict:
        return self._connected().sync()

    def status(self) -> dict:
        return self._connected().status()

    def results(self, cases: Optional[list[str]] = None) -> dict:
        return self._connected().results(cases)

    def verdicts(self) -> list[dict]:
        return self._client.verdicts() if self._client is not None else []

    def bye(self) -> None:
        if self._client is not None:
            self._client.bye()
            self._client = None
