"""A small blocking client for the streaming audit service.

:class:`AuditStreamClient` speaks :mod:`repro.serve.protocol` over a
plain TCP socket.  It is what the differential and fault suites drive
the daemon with, what the CI load driver uses, and a reasonable
starting point for real log shippers (the protocol is plain JSON
lines — any language can speak it).

The client separates *sending* from *reading*: operations write
immediately, and :meth:`events` / :meth:`recv_until` pull server
events off the socket.  Verdicts stream asynchronously, so after a
burst of entries call :meth:`sync` (a server-side barrier) before
asserting on state.
"""

from __future__ import annotations

import json
import socket
from typing import Iterable, Optional

from repro.audit.model import LogEntry
from repro.serve.protocol import (
    EV_BYE,
    EV_RESULTS,
    EV_STATUS,
    EV_SYNCED,
    OP_BYE,
    OP_RESULTS,
    OP_STATUS,
    OP_SYNC,
    OP_XES,
    entry_to_message,
)


class AuditStreamClient:
    """Blocking JSON-lines client; context manager closes the socket."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._sync_id = 0
        self.events_seen: list[dict] = []

    # -- lifecycle ---------------------------------------------------------
    def __enter__(self) -> "AuditStreamClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def abort(self) -> None:
        """Tear the connection down hard (simulates a crashed client)."""
        self._sock.setsockopt(
            socket.SOL_SOCKET,
            socket.SO_LINGER,
            # linger on, timeout 0 => RST on close
            b"\x01\x00\x00\x00\x00\x00\x00\x00",
        )
        self._sock.close()

    # -- sending -----------------------------------------------------------
    def send_raw(self, line: "str | bytes") -> None:
        if isinstance(line, str):
            line = line.encode("utf-8")
        if not line.endswith(b"\n"):
            line += b"\n"
        self._file.write(line)
        self._file.flush()

    def send(self, message: dict) -> None:
        self.send_raw(json.dumps(message, separators=(",", ":")))

    def send_entry(
        self, entry: LogEntry, traceparent: Optional[str] = None
    ) -> None:
        """Send one entry; ``traceparent`` (a W3C header value) makes
        the caller's span the remote parent of the case's trace."""
        self.send(entry_to_message(entry, traceparent=traceparent))

    def send_trail(
        self, entries: Iterable[LogEntry], traceparent: Optional[str] = None
    ) -> int:
        count = 0
        for entry in entries:
            self.send_entry(entry, traceparent=traceparent)
            count += 1
        return count

    def send_xes(self, document: str) -> None:
        self.send({"op": OP_XES, "document": document})

    # -- receiving ---------------------------------------------------------
    def recv_event(self) -> Optional[dict]:
        """The next server event (None on EOF)."""
        line = self._file.readline()
        if not line:
            return None
        event = json.loads(line)
        self.events_seen.append(event)
        return event

    def recv_until(self, event_name: str, **match: object) -> dict:
        """Read events until one named *event_name* (and matching any
        extra key/value filters) arrives; raises on EOF."""
        while True:
            event = self.recv_event()
            if event is None:
                raise ConnectionError(
                    f"server closed before a {event_name!r} event"
                )
            if event.get("event") == event_name and all(
                event.get(key) == value for key, value in match.items()
            ):
                return event

    # -- composite operations ----------------------------------------------
    def sync(self) -> dict:
        """Barrier: returns once everything sent so far is processed."""
        self._sync_id += 1
        self.send({"op": OP_SYNC, "id": self._sync_id})
        return self.recv_until(EV_SYNCED, id=self._sync_id)

    def status(self) -> dict:
        self.send({"op": OP_STATUS})
        return self.recv_until(EV_STATUS)

    def results(self, cases: Optional[list[str]] = None) -> dict:
        """Per-case final states + canonical digests (implies a barrier)."""
        message: dict = {"op": OP_RESULTS}
        if cases is not None:
            message["cases"] = cases
        self.send(message)
        return self.recv_until(EV_RESULTS)["cases"]

    def bye(self) -> None:
        self.send({"op": OP_BYE})
        self.recv_until(EV_BYE)
        self.close()

    # -- bookkeeping -------------------------------------------------------
    def verdicts(self) -> list[dict]:
        """Every ``verdict`` event observed so far."""
        return [e for e in self.events_seen if e.get("event") == "verdict"]
