"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries while the
subclasses keep failure modes distinguishable.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by this library."""


class CowsError(ReproError):
    """Base class for errors raised by the COWS calculus substrate."""


class CowsSyntaxError(CowsError):
    """A textual COWS specification could not be parsed."""

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class SubstitutionError(CowsError):
    """A substitution could not be applied (e.g. binder capture)."""


class NotFinitelyObservableError(CowsError):
    """The unobservable closure of a state exceeded the exploration bound.

    Raised by WeakNext when a process is not finitely observable with
    respect to the observable label set (Definition 8 of the paper) —
    i.e. the process can perform unboundedly many silent transitions
    without ever producing an observable label.
    """

    def __init__(self, message: str, states_explored: int = 0):
        super().__init__(message)
        self.states_explored = states_explored


class BpmnError(ReproError):
    """Base class for errors raised by the BPMN substrate."""


class ProcessValidationError(BpmnError):
    """A BPMN process failed structural validation.

    The offending problems are listed in :attr:`problems`.
    """

    def __init__(self, message: str, problems: list[str] | None = None):
        super().__init__(message)
        self.problems = list(problems or [])


class NotWellFoundedError(ProcessValidationError):
    """A BPMN process contains a cycle with no observable activity.

    Such processes fall outside the decidable fragment of Algorithm 1
    (Section 5 of the paper): WeakNext would not terminate on them.
    """


class EncodingError(BpmnError):
    """The BPMN -> COWS encoding failed."""


class PolicyError(ReproError):
    """Base class for errors raised by the data-protection policy engine."""


class PolicySyntaxError(PolicyError):
    """A textual policy statement could not be parsed."""


class UnknownPurposeError(PolicyError):
    """An access request or case referenced a purpose with no registered process."""


class AuditError(ReproError):
    """Base class for errors raised by the audit-trail substrate."""


class MalformedEntryError(AuditError):
    """A stored or serialized log entry could not be decoded.

    Raised at ingestion boundaries (SQLite rows, XES events, batch
    appends) when raw data does not round-trip into a valid
    :class:`repro.audit.model.LogEntry`.  ``position`` locates the
    offending record in its source (sequence number, event index, or
    batch offset).
    """

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class CaseTimeoutError(ReproError):
    """A case replay exceeded its wall-clock budget.

    The budget is cooperative: it is checked between replayed entries
    (the intra-entry guard remains ``max_silent_states``), so a single
    pathological WeakNext closure is bounded by states, not seconds.
    """

    def __init__(
        self,
        message: str,
        budget_s: float | None = None,
        elapsed_s: float | None = None,
    ):
        super().__init__(message)
        self.budget_s = budget_s
        self.elapsed_s = elapsed_s


class WorkerLostError(ReproError):
    """A parallel-audit worker process died before returning a result."""

    def __init__(self, message: str, attempts: int = 0):
        super().__init__(message)
        self.attempts = attempts


class CompileError(ReproError):
    """Base class for errors raised by the purpose-automaton compiler."""


class ArtifactError(CompileError):
    """A persisted automaton artifact could not be used.

    Raised when an artifact file is truncated, malformed, carries an
    unsupported format version, or its fingerprint does not match the
    process it is being loaded for.  Callers are expected to log a
    ``compile.artifact_invalid`` event and recompile transparently —
    an invalid artifact must never fail an audit.
    """

    def __init__(self, message: str, reason: str = "invalid"):
        super().__init__(message)
        self.reason = reason


class AutomatonExplosionError(CompileError):
    """The subset construction materialized more states than allowed.

    Mirrors ``FrontierExplosionError`` one level up: the *per-step*
    frontier bound guards one replay, this bound guards the accumulated
    state space of the compiled automaton.  Replay falls back to the
    interpreted engine when it trips.
    """

    def __init__(self, message: str, states: int = 0):
        super().__init__(message)
        self.states = states


class AutomatonUnavailableError(CompileError):
    """A compiled transition was missing and no engine can derive it.

    Raised by a pure-disk automaton (no COWS engine attached and no way
    to build one) on a transition miss; the compiled checker catches it
    and replays the case through the interpreted engine instead.
    """


class IntegrityError(AuditError):
    """The hash chain of an audit store failed verification."""

    def __init__(self, message: str, first_bad_seq: int | None = None):
        super().__init__(message)
        self.first_bad_seq = first_bad_seq


class TrailOrderError(AuditError):
    """Log entries were appended or combined out of chronological order."""


class GenerationError(AuditError):
    """The synthetic trail generator could not produce a requested trail."""


class ConformanceError(ReproError):
    """Base class for errors raised by the Petri-net conformance baseline."""


class PetriNetError(ConformanceError):
    """A Petri net was structurally invalid or an illegal firing was requested."""


class ConfigError(ReproError):
    """A declarative audit-config document could not be loaded.

    Raised by :mod:`repro.control.config` for unparseable documents,
    unknown keys, missing tenant fields, duplicate purposes/prefixes,
    unreadable referenced files, and TOML configs on interpreters
    without :mod:`tomllib`.
    """
