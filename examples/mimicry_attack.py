#!/usr/bin/env python
"""Mimicry attacks against purpose control (Section 4, closing discussion).

The paper analyzes how an insider might try to defeat Algorithm 1:

1. *naive re-purposing* — open records under a fresh case of a legitimate
   purpose (detected: the case is not a valid process execution);
2. *single-user mimicry* — fake a full process execution alone (detected:
   the process spans several roles, and the attacker's role cannot
   perform the other pools' tasks);
3. *colluding mimicry* — several users, one per role, simulate the whole
   process (NOT detected by replay alone: the residual risk the paper
   acknowledges — "a single user cannot simulate the whole process
   alone, but he has to collude with other users");
4. *case reuse* — piggy-back an extra access onto a legitimate finished
   case (detected outside the narrow window where the access pattern
   still fits the process).

Run:  python examples/mimicry_attack.py
"""

from dataclasses import replace
from datetime import timedelta

from repro import ComplianceChecker, encode
from repro.scenarios import (
    healthcare_treatment_process,
    paper_audit_trail,
    role_hierarchy,
)


def verdict(checker, entries, label):
    result = checker.check(entries)
    detected = "DETECTED" if not result.compliant else "not detected"
    where = (
        f" (rejected at entry {result.failed_index}: "
        f"{result.failed_entry.role}.{result.failed_entry.task})"
        if not result.compliant
        else ""
    )
    print(f"{label:<28} -> {detected}{where}")
    return result


def main():
    checker = ComplianceChecker(
        encode(healthcare_treatment_process()), role_hierarchy()
    )
    trail = paper_audit_trail()
    legitimate = list(trail.for_case("HT-1"))

    print("attack scenarios against the treatment process:\n")

    # 1. Naive re-purposing: Bob's HT-11 single-access case.
    verdict(checker, trail.for_case("HT-11"), "naive re-purposing")

    # 2. Single-user mimicry: Bob replays the full HT-1 script alone.
    solo = [replace(e, user="Bob", role="Cardiologist") for e in legitimate]
    verdict(checker, solo, "single-user mimicry")

    # 3. Colluding mimicry: the original multi-role trail *is* accepted.
    verdict(checker, legitimate, "colluding mimicry")
    print("   ^ requires one accomplice per role — the paper's residual risk")

    # 4. Case reuse after completion: an extra T06 read a month later.
    extra = legitimate[5].shifted(timedelta(days=30))
    verdict(checker, [*legitimate, extra], "case reuse (closed case)")

    # 5. Case reuse inside the window: duplicate the T06 access right when
    #    a T06 was legitimately active -- absorbed, not detected.
    in_window = list(legitimate)
    in_window.insert(6, legitimate[5].shifted(timedelta(minutes=1)))
    verdict(checker, in_window, "case reuse (open window)")
    print(
        "   ^ succeeds only in conjunction with a legitimate access - the\n"
        "     'very restricted time windows' of Section 4; mitigated by\n"
        "     limiting multi-tasking"
    )


if __name__ == "__main__":
    main()
