#!/usr/bin/env python
"""Streaming purpose control: catch infringements as they happen.

Batch audits (examples/healthcare_audit.py) find the clinical-trial
attack after the fact.  This example attaches the :class:`OnlineMonitor`
to the live log stream instead: every entry is replayed the moment it is
recorded, the EPR harvesting raises alerts on the *first* offending read
of each fake case, and a nightly sweep times out cases that exceeded the
treatment process's duration budget.

Run:  python examples/online_monitor.py
"""

from datetime import datetime, timedelta

from repro.core import OnlineMonitor, TemporalConstraints
from repro.scenarios import (
    paper_audit_trail,
    process_registry,
    role_hierarchy,
)


def main():
    monitor = OnlineMonitor(
        process_registry(),
        hierarchy=role_hierarchy(),
        temporal={
            "treatment": TemporalConstraints(
                max_case_duration=timedelta(days=60),
                max_inactivity=timedelta(days=45),
            )
        },
    )

    print("streaming the Fig. 4 log into the monitor ...\n")
    for entry in paper_audit_trail():
        alerts = monitor.observe(entry)
        for alert in alerts:
            stamp = entry.timestamp.strftime("%Y-%m-%d %H:%M")
            print(f"ALERT {stamp}  {alert}")

    print("\nnightly sweep (2010-07-01): timing out overdue open cases ...")
    for violation in monitor.sweep(datetime(2010, 7, 1)):
        print(f"TIMEOUT {violation}")

    print("\nfinal monitor state:")
    stats = monitor.statistics()
    for key in ("open", "completed", "infringing", "timed-out", "entries"):
        print(f"  {key:<10} {stats[key]}")
    print(f"  total alerts: {len(monitor.infringements)}")


if __name__ == "__main__":
    main()
