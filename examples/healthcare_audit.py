#!/usr/bin/env python
"""The paper's running example, end to end (Sections 2-4, Figs 1-4).

Loads the healthcare-treatment and clinical-trial processes, the Fig. 3
data protection policy and the Fig. 4 audit trail, stores the trail in
the tamper-evident SQLite store, and runs the full purpose-control
auditor: per-entry policy checks (Definition 3) plus Algorithm 1 replay
per case — exposing the cardiologist's EPR-harvesting attack that the
preventive policy check cannot see.

Run:  python examples/healthcare_audit.py
"""

from repro import AuditStore, PolicyDecisionPoint, PurposeControlAuditor
from repro.core import SeverityModel
from repro.policy import ObjectRef
from repro.scenarios import (
    consent_registry,
    extended_policy,
    paper_audit_trail,
    process_registry,
    role_hierarchy,
    user_directory,
)


def main():
    registry = process_registry()
    hierarchy = role_hierarchy()

    # 1. Collect the logs in the secure store and verify integrity.
    store = AuditStore(":memory:")
    store.append_many(paper_audit_trail())
    store.verify_integrity()
    print(f"stored {len(store)} log entries; hash chain intact\n")

    # 2. The preventive check alone is blind to re-purposing.
    pdp = PolicyDecisionPoint(
        extended_policy(), user_directory(), hierarchy, registry,
        consent_registry(),
    )
    harvesting = store.query(case="HT-11")[0].as_access_request()
    print(f"preventive check on Bob's harvesting request {harvesting}:")
    print(f"  -> permit={pdp.evaluate(harvesting).permit}  (the gap!)\n")

    # 3. A-posteriori purpose control closes the gap.
    auditor = PurposeControlAuditor(
        registry,
        hierarchy=hierarchy,
        pdp=pdp,
        severity_model=SeverityModel(registry),
    )
    report = auditor.audit(store.query())
    print(report.summary())

    # 4. Patient-centric view: "who processed Jane's record, and why?"
    print("\naudit of [Jane]EPR:")
    jane_report = auditor.audit_object(store.query(), ObjectRef.parse("[Jane]EPR"))
    for case, result in jane_report.cases.items():
        status = "valid execution" if result.compliant else "INFRINGEMENT"
        print(f"  case {case} ({result.purpose}): {status}")

    store.close()


if __name__ == "__main__":
    main()
