#!/usr/bin/env python
"""Designing your own purpose: model, validate, export, encode, audit.

Walks through the library's modelling toolchain on a loan-approval
purpose spanning two pools (Advisor and RiskOfficer) with a message
hand-off, a parallel documentation/valuation phase and an error retry:

* build the BPMN process with the fluent builder;
* validate it (structure + well-foundedness, Section 5);
* serialize to JSON and export Graphviz DOT;
* encode into COWS and inspect the first observable steps (WeakNext);
* replay a compliant and a non-compliant session.

Run:  python examples/custom_process.py
"""

from datetime import datetime, timedelta

from repro import ComplianceChecker, LogEntry, ProcessBuilder, encode
from repro.audit import Status
from repro.bpmn import dumps, is_well_founded, process_to_dot
from repro.core import Configuration, Observables, WeakNextEngine


def build_loan_process():
    builder = ProcessBuilder("loan-approval", purpose="loan")
    advisor = builder.pool("Advisor")
    advisor.start_event("S1", name="Customer applies")
    advisor.task("A1", name="Record application")
    advisor.parallel_gateway("P1")
    advisor.task("A2", name="Collect documents")
    advisor.task("A3", name="Value collateral")
    advisor.parallel_gateway("P2")
    advisor.message_end_event("E1", message="file_ready", name="Send file")
    builder.chain("S1", "A1", "P1")
    builder.flow("P1", "A2").flow("P1", "A3")
    builder.flow("A2", "P2").flow("A3", "P2")
    builder.chain("P2", "E1")

    risk = builder.pool("RiskOfficer")
    risk.message_start_event("S2", message="file_ready", name="File received")
    risk.task("R1", name="Assess risk")
    risk.task("R2", name="Decide")
    risk.end_event("E2", name="Decision filed")
    builder.chain("S2", "R1", "R2", "E2")
    builder.error_flow("R1", "R1")  # incomplete file: re-assess
    return builder.build()


def entry(user, role, task, minute, status=Status.SUCCESS):
    return LogEntry(
        user=user, role=role, action="work", obj=None, task=task,
        case="LOAN-1",
        timestamp=datetime(2026, 7, 6, 10, 0) + timedelta(minutes=minute),
        status=status,
    )


def main():
    process = build_loan_process()
    print(f"process {process.process_id!r}: {len(process)} elements, "
          f"pools {process.pools}")
    print(f"well-founded: {is_well_founded(process)}")

    print(f"\nJSON export: {len(dumps(process))} bytes")
    print(f"DOT export:  {len(process_to_dot(process))} bytes "
          "(render with `dot -Tpng`)")

    encoded = encode(process)
    engine = WeakNextEngine(Observables.from_encoded(encoded))
    initial = Configuration.initial(engine, encoded.term)
    print("\nWeakNext from the initial state "
          f"(active={initial.describe()}):")
    for event, _, active in initial.next:
        pretty_active = "{" + ", ".join(f"{r}.{t}" for r, t in sorted(active)) + "}"
        print(f"  --{event}--> active={pretty_active}")

    checker = ComplianceChecker(encoded)

    compliant = [
        entry("Ana", "Advisor", "A1", 0),
        entry("Ana", "Advisor", "A3", 10),
        entry("Ana", "Advisor", "A2", 12),
        entry("Rui", "RiskOfficer", "R1", 30),
        entry("Rui", "RiskOfficer", "R1", 35, Status.FAILURE),  # retry
        entry("Rui", "RiskOfficer", "R1", 40),
        entry("Rui", "RiskOfficer", "R2", 50),
    ]
    print(f"\ncompliant session -> {checker.check(compliant).compliant}")

    hasty = [
        entry("Ana", "Advisor", "A1", 0),
        entry("Ana", "Advisor", "A2", 10),
        # collateral valuation (A3) skipped entirely!
        entry("Rui", "RiskOfficer", "R1", 30),
    ]
    result = checker.check(hasty)
    print(f"hasty session     -> {result.compliant} "
          f"(entry {result.failed_index}: {result.failed_entry.task} "
          "before the parallel join completed)")


if __name__ == "__main__":
    main()
