"""Dump every shipped scenario process (and its policy) to JSON files.

Usage::

    PYTHONPATH=src python examples/dump_scenarios.py OUTDIR

Writes one ``<name>.json`` process document per scenario process and one
``<group>.policy`` file per policied scenario group, so external tooling
— in particular the ``lint-models`` CI job — can run ``repro lint``
against exactly what the library ships:

* ``healthcare/`` — the paper's running example (treatment + clinical
  trial) with its extended policy;
* ``insurance/`` — the claim-handling + marketing scenarios with the
  insurance policy;
* ``appendix/`` — Figures 7-10 reference shapes (no policy);
* ``workloads/`` — representative synthetic benchmark shapes (no
  policy).
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.bpmn.serialize import dumps
from repro.policy.parser import format_policy
from repro.scenarios import appendix, healthcare, insurance, workloads


def dump_all(outdir: Path) -> list[Path]:
    written: list[Path] = []

    def write(path: Path, text: str) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text if text.endswith("\n") else text + "\n")
        written.append(path)

    write(
        outdir / "healthcare" / "treatment.json",
        dumps(healthcare.healthcare_treatment_process(), indent=2),
    )
    write(
        outdir / "healthcare" / "clinical_trial.json",
        dumps(healthcare.clinical_trial_process(), indent=2),
    )
    write(
        outdir / "healthcare" / "healthcare.policy",
        format_policy(healthcare.extended_policy()),
    )

    write(
        outdir / "insurance" / "claim_handling.json",
        dumps(insurance.claim_handling_process(), indent=2),
    )
    write(
        outdir / "insurance" / "marketing.json",
        dumps(insurance.marketing_process(), indent=2),
    )
    write(
        outdir / "insurance" / "insurance.policy",
        format_policy(insurance.insurance_policy()),
    )

    for name, factory in (
        ("fig7", appendix.fig7_process),
        ("fig8", appendix.fig8_process),
        ("fig9", appendix.fig9_process),
        ("fig10", appendix.fig10_process),
    ):
        write(outdir / "appendix" / f"{name}.json", dumps(factory(), indent=2))

    for name, process in (
        ("sequential", workloads.sequential_process(8)),
        ("xor", workloads.xor_process(4)),
        ("loop", workloads.loop_process(3)),
        ("parallel", workloads.parallel_process(3)),
        ("staged_xor", workloads.staged_xor_process(3, 3)),
    ):
        write(outdir / "workloads" / f"{name}.json", dumps(process, indent=2))

    return written


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print("usage: dump_scenarios.py OUTDIR", file=sys.stderr)
        return 2
    written = dump_all(Path(argv[1]))
    for path in written:
        print(path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
