#!/usr/bin/env python
"""Hospital-scale auditing (the Geneva workload, Section 1 / Section 7).

The paper motivates automated purpose control with the Geneva University
Hospitals figure: more than 20,000 records opened every day — far beyond
manual auditing.  This example generates a synthetic day of treatment
cases with a known fraction of infringing (harvested) cases, audits every
case with Algorithm 1, and reports throughput plus detection quality
against the ground truth.

Run:  python examples/hospital_scale.py [n_cases]
"""

import sys
import time

from repro.core import ComplianceChecker
from repro.scenarios import hospital_day, role_hierarchy


def main(n_cases: int = 150):
    print(f"generating a synthetic hospital day with {n_cases} cases ...")
    workload = hospital_day(n_cases=n_cases, violation_rate=0.12, seed=2026)
    trail = workload.trail
    print(
        f"  {len(trail)} log entries across {workload.case_count} cases "
        f"({workload.violation_count} infringing by construction)\n"
    )

    checker = ComplianceChecker(workload.encoded, role_hierarchy())
    started = time.perf_counter()
    verdicts = {
        case: checker.check(trail.for_case(case)).compliant
        for case in trail.cases()
    }
    elapsed = time.perf_counter() - started

    flagged = {case for case, ok in verdicts.items() if not ok}
    actual = {case for case, ok in workload.ground_truth.items() if not ok}
    true_positives = len(flagged & actual)
    precision = true_positives / len(flagged) if flagged else 1.0
    recall = true_positives / len(actual) if actual else 1.0

    print(f"audited {len(verdicts)} cases in {elapsed:.2f}s "
          f"({len(verdicts) / elapsed:.0f} cases/s, "
          f"{len(trail) / elapsed:.0f} entries/s)")
    print(f"flagged {len(flagged)} cases; precision={precision:.2f} "
          f"recall={recall:.2f}")
    print("\nper-day extrapolation:")
    per_day = 20_000
    print(
        f"  at this rate, {per_day} record-opening cases take "
        f"~{per_day / (len(verdicts) / elapsed) / 60:.1f} minutes on one core"
    )
    print("  (cases are independent — Section 7's massive parallelization "
          "divides this by the worker count)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 150)
