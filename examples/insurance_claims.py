#!/usr/bin/env python
"""Purpose control beyond healthcare: insurance claims vs marketing.

The framework is domain-agnostic: any organization with processes and
logs can run it.  This example audits an insurance company's day — two
claims (one with an external expert assessment and an investigation
retry), one legitimate marketing campaign, and an adjuster who trawls
customer *profiles* under freshly minted claim cases to build a campaign
audience.  The preventive policy check permits every one of those reads;
the replay flags all three fake cases and explains why.

Run:  python examples/insurance_claims.py
"""

from repro.core import ComplianceChecker, PurposeControlAuditor, explain
from repro.policy import PolicyDecisionPoint
from repro.scenarios.insurance import (
    insurance_audit_trail,
    insurance_consent_registry,
    insurance_policy,
    insurance_registry,
    insurance_role_hierarchy,
    insurance_user_directory,
)


def main():
    registry = insurance_registry()
    hierarchy = insurance_role_hierarchy()
    trail = insurance_audit_trail()

    pdp = PolicyDecisionPoint(
        insurance_policy(),
        insurance_user_directory(),
        hierarchy,
        registry,
        insurance_consent_registry(),
    )

    # The preventive gap, again: each harvesting read is policy-legal.
    harvest = trail.for_case("CL-11")[0].as_access_request()
    print(f"preventive check on {harvest}:")
    print(f"  -> permit={pdp.evaluate(harvest).permit}  (claims cover the file)\n")

    auditor = PurposeControlAuditor(registry, hierarchy=hierarchy, pdp=pdp)
    report = auditor.audit(trail)
    print(report.summary())

    # Explain one of the detections for the case handler.
    checker = ComplianceChecker(
        registry.encoded_for("claimhandling"), hierarchy
    )
    entries = trail.for_case("CL-10").entries
    result = checker.check(entries)
    diagnosis = explain(checker, entries, result)
    print(f"\ndiagnosis for CL-10: {diagnosis}")


if __name__ == "__main__":
    main()
