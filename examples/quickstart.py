#!/usr/bin/env python
"""Quickstart: purpose control in ~60 lines.

Builds a tiny order-handling process, logs two work sessions — one that
follows the process and one that re-purposes the data — and lets
Algorithm 1 tell them apart.

Run:  python examples/quickstart.py
"""

from datetime import datetime, timedelta

from repro import ComplianceChecker, LogEntry, ProcessBuilder, encode
from repro.audit import Status


def build_process():
    """S -> Receive -> (Approve | Reject) -> Archive -> E, one Clerk pool."""
    builder = ProcessBuilder("order-handling", purpose="order-handling")
    clerk = builder.pool("Clerk")
    clerk.start_event("S")
    clerk.task("Receive", name="Receive order")
    clerk.exclusive_gateway("G")
    clerk.task("Approve", name="Approve order")
    clerk.task("Reject", name="Reject order")
    clerk.exclusive_gateway("M")
    clerk.task("Archive", name="Archive the file")
    clerk.end_event("E")
    builder.chain("S", "Receive", "G")
    builder.flow("G", "Approve").flow("G", "Reject")
    builder.flow("Approve", "M").flow("Reject", "M")
    builder.chain("M", "Archive", "E")
    return builder.build()


def log(task, minute, case="ORD-1"):
    """One Definition-4 log entry for the Clerk."""
    return LogEntry(
        user="Casey",
        role="Clerk",
        action="write",
        obj=None,
        task=task,
        case=case,
        timestamp=datetime(2026, 7, 6, 9, 0) + timedelta(minutes=minute),
        status=Status.SUCCESS,
    )


def main():
    process = build_process()
    checker = ComplianceChecker(encode(process))

    # A valid execution: receive, approve, archive.
    good = [log("Receive", 0), log("Approve", 5), log("Archive", 10)]
    result = checker.check(good)
    print(f"valid run      -> compliant={result.compliant}")

    # Multiple logged actions inside one task are fine (1-to-n mapping).
    busy = [log("Receive", 0), log("Receive", 1), log("Receive", 2),
            log("Reject", 5), log("Archive", 10)]
    print(f"busy valid run -> compliant={checker.check(busy).compliant}")

    # Re-purposing: the clerk archives data without ever handling an order.
    bad = [log("Archive", 0)]
    result = checker.check(bad)
    print(
        f"re-purposed    -> compliant={result.compliant} "
        f"(rejected entry: task={result.failed_entry.task})"
    )

    # Approving twice is not part of the process either.
    double = [log("Receive", 0), log("Approve", 5), log("Reject", 6)]
    print(f"double verdict -> compliant={checker.check(double).compliant}")


if __name__ == "__main__":
    main()
